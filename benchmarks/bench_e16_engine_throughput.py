"""E16: engine hot-path throughput -- a synthetic fleet under Zipf traffic.

The ROADMAP's production-scale target is >= 10^6 wall-clock events/sec; the
paper's uniform-access protocol is only credible at fleet scale if the
simulator can drive hundreds of hosts exchanging millions of resolution
messages.  This bench builds the stress case directly: ``FLEET_SIZES``
hosts, one responder (a warm-cache name server stand-in) and one client per
host, every client firing direct Sends at Zipf-chosen responders -- the
steady-state traffic shape E12 establishes once bindings are cached (the
hot path is Send/Reply round trips, not prefix broadcasts).

Two kinds of numbers come out:

- **deterministic** (trajectory metrics): simulated elapsed time,
  transaction and event counts for the pinned 200-host fleet.  These are
  pure functions of the seed and must stay byte-identical across runs --
  the engine overhaul is required to change *none* of them.
- **wall-clock** (``wall_metrics``): engine events fired per wall second
  while ``domain.run()`` drains each fleet size.  These are the ROADMAP
  throughput dimension, published into the snapshot's ``wall`` section and
  gated loosely by ``repro.obs.regress --wall-tolerance``.
"""

import time

import pytest

from conftest import report_table

from repro.kernel.domain import Domain
from repro.kernel.ipc import Receive, Reply, Send
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.sim.rng import DeterministicRng

#: Fleet sizes for the wall-clock sweep (hosts; one client + one responder
#: each).  The deterministic trajectory metrics pin the largest size.
FLEET_SIZES = (50, 100, 200)

#: Pinned request count per client for the deterministic metrics -- the
#: simulated numbers depend on it, so it is identical in quick and full
#: mode (the wall sweep varies its own count instead).
TRAJECTORY_REQUESTS = 25

#: Zipf skew for target choice: a few popular servers, a long tail --
#: the shape of real name-resolution traffic (cf. E12's trace).
ZIPF_SKEW = 1.1

SEED = 0


def _responder():
    """A minimal server: Receive -> Reply(OK), forever."""
    while True:
        delivery = yield Receive()
        yield Reply(delivery.sender, Message.reply(ReplyCode.OK))


def _client(targets, completed):
    """Fire one blocking Send per target; count completed transactions."""
    for target in targets:
        reply = yield Send(target, Message.request(RequestCode.QUERY_NAME))
        assert reply.ok
        completed[0] += 1


def build_fleet(num_hosts: int, requests_per_client: int, seed: int = SEED):
    """A domain with ``num_hosts`` hosts, each running a responder and a
    client aimed at Zipf-chosen responders fleet-wide.

    Returns ``(domain, completed)`` where ``completed`` is a one-cell list
    the clients increment -- after ``domain.run()`` it must equal
    ``num_hosts * requests_per_client``.
    """
    domain = Domain(seed=seed)
    hosts = domain.create_hosts(num_hosts, prefix="fleet")
    responders = [host.spawn(_responder(), name="responder").pid
                  for host in hosts]
    rng = DeterministicRng(seed)
    completed = [0]
    for index, host in enumerate(hosts):
        stream = f"e16.client{index}"
        targets = [responders[rng.zipf_index(stream, num_hosts,
                                             skew=ZIPF_SKEW)]
                   for __ in range(requests_per_client)]
        host.spawn(_client(targets, completed), name="client")
    return domain, completed


def measure_fleet(num_hosts: int, requests_per_client: int,
                  seed: int = SEED) -> dict:
    """Run one fleet to completion; simulated facts + wall throughput.

    The wall clock brackets only ``domain.run()`` (the event loop), not
    fleet construction, so the rate is an engine number, not a setup one.
    """
    domain, completed = build_fleet(num_hosts, requests_per_client, seed)
    engine = domain.engine
    events_before = engine.events_processed
    wall_start = time.perf_counter()
    domain.run()
    wall_seconds = time.perf_counter() - wall_start
    domain.check_healthy()
    events = engine.events_processed - events_before
    expected = num_hosts * requests_per_client
    assert completed[0] == expected, (
        f"{completed[0]}/{expected} transactions completed")
    return {
        "hosts": num_hosts,
        "transactions": completed[0],
        "events": events,
        "sim_elapsed_s": engine.now,
        "wall_seconds": wall_seconds,
        "wall_events_per_sec": events / wall_seconds if wall_seconds else 0.0,
    }


# ------------------------------------------------------------------- pytest


def test_fleet_completes_and_scales():
    """Every transaction completes at every fleet size; results are
    deterministic facts of the seed (the wall columns are informational)."""
    rows = []
    for num_hosts in FLEET_SIZES:
        result = measure_fleet(num_hosts, requests_per_client=10)
        rows.append((f"{num_hosts} hosts", result["transactions"],
                     result["events"], result["sim_elapsed_s"] * 1e3,
                     result["wall_events_per_sec"]))
        assert result["transactions"] == num_hosts * 10
        assert result["events"] > result["transactions"]
    report_table(
        "E16: engine throughput over a Zipf fleet (10 req/client)",
        rows,
        ("fleet", "txns", "events", "sim elapsed (ms)", "wall events/s"),
    )


def test_fleet_deterministic():
    """Same seed, same fleet -> bit-identical simulated results."""
    first = measure_fleet(50, requests_per_client=5)
    second = measure_fleet(50, requests_per_client=5)
    assert first["sim_elapsed_s"] == second["sim_elapsed_s"]
    assert first["events"] == second["events"]
    assert first["transactions"] == second["transactions"]


@pytest.mark.benchmark(group="e16-engine")
def test_benchmark_fleet_throughput(benchmark):
    """Wall-clock benchmark hook: one 50-host fleet drain per round."""
    def run():
        return measure_fleet(50, requests_per_client=5)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result["transactions"] == 250


# --------------------------------------------------------------- trajectory


def trajectory_metrics(quick: bool = False) -> dict:
    """Deterministic metrics for the continuous benchmark (repro.obs.bench).

    Everything here is simulated time or a deterministic count for the
    pinned 200-host fleet; the engine overhaul's contract is that none of
    these values move.  The fleet size and request count are pinned in both
    modes so quick snapshots stay value-comparable with full ones.
    """
    from repro.obs.bench import trajectory_point

    result = measure_fleet(FLEET_SIZES[-1], TRAJECTORY_REQUESTS)
    return trajectory_point(
        quick,
        {
            "fleet200_sim_elapsed_s": result["sim_elapsed_s"],
            "fleet200_transactions": result["transactions"],
            "fleet200_events": result["events"],
        },
        lambda: {
            "fleet200_mean_txn_ms": round(
                result["sim_elapsed_s"] / result["transactions"] * 1e3, 6),
        })


def wall_metrics(quick: bool = False) -> dict:
    """Wall-clock throughput sweep, merged into the snapshot's ``wall``
    section by :mod:`repro.obs.bench` (keys are rates, so regress gates
    them higher-is-better with ``--wall-tolerance``).

    Quick mode shrinks the per-client request count (wall rates are
    machine-dependent and loosely gated; comparability across modes is not
    byte-level here, unlike the deterministic metrics).
    """
    requests = 10 if quick else 40
    sweep = {}
    for num_hosts in FLEET_SIZES:
        result = measure_fleet(num_hosts, requests)
        sweep[f"wall_events_per_sec_{num_hosts}h"] = round(
            result["wall_events_per_sec"], 1)
    return sweep
