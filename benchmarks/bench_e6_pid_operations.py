"""E6 (paper Sec. 4.1, Figure 2): what structured pids buy.

The paper claims the (logical-host | local-id) structure provides (a)
efficient location of a process with no lookup service, (b) independent
unique allocation per host, and (c) a cheap locality test "an important
issue for some servers."

Reproduced: these are the only wall-clock microbenchmarks in the suite
(field extraction really is the operation), plus a simulated comparison of
routing-with-structure vs routing-via-registry.
"""

import pytest

from conftest import report_table

from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, Now, Receive, Reply, Send, SetPid
from repro.kernel.messages import Message, ReplyCode
from repro.kernel.pids import Pid, PidAllocator
from repro.kernel.services import Scope


def test_e6_locality_test_is_constant_time(benchmark):
    pids = [Pid.make(host, local) for host in range(1, 33)
            for local in range(1, 33)]

    def classify():
        return sum(1 for pid in pids if pid.is_local_to(7))

    local_count = benchmark(classify)
    assert local_count == 32

    report_table(
        "E6  Structured pid operations (Sec. 4.1)",
        [("locality tests per call", len(pids)),
         ("pids classified local to host 7", local_count)],
        headers=("measure", "value"),
    )


def test_e6_host_extraction(benchmark):
    pids = [Pid.make(h, l) for h in range(1, 65) for l in range(1, 17)]

    def route():
        return sum(pid.logical_host for pid in pids)

    benchmark(route)


def test_e6_allocation_is_collision_free_across_hosts(benchmark):
    def allocate():
        allocators = [PidAllocator(host) for host in range(1, 17)]
        pids = set()
        for allocator in allocators:
            for __ in range(64):
                pids.add(allocator.allocate())
        return len(pids)

    unique = benchmark(allocate)
    assert unique == 16 * 64  # no coordination, no collisions


def measure_routing() -> tuple[float, float]:
    """(Send-by-pid ms, GetPid+Send ms) for one remote transaction."""
    domain = Domain()
    ws = domain.create_host("ws")
    far = domain.create_host("far")

    def server():
        yield SetPid(1, Scope.BOTH)
        while True:
            delivery = yield Receive()
            yield Reply(delivery.sender, Message.reply(ReplyCode.OK))

    far.spawn(server(), "server")

    def client():
        yield Delay(0.01)
        pid = yield GetPid(1, Scope.ANY)
        # direct: structure routes the message
        t0 = yield Now()
        yield Send(pid, Message.request(1))
        t1 = yield Now()
        # with a per-use lookup (what port/mailbox schemes pay):
        t2 = yield Now()
        again = yield GetPid(1, Scope.ANY)
        yield Send(again, Message.request(1))
        t3 = yield Now()
        return (t1 - t0) * 1e3, (t3 - t2) * 1e3

    from _common import run_on

    return run_on(domain, ws, client())


def test_e6_structure_routes_without_a_lookup(benchmark):
    """Sending to a pid needs no registry transaction; compare one Send
    against GetPid-then-Send, the cost the structure avoids."""

    direct_ms, with_lookup_ms = benchmark(measure_routing)
    report_table(
        "E6b  Routing by pid structure vs per-use service lookup",
        [("Send by pid", direct_ms),
         ("GetPid + Send", with_lookup_ms),
         ("avoided overhead", with_lookup_ms - direct_ms)],
        headers=("path", "measured ms"),
    )
    assert with_lookup_ms > direct_ms * 1.3


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench).

    Only the simulated comparison is tracked -- the wall-clock
    microbenchmarks above are machine-dependent and not gateable.
    """
    direct_ms, with_lookup_ms = measure_routing()
    return {
        "send_by_pid_ms": direct_ms,
        "getpid_then_send_ms": with_lookup_ms,
    }
