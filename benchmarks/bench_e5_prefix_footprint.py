"""E5 (paper Sec. 6): the context prefix server is small.

Paper: "The context prefix server is 4.5 kilobytes of code plus 2.6
kilobytes of data (mostly space reserved for its context directory) when
compiled for the Motorola 68000.  This space cost is not significant..."

Reproduced analogously for Python: compiled bytecode size of the prefix
server module (the "code"), and the live size of its binding table at the
paper's typical scale (the "data").  Absolute bytes differ by platform --
what must hold is the claim's shape: the per-user server is a trivial cost,
and its data grows linearly at tens of bytes per prefix.
"""

import marshal
import py_compile
import sys
import tempfile

import pytest

from conftest import report_table

import repro.core.prefix_server as prefix_module
from repro.core.context import ContextPair
from repro.core.prefix_server import ContextPrefixServer
from repro.kernel.pids import Pid

PAPER_CODE_KB = 4.5
PAPER_DATA_KB = 2.6
#: A loaded workstation in Sec. 6: several file servers x several prefixes.
TYPICAL_PREFIXES = 12


def bytecode_size() -> int:
    with tempfile.NamedTemporaryFile(suffix=".pyc") as out:
        py_compile.compile(prefix_module.__file__, cfile=out.name,
                           doraise=True)
        with open(out.name, "rb") as compiled:
            return len(compiled.read())


def table_size(prefix_count: int) -> int:
    server = ContextPrefixServer(user="mann")
    for index in range(prefix_count):
        server.define_prefix(f"prefix{index}",
                             ContextPair(Pid.make(1, index + 1), 0))
    return server.footprint()["table_bytes"]


def test_e5_prefix_server_footprint(benchmark):
    code_bytes = benchmark(bytecode_size)
    data_bytes = table_size(TYPICAL_PREFIXES)
    per_prefix = (table_size(100) - table_size(0)) / 100

    report_table(
        "E5  Context prefix server footprint (Sec. 6)",
        [
            ("code", f"{PAPER_CODE_KB} KB (68000)",
             f"{code_bytes / 1024:.1f} KB (CPython bytecode)"),
            (f"data ({TYPICAL_PREFIXES} prefixes)",
             f"{PAPER_DATA_KB} KB", f"{data_bytes / 1024:.2f} KB"),
            ("data growth", "(n/a)", f"{per_prefix:.0f} B/prefix"),
        ],
        headers=("component", "paper", "measured"),
    )

    # Shape assertions: "not significant" on any machine of the era or now.
    assert code_bytes < 64 * 1024
    assert data_bytes < 16 * 1024
    assert per_prefix < 512


def test_e5_data_grows_linearly(benchmark):
    sizes = benchmark(lambda: [table_size(n) for n in (0, 25, 50, 100)])
    deltas = [b - a for a, b in zip(sizes, sizes[1:])]
    # Within dict-resize noise, growth is linear.
    assert max(deltas) < 3 * max(1, min(d for d in deltas if d > 0))


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench).

    Footprints drift legitimately when the module or interpreter changes;
    repro.obs.regress gives e5 metrics a loose tolerance override.
    """
    return {
        "code_bytes": bytecode_size(),
        "table_bytes_12_prefixes": table_size(TYPICAL_PREFIXES),
    }
