"""E10 (paper Sec. 7): multicast name resolution vs broadcast GetPid.

Paper: "A near-term project is to replace the low-level service naming using
GetPid and SetPid with a mechanism based on multicast Send.  Using this
mechanism, a single context could be implemented transparently by a group of
servers working in cooperation."  And Sec. 2.2 on broadcast's cost: "each
server in the group receives many requests that are not directed to it, and
must spend some processing time in examining and discarding them."

Reproduced: resolving a name held by one of G group members, on a wire with
H total hosts, two ways:

- broadcast GetPid to find *a* server, then a directed CSname request that
  may still need forwarding -- every host on the wire examines the query;
- one multicast CSname request to the group -- only member hosts see it,
  and the owner's reply carries the answer directly.
"""

import pytest

from conftest import report_table
from _common import run_on

from repro.core.context import ContextPair, WellKnownContext
from repro.core.group_naming import group_context, group_name_to_context
from repro.core.resolver import name_to_context
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, Now
from repro.kernel.services import Scope, ServiceId
from repro.net.latency import STANDARD_3MBIT
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server

GROUP = group_context(2)
GROUP_SIZE = 3
IDLE_HOSTS = 8
LOOKUPS = 20


def build(use_group: bool):
    domain = Domain(seed=21)
    workstation = setup_workstation(domain, "mann")
    handles = []
    for index in range(GROUP_SIZE):
        server = VFileServer(user="mann",
                             group_ids=(GROUP,) if use_group else ())
        handles.append(start_server(domain.create_host(f"vax{index}"),
                                    server))
    for index in range(IDLE_HOSTS):
        domain.create_host(f"idle{index}")
    standard_prefixes(workstation, handles[0])
    # The name lives on the *last* member, so broadcast GetPid (which can
    # return any registrant) does not trivially find the owner.
    handles[-1].server.store.make_path("users/mann/target")
    return domain, workstation, handles


def measure_broadcast_getpid() -> tuple[float, int]:
    """Per-lookup latency + total broadcast discards across the run."""
    domain, workstation, handles = build(use_group=False)
    owner = handles[-1]
    session = workstation.session()

    def client():
        yield Delay(0.05)
        total = 0.0
        for __ in range(LOOKUPS):
            t0 = yield Now()
            pid = yield GetPid(int(ServiceId.STORAGE), Scope.REMOTE)
            assert pid is not None
            # The found server may not own the name; walk servers until one
            # answers (here: direct second query at the owner to be fair --
            # one extra directed transaction).
            session.env.current = ContextPair(
                owner.pid, int(WellKnownContext.DEFAULT))
            pair = yield from name_to_context(session.env,
                                              "users/mann/target")
            t1 = yield Now()
            total += t1 - t0
        return total / LOOKUPS

    mean = run_on(domain, workstation.host, client()) * 1e3
    discards = domain.metrics.count("services.broadcast_discards")
    return mean, discards


def measure_multicast() -> tuple[float, int]:
    domain, workstation, handles = build(use_group=True)
    session = workstation.session()

    def client():
        yield Delay(0.05)
        total = 0.0
        for __ in range(LOOKUPS):
            t0 = yield Now()
            pair = yield from group_name_to_context(
                session.env, GROUP, "users/mann/target")
            t1 = yield Now()
            assert pair.server == handles[-1].pid
            total += t1 - t0
        return total / LOOKUPS

    mean = run_on(domain, workstation.host, client()) * 1e3
    discards = domain.metrics.count("services.broadcast_discards")
    return mean, discards


def test_e10_multicast_vs_broadcast(benchmark):
    multicast_ms, multicast_discards = benchmark(measure_multicast)
    broadcast_ms, broadcast_discards = measure_broadcast_getpid()
    wasted_cpu_ms = (broadcast_discards
                     * STANDARD_3MBIT.broadcast_discard_cpu * 1e3)

    report_table(
        "E10  Name resolution: broadcast GetPid vs multicast group Send "
        f"(Sec. 7; {GROUP_SIZE} members, {IDLE_HOSTS} bystander hosts, "
        f"{LOOKUPS} lookups)",
        [
            ("broadcast GetPid + directed request", broadcast_ms,
             broadcast_discards, wasted_cpu_ms),
            ("multicast CSname request", multicast_ms,
             multicast_discards, 0.0),
        ],
        headers=("mechanism", "mean lookup ms", "bystander discards",
                 "wasted CPU ms"),
    )

    # Multicast reaches only members; bystanders never examine anything.
    assert multicast_discards == 0
    assert broadcast_discards >= LOOKUPS * IDLE_HOSTS
    # And it is faster: one multicast replaces broadcast + directed send.
    assert multicast_ms < broadcast_ms


def test_e10_group_resolution_returns_a_usable_context(benchmark):
    def run():
        domain, workstation, handles = build(use_group=True)
        session = workstation.session()

        def client():
            yield Delay(0.05)
            pair = yield from group_name_to_context(
                session.env, GROUP, "users/mann/target")
            session.env.current = pair
            from repro.runtime import files

            yield from files.write_file(session, "proof.txt", b"1")
            return (yield from files.read_file(session, "proof.txt"))

        return run_on(domain, workstation.host, client())

    assert benchmark(run) == b"1"


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench)."""
    multicast_ms, multicast_discards = measure_multicast()
    broadcast_ms, broadcast_discards = measure_broadcast_getpid()
    return {
        "multicast_lookup_ms": multicast_ms,
        "broadcast_lookup_ms": broadcast_ms,
        "multicast_discards": multicast_discards,
        "broadcast_discards": broadcast_discards,
    }
