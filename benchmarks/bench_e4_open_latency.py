"""E4 (paper Sec. 6): the Open latency table -- the headline result.

Paper: "The time for an Open ... is 1.21 milliseconds in the current context
with the server local and 3.70 milliseconds in the current context with the
server remote.  When a context prefix is specified ... the time increases to
5.14 milliseconds with the server local, and 7.69 milliseconds with the
server remote.  The difference is identical within the limits of
experimental error in both cases (3.94 vs. 3.99 milliseconds), because it
reflects the processing time in the context prefix server, which is always
local."

Reproduced: all four cells plus the constancy of the delta.
"""

import pytest

from conftest import report_table
from _common import export_observability, open_timing_system, run_on

from repro.core.context import ContextPair, WellKnownContext
from repro.kernel.ipc import Now
from repro.runtime import files

PAPER = {
    "local direct": 1.21,
    "remote direct": 3.70,
    "local via prefix": 5.14,
    "remote via prefix": 7.69,
}

ROUNDS = 20


def measure_all() -> dict:
    domain, workstation, remote, local = open_timing_system()
    local_home = ContextPair(local.pid, int(WellKnownContext.HOME))

    def seed(session):
        yield from files.write_file(session, "[home]naming.mss", b"x" * 64)
        yield from files.write_file(session, "[local]naming.mss", b"y" * 64)

    run_on(domain, workstation.host, seed(workstation.session()), name="seed")

    cases = {
        "local direct": (workstation.session(local_home), "naming.mss"),
        "remote direct": (workstation.session(), "naming.mss"),
        "local via prefix": (workstation.session(), "[local]naming.mss"),
        "remote via prefix": (workstation.session(), "[home]naming.mss"),
    }
    results = {}
    for label, (session, name) in cases.items():

        def timer(session=session, name=name):
            total = 0.0
            for __ in range(ROUNDS):
                t0 = yield Now()
                stream = yield from session.open(name, "r")
                t1 = yield Now()
                yield from stream.close()
                total += t1 - t0
            return total / ROUNDS

        results[label] = run_on(domain, workstation.host, timer(),
                                name=f"timer-{label}") * 1e3
    # With REPRO_TRACE_DIR set, every Open above produced a span tree;
    # render them with `python -m repro.obs.report <dir>/bench_e4.spans.jsonl`.
    export_observability(domain.obs, "bench_e4")
    return results


def test_e4_open_latency_table(benchmark):
    results = benchmark(measure_all)

    rows = [(label, PAPER[label], results[label],
             f"{(results[label] - PAPER[label]) / PAPER[label] * 100:+.1f}%")
            for label in PAPER]
    delta_local = results["local via prefix"] - results["local direct"]
    delta_remote = results["remote via prefix"] - results["remote direct"]
    rows.append(("prefix delta (local target)", 3.93, delta_local, ""))
    rows.append(("prefix delta (remote target)", 3.99, delta_remote, ""))
    report_table(
        "E4  Open latency (Sec. 6): current context {local,remote} x "
        "{direct, via context prefix}",
        rows,
        headers=("case", "paper ms", "measured ms", "error"),
    )

    assert results["local direct"] == pytest.approx(1.21, rel=0.01)
    assert results["remote direct"] == pytest.approx(3.70, rel=0.01)
    assert results["local via prefix"] == pytest.approx(5.14, rel=0.01)
    assert results["remote via prefix"] == pytest.approx(7.69, rel=0.015)
    # The paper's key observation: the delta does not depend on where the
    # target server is, because the prefix server is always local.
    assert delta_local == pytest.approx(delta_remote, rel=0.02)
    assert delta_local == pytest.approx(3.94, rel=0.02)


def test_e4_other_csname_ops_share_the_shape(benchmark):
    """The routing rule is one common routine, so remove/query/mkdir pay
    the same direct-vs-prefix costs as Open."""

    def run():
        domain, workstation, remote, local = open_timing_system()
        session = workstation.session()

        def timer():
            t_direct = []
            t_prefix = []
            for index in range(10):
                yield from files.write_file(session, f"d{index}.txt", b"x")
                yield from files.write_file(session,
                                            f"[home]p{index}.txt", b"x")
                t0 = yield Now()
                yield from session.remove(f"d{index}.txt")
                t1 = yield Now()
                yield from session.remove(f"[home]p{index}.txt")
                t2 = yield Now()
                t_direct.append(t1 - t0)
                t_prefix.append(t2 - t1)
            return (sum(t_direct) / len(t_direct) * 1e3,
                    sum(t_prefix) / len(t_prefix) * 1e3)

        return run_on(domain, workstation.host, timer())

    direct_ms, prefix_ms = benchmark(run)
    report_table(
        "E4b  Remove latency, direct vs via prefix (same shape as Open)",
        [("remote direct", direct_ms), ("remote via prefix", prefix_ms),
         ("delta", prefix_ms - direct_ms)],
        headers=("case", "measured ms"),
    )
    assert prefix_ms - direct_ms == pytest.approx(3.94, rel=0.05)


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench)."""
    results = measure_all()
    return {
        "local_direct_ms": results["local direct"],
        "remote_direct_ms": results["remote direct"],
        "local_via_prefix_ms": results["local via prefix"],
        "remote_via_prefix_ms": results["remote via prefix"],
        "prefix_delta_local_ms": (results["local via prefix"]
                                  - results["local direct"]),
        "prefix_delta_remote_ms": (results["remote via prefix"]
                                   - results["remote direct"]),
    }
