"""E8a (paper Sec. 2.2, Efficiency): distributed vs centralized lookup cost.

Paper: "Separating the name of an object from its implementation introduces
the extra cost of interacting with one more server -- the name server --
every time a name is referenced.  Caching the name in the client would
introduce inconsistency problems and only benefit the few applications that
reuse names."

Reproduced: the same Zipf-skewed open workload over the same name
population, three ways -- V distributed interpretation, centralized without
a cache, centralized with a (consistency-risking) client cache -- reporting
mean per-open latency and name-server transactions.
"""

import pytest

from conftest import report_table
from _common import run_on

from repro.baseline import BaselineClient, CentralNameServer, UidObjectServer
from repro.core.context import ContextPair, WellKnownContext
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, Now
from repro.runtime.session import Session
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from repro.servers.base import ServerHandle
from repro.vio.client import release_instance
from repro.workloads import NameTreeSpec, populate_baseline, populate_fileserver
from repro.workloads.traces import zipf_trace

SPEC = NameTreeSpec(depth=2, fanout=3, files_per_directory=3)
TRACE_LENGTH = 150
SEED = 11


def distributed_run() -> tuple[float, int]:
    domain = Domain(seed=SEED)
    workstation = setup_workstation(domain, "mann")
    fs = start_server(domain.create_host("vax1"), VFileServer(user="mann"))
    standard_prefixes(workstation, fs)
    paths = populate_fileserver(fs.server, SPEC)
    # Names are interpreted relative to the server root context.
    session = workstation.session(
        ContextPair(fs.pid, int(WellKnownContext.DEFAULT)))
    trace = zipf_trace(paths, TRACE_LENGTH, seed=SEED)

    def client():
        yield Delay(0.05)
        total = 0.0
        for __, name in trace:
            t0 = yield Now()
            stream = yield from session.open(name, "r")
            t1 = yield Now()
            yield from release_instance(stream.server, stream.instance)
            total += t1 - t0
        return total / len(trace)

    mean = run_on(domain, workstation.host, client())
    return mean * 1e3, 0


def centralized_run(cache_enabled: bool) -> tuple[float, int]:
    domain = Domain(seed=SEED)
    ws = domain.create_host("ws")
    ns = CentralNameServer()
    ns_handle = start_server(domain.create_host("ns"), ns)
    servers, handles = [], []
    for index in range(2):
        server = UidObjectServer(allocator_id=index + 1)
        handle = start_server(domain.create_host(f"obj{index}"), server)
        servers.append(server)
        handles.append(handle)
    trace = None

    def client():
        yield Delay(0.05)
        # populate after pids exist
        for server, handle in zip(servers, handles):
            server.pid = handle.pid
        paths = populate_baseline(ns, servers, SPEC, seed=SEED)
        lib = BaselineClient(ns_handle.pid, domain.latency,
                             cache_enabled=cache_enabled)
        events = zipf_trace(paths, TRACE_LENGTH, seed=SEED)
        total = 0.0
        for __, name in events:
            t0 = yield Now()
            stream = yield from lib.open(name)
            t1 = yield Now()
            yield from release_instance(stream.server, stream.instance)
            total += t1 - t0
        return total / len(events) * 1e3, lib.name_server_transactions

    return run_on(domain, ws, client())


def test_e8a_lookup_latency(benchmark):
    v_ms, __ = benchmark(distributed_run)
    central_ms, central_txns = centralized_run(cache_enabled=False)
    cached_ms, cached_txns = centralized_run(cache_enabled=True)

    report_table(
        "E8a  Open latency: distributed vs centralized naming (Sec. 2.2)",
        [
            ("V distributed", v_ms, 0),
            ("centralized, no cache", central_ms, central_txns),
            ("centralized, client cache", cached_ms, cached_txns),
        ],
        headers=("architecture", "mean open ms", "name-server txns"),
    )

    # The paper's claim: one extra server interaction per reference.
    assert central_ms > v_ms * 1.5
    # A cache helps only because this trace reuses names...
    assert cached_ms < central_ms
    assert cached_txns < central_txns
    # ...and even cached, the extra level never beats interpretation at the
    # object's server.
    assert cached_ms > v_ms * 0.95


def test_e8a_reuse_sensitivity(benchmark):
    """Low-reuse traces strip the cache of its benefit (the paper: caching
    would 'only benefit the few applications that reuse names')."""

    def run():
        results = {}
        cases = (
            # (skew, name population spec, label)
            (1.4, SPEC, "high reuse"),
            (0.0, NameTreeSpec(depth=3, fanout=4, files_per_directory=4),
             "low reuse"),
        )
        for skew, spec, label in cases:
            domain = Domain(seed=SEED)
            ws = domain.create_host("ws")
            ns = CentralNameServer()
            ns_handle = start_server(domain.create_host("ns"), ns)
            server = UidObjectServer(allocator_id=1)
            handle = start_server(domain.create_host("obj"), server)

            def client(skew=skew, spec=spec):
                yield Delay(0.05)
                server.pid = handle.pid
                paths = populate_baseline(ns, [server], spec, seed=SEED)
                lib = BaselineClient(ns_handle.pid, domain.latency,
                                     cache_enabled=True)
                events = zipf_trace(paths, 100, seed=SEED, skew=skew)
                for __, name in events:
                    stream = yield from lib.open(name)
                    yield from release_instance(stream.server,
                                                stream.instance)
                return lib.cache_hits / 100

            results[label] = run_on(domain, ws, client())
        return results

    results = benchmark(run)
    report_table(
        "E8a-b  Cache hit rate vs name reuse",
        [(label, f"{rate:.0%}") for label, rate in results.items()],
        headers=("workload", "cache hit rate"),
    )
    assert results["high reuse"] > results["low reuse"] + 0.15


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench)."""
    from repro.obs.bench import trajectory_point

    def cached_point():
        cached_ms, cached_txns = centralized_run(cache_enabled=True)
        return {"cached_open_ms": cached_ms, "cached_ns_txns": cached_txns}

    v_ms, __ = distributed_run()
    central_ms, central_txns = centralized_run(cache_enabled=False)
    return trajectory_point(
        quick,
        {
            "v_open_ms": v_ms,
            "central_open_ms": central_ms,
            "central_ns_txns": central_txns,
        },
        cached_point)
