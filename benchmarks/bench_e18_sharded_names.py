"""E18: sharded replicated prefix serving -- balance, Zipf reads, failover.

PR 9 partitions the context prefix directory across replicated servers
(:mod:`repro.core.shard`): a versioned consistent-hash shard map, leased
bindings with an inclusive expiry boundary, owner fan-out of binding
changes, and a per-host resolver daemon that layers negative caching and
hierarchical lookup on the PR-2 ``BindingCache``.  This experiment pins
the three properties the design is for:

- **shard balance**: 10^5 prefixes over 8 replicas x 64 vnodes must spread
  evenly (max/min owned-count ratio), and dropping one replica must move
  only ~1/8 of the keys -- both pure functions of crc32, byte-stable;
- **Zipf resolution**: a client reading from a 10^5-name Zipf population
  through its shard resolver; the popular head lives in the TTL-bound
  binding cache and hot *missing* names are answered from the negative
  cache without a message leaving the machine;
- **failover**: the pinned replica-crash storm (every replica dies once
  under live traffic) must finish with zero failed reads, one promotion
  and one rejoin per crash, and zero resolutions served from an expired
  lease -- all deterministic counts the trajectory tracks.
"""

import time

from conftest import report_table

#: The balance section's geometry: 10^5 prefixes over 8 replicas.
BALANCE_PREFIXES = 100_000
BALANCE_REPLICAS = 8
BALANCE_VNODES = 64

#: The pinned storm scenario (same as ``repro.faults.chaos --storm``).
STORM = dict(seed=11, duration=6.0, n_replicas=3, n_prefixes=48,
             n_clients=2, lease_ttl=0.8)

#: The Zipf section: a 10^5-name population (prefixes x shared paths),
#: read with skew 1.0 -- the heavy head is what the resolver caches.
ZIPF_PREFIXES = 4096
ZIPF_FILES = 25
ZIPF_POPULATION = ZIPF_PREFIXES * ZIPF_FILES   # 102_400 distinct names
ZIPF_READS = 2000
ZIPF_SKEW = 1.1
ZIPF_MISS_EVERY = 40
#: The client-side binding TTL for this scenario: long enough that the
#: Zipf head stays warm, still bounded (nothing outlives its lease rule).
ZIPF_LEASE_TTL = 5.0


# ------------------------------------------------------------ shard balance


def measure_shard_balance() -> dict:
    """Partition quality and failover movement, straight off the ring."""
    from repro.core.shard import ShardMap

    shard_map = ShardMap(
        version=1,
        replicas=tuple((rid, 1000 + rid) for rid in range(BALANCE_REPLICAS)),
        vnodes=BALANCE_VNODES)
    prefixes = [b"p%06d" % index for index in range(BALANCE_PREFIXES)]
    counts = shard_map.assignment_counts(prefixes)
    dropped = shard_map.without(0)
    moved = sum(1 for prefix in prefixes
                if dropped.owner_of(prefix) != shard_map.owner_of(prefix))
    return {
        "prefixes": BALANCE_PREFIXES,
        "replicas": BALANCE_REPLICAS,
        "balance_ratio": round(max(counts.values()) / min(counts.values()), 4),
        "moved_share": round(moved / BALANCE_PREFIXES, 4),
    }


def test_e18_shard_balance(benchmark):
    balance = benchmark(measure_shard_balance)
    report_table(
        "E18  consistent-hash partition (10^5 prefixes, 8 replicas, "
        "64 vnodes)",
        [("max/min owned ratio", balance["balance_ratio"]),
         ("keys moved on 1-replica drop", balance["moved_share"]),
         ("ideal moved share (1/8)", 0.125)],
        headers=("quantity", "value"),
    )
    # A well-mixed ring: no replica owns 2x another's share, and dropping
    # one replica moves roughly its own share of the keys, nothing more.
    assert balance["balance_ratio"] < 2.0
    assert 0.05 < balance["moved_share"] < 0.25


# ---------------------------------------------------------- Zipf resolution


def measure_zipf_resolution() -> dict:
    """10^5-name Zipf population read through a shard resolver."""
    from repro.core.context import ContextPair, WellKnownContext
    from repro.core.resolver import NameError_
    from repro.core.shard import ShardCluster
    from repro.kernel.domain import Domain
    from repro.kernel.ipc import Delay, Now
    from repro.runtime import files
    from repro.runtime.session import Session
    from repro.servers.base import start_server
    from repro.servers.fileserver.server import VFileServer

    domain = Domain(seed=5)
    fs_host = domain.create_host("vax1")
    fileserver = VFileServer(user="mann")
    for index in range(ZIPF_FILES):
        node = fileserver.store.make_path(f"data/f{index}.dat",
                                          directory=False)
        node.data[:] = b"e18-zipf-payload"
    fs_handle = start_server(fs_host, fileserver)
    pair = ContextPair(fs_handle.pid, int(WellKnownContext.DEFAULT))

    cluster = ShardCluster(domain, domain.create_hosts(4, prefix="ns"),
                           lease_ttl=ZIPF_LEASE_TTL)
    for index in range(ZIPF_PREFIXES):
        cluster.seed_binding(f"p{index}", pair)

    client_host = domain.create_host("client")
    resolver = cluster.resolver(negative_ttl=2.0)
    session = Session(current=pair, prefix_server=cluster.primary_pid(),
                      latency=domain.latency, cache=resolver)
    tally = {"ok": 0, "miss": 0, "failed": 0}
    stamps = []

    def reader(session):
        for number in range(ZIPF_READS):
            rank = domain.rng.zipf_index("e18.zipf", ZIPF_POPULATION,
                                         ZIPF_SKEW)
            prefix = rank % ZIPF_PREFIXES
            if number % ZIPF_MISS_EVERY == 0:
                # One hot *missing* name: the first ask stores a negative
                # entry, repeats are answered locally while it is fresh.
                name = "[p0]data/missing.dat"
            else:
                name = f"[p{prefix}]data/f{(rank // ZIPF_PREFIXES) % ZIPF_FILES}.dat"
            start = yield Now()
            try:
                yield from files.read_file(session, name)
            except NameError_:
                tally["miss"] += 1
            except Exception:
                tally["failed"] += 1
            else:
                tally["ok"] += 1
            end = yield Now()
            stamps.append(end - start)
            yield Delay(0.005)

    client_host.spawn(reader(session), name="e18-zipf-reader")
    domain.run()
    domain.check_healthy()

    stats = resolver.stats
    return {
        "population": ZIPF_POPULATION,
        "reads": ZIPF_READS,
        "reads_ok": tally["ok"],
        "reads_missing": tally["miss"],
        "reads_failed": tally["failed"],
        "hit_rate": round(stats.hit_rate, 4),
        "negative_hits": resolver.negative_hits,
        "negative_stores": resolver.negative_stores,
        "mean_read_ms": round(sum(stamps) / len(stamps) * 1000, 4),
    }


def test_e18_zipf_resolution(benchmark):
    zipf = benchmark(measure_zipf_resolution)
    report_table(
        "E18  Zipf reads (10^5-name population) through the shard resolver",
        [("reads", zipf["reads"]),
         ("resolver hit rate", zipf["hit_rate"]),
         ("negative-cache hits", zipf["negative_hits"]),
         ("mean read latency (ms)", zipf["mean_read_ms"])],
        headers=("quantity", "value"),
    )
    assert zipf["reads_failed"] == 0
    # The Zipf head keeps the binding cache warm...
    assert zipf["hit_rate"] > 0.4
    # ...and hot missing names are answered locally at least once.
    assert zipf["negative_hits"] > 0
    assert zipf["negative_stores"] > 0


# ------------------------------------------------------------------ failover


def measure_failover_storm() -> dict:
    """The pinned replica-crash storm; raises if any invariant fails."""
    from repro.faults.chaos import run_replica_storm

    report = run_replica_storm(**STORM)
    refusals = sum(entry["lease_refusals"] for entry in report.replicas)
    refreshes = sum(entry["lease_refreshes"] for entry in report.replicas)
    redirects = sum(entry["redirects_followed"] for entry in report.resolvers)
    return {
        "reads": report.reads,
        "reads_ok": report.reads_ok,
        "reads_failed": report.reads_failed,
        "promotions": report.promotions,
        "rejoins": report.rejoins,
        "map_version": report.map_version,
        "lease_refusals": refusals,
        "lease_refreshes": refreshes,
        "redirects_followed": redirects,
    }


def test_e18_failover_storm(benchmark):
    storm = benchmark(measure_failover_storm)
    report_table(
        "E18  replica-crash storm (3 replicas, every one dies once)",
        [("reads ok / total", f"{storm['reads_ok']}/{storm['reads']}"),
         ("reads failed", storm["reads_failed"]),
         ("promotions", storm["promotions"]),
         ("rejoins", storm["rejoins"]),
         ("final map version", storm["map_version"]),
         ("lease refusals (served stale: never)", storm["lease_refusals"])],
        headers=("quantity", "value"),
    )
    # Every name resolves during and after owner failover...
    assert storm["reads_failed"] == 0 and storm["reads_ok"] == storm["reads"]
    # ...every crash was failed over and every restart rejoined...
    assert storm["promotions"] == STORM["n_replicas"]
    assert storm["rejoins"] == STORM["n_replicas"]
    # ...and the map version counted every membership change.
    assert storm["map_version"] == 1 + 2 * STORM["n_replicas"]


# ----------------------------------------------------------------- wall rate


def wall_metrics(quick: bool = False) -> dict:
    """Wall-clock throughput of the storm scenario (loose-gated by regress)."""
    start = time.perf_counter()
    storm = measure_failover_storm()
    elapsed = time.perf_counter() - start
    return {
        "wall_storm_reads_per_sec": round(storm["reads"] / elapsed, 1)
        if elapsed > 0 else 0.0,
    }


# ---------------------------------------------------------------- trajectory


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench).

    Balance and storm counts are pure functions of pinned seeds and crc32
    -- byte-identical across runs and machines.  The Zipf section is
    deterministic too but heavier, so it rides as a secondary (full-mode)
    metric set.
    """
    from repro.obs.bench import trajectory_point

    balance = measure_shard_balance()
    storm = measure_failover_storm()
    return trajectory_point(
        quick,
        {
            "shard_balance_ratio": balance["balance_ratio"],
            "shard_moved_share": balance["moved_share"],
            "storm_reads_ok": storm["reads_ok"],
            "storm_reads_failed": storm["reads_failed"],
            "storm_promotions": storm["promotions"],
            "storm_rejoins": storm["rejoins"],
            "storm_map_version": storm["map_version"],
        },
        lambda: {
            "zipf_hit_rate": measure_zipf_resolution()["hit_rate"],
            "storm_lease_refusals": storm["lease_refusals"],
            "storm_redirects": storm["redirects_followed"],
        })
