"""E7 (paper Sec. 5.8, Figure 4): the naming forest and forwarding cost.

Figure 4 shows per-server name trees with occasional cross-server pointers;
the forwarding convention stitches them together.  The paper gives no table
for this, but the design implies a cost model: each cross-server link on a
resolution path adds roughly one request hop (the reply still travels
directly from the final server to the client -- forwarding, not proxying).

Reproduced: Open latency vs number of cross-server links traversed, and the
slope check that forwarding beats request/reply chaining (a proxy design)
by half a transaction per hop.
"""

import pytest

from conftest import report_table
from _common import export_observability, maybe_observability, run_on

from repro.core.context import ContextPair, WellKnownContext
from repro.kernel.domain import Domain
from repro.kernel.ipc import Now
from repro.net.latency import NAME_SEGMENT_BYTES
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server

MAX_HOPS = 4


def build_chain(hops: int):
    """fs0 -> fs1 -> ... -> fs_hops, linked through home directories."""
    domain = Domain(obs=maybe_observability())
    workstation = setup_workstation(domain, "mann")
    handles = [start_server(domain.create_host(f"vax{i}"),
                            VFileServer(user="mann"))
               for i in range(hops + 1)]
    standard_prefixes(workstation, handles[0])
    for index in range(hops):
        handles[index].server.store.link_remote(
            handles[index].server.home, b"next",
            ContextPair(handles[index + 1].pid, int(WellKnownContext.HOME)))
    return domain, workstation, handles


def measure_hops(hops: int, rounds: int = 10) -> float:
    domain, workstation, handles = build_chain(hops)
    name = "next/" * hops + "leaf.txt"

    def client(session):
        yield from files.write_file(session, name, b"x")
        total = 0.0
        for __ in range(rounds):
            t0 = yield Now()
            stream = yield from session.open(name, "r")
            t1 = yield Now()
            yield from stream.close()
            total += t1 - t0
        return total / rounds

    mean = run_on(domain, workstation.host, client(workstation.session()))
    # Each chain length exports its own trace file: the span trees show one
    # extra Forward hop (and one more net.wire leg) per cross-server link.
    export_observability(domain.obs, f"bench_e7_hops{hops}")
    return mean * 1e3


def test_e7_forwarding_cost_per_hop(benchmark):
    times = {0: benchmark(measure_hops, 0)}
    for hops in range(1, MAX_HOPS + 1):
        times[hops] = measure_hops(hops)

    domain = Domain()
    hop_cost = domain.latency.remote_hop(NAME_SEGMENT_BYTES) * 1e3

    rows = [(hops, times[hops],
             times[hops] - times.get(hops - 1, times[0]) if hops else "-")
            for hops in sorted(times)]
    report_table(
        "E7  Open latency vs cross-server links traversed (Figure 4)",
        rows,
        headers=("links", "measured ms", "delta ms"),
    )

    # Linear in hops, slope = one forwarded request hop (~2.0 ms with the
    # name segment) -- NOT a full 5 ms transaction, because the reply goes
    # straight back to the client.
    for hops in range(1, MAX_HOPS + 1):
        delta = times[hops] - times[hops - 1]
        assert delta == pytest.approx(hop_cost, rel=0.05)


def test_e7_forwarding_beats_proxying(benchmark):
    """If each server instead *proxied* (sent its own request and relayed
    the reply), every hop would cost a request hop plus an extra reply hop.
    Forwarding saves that reply leg -- measure the saving."""

    def run():
        times = [measure_hops(h, rounds=5) for h in (0, 2)]
        return times

    t0, t2 = benchmark(run)
    domain = Domain()
    forward_slope = (t2 - t0) / 2
    proxy_slope = (domain.latency.remote_hop(NAME_SEGMENT_BYTES)
                   + domain.latency.remote_hop(0)) * 1e3
    report_table(
        "E7b  Per-hop cost: forwarding vs a proxy chain (modelled)",
        [("forwarding (measured)", forward_slope),
         ("proxy chain (modelled)", proxy_slope),
         ("saving per hop", proxy_slope - forward_slope)],
        headers=("design", "ms/hop"),
    )
    assert forward_slope < proxy_slope * 0.7


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench).

    Besides the open latencies, the attribution profiler contributes the
    message/byte traffic of the pinned 4-hop scenario -- rounds are pinned
    (not reduced in quick mode) because totals are round-dependent.
    """
    from repro.obs.bench import pick_rounds
    from repro.obs.profile import forwarding_profile

    rounds = pick_rounds(quick, 10, 3)  # steady-state mean: round-invariant
    hops0_ms = measure_hops(0, rounds)
    hops4_ms = measure_hops(MAX_HOPS, rounds)
    prof, __, __ = forwarding_profile(hops=MAX_HOPS, rounds=10, seed=0)
    return {
        "hops0_open_ms": hops0_ms,
        "hops4_open_ms": hops4_ms,
        "per_hop_slope_ms": (hops4_ms - hops0_ms) / MAX_HOPS,
        "hops4_messages": prof.total_messages,
        "hops4_wire_bytes": prof.total_bytes,
    }
