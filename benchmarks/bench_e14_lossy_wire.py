"""E14: lossy-wire resilience -- resolution success and latency vs frame loss.

The paper's numbers are measured on a healthy, uncontended Ethernet; the
kernel nevertheless carries a reliability protocol (probes, and here the
retransmission timer with receiver-side duplicate suppression) precisely so
that naming keeps *working* when the wire is not healthy.  E14 prices that
protocol:

- **loss sweep**: open a ``[home]`` name through the full prefix-server
  path while the wire drops 0-20% of frames.  With retransmission on, the
  success rate stays at ~100% and the latency tail grows gracefully (each
  recovery costs one backoff interval); with it off, every lost frame in
  the chain surfaces as a 400 ms probe TIMEOUT, and resolution fails
  outright once the bounded resolver retries are spent.
- **zero-loss identity**: installing the fault machinery with all rates at
  zero changes *nothing* -- the E1 remote transaction, the E4 remote
  via-prefix open, and the E12 warm cached open are bit-identical floats
  with and without the fault model on the wire, and still match the paper.

Run with ``--benchmark-disable`` for a quick correctness pass (CI does).
"""

import pytest

from conftest import report_table
from _common import run_on

from repro.kernel.config import DEFAULT_CONFIG, KernelConfig
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, Now, Receive, Reply, Send, SetPid
from repro.kernel.messages import Message, ReplyCode
from repro.kernel.services import Scope
from repro.net.latency import LOSSLESS_WIRE, WireFaultModel
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server

#: Frame loss rates swept (fraction of frames dropped, per destination).
LOSS_RATES = (0.0, 0.02, 0.05, 0.10, 0.20)

#: Opens measured per loss rate.
ROUNDS = 100

#: Paper values the zero-loss identity is checked against (ms).
PAPER_E1_REMOTE_MS = 2.56
PAPER_E4_REMOTE_PREFIX_MS = 7.69
PAPER_E12_WARM_MS = 3.70


def _percentile(values, fraction):
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _lossy_system(drop_rate: float, config: KernelConfig, seed: int = 3):
    """Workstation + remote file server; ``drop_rate`` on the wire."""
    domain = Domain(seed=seed, config=config)
    workstation = setup_workstation(domain, "mann")
    fs_host = domain.create_host("vax1")
    handle = start_server(fs_host, VFileServer(user="mann"))
    standard_prefixes(workstation, handle)

    def seed_file(session):
        yield from files.write_file(session, "[home]naming.mss", b"x" * 64)

    run_on(domain, workstation.host, seed_file(workstation.session()),
           name="seed")
    if drop_rate > 0.0:
        domain.set_wire_faults(WireFaultModel(drop_rate=drop_rate))
    return domain, workstation


def measure_loss_point(drop_rate: float, config: KernelConfig,
                       rounds: int = ROUNDS) -> dict:
    """Success rate and open-latency percentiles at one loss rate."""
    from repro.core.resolver import NameError_
    from repro.vio.client import IoError

    domain, workstation = _lossy_system(drop_rate, config)
    latencies_ms: list[float] = []
    outcomes = {"ok": 0, "failed": 0}

    def client(session):
        for __ in range(rounds):
            t0 = yield Now()
            try:
                stream = yield from session.open("[home]naming.mss", "r")
                yield from stream.close()
            except (NameError_, IoError):
                outcomes["failed"] += 1
            else:
                outcomes["ok"] += 1
                t1 = yield Now()
                latencies_ms.append((t1 - t0) * 1e3)
            yield Delay(0.005)

    run_on(domain, workstation.host, client(workstation.session()))
    return {
        "drop_rate": drop_rate,
        "ok": outcomes["ok"],
        "failed": outcomes["failed"],
        "success_rate": outcomes["ok"] / rounds,
        "p50_ms": _percentile(latencies_ms, 0.50),
        "p99_ms": _percentile(latencies_ms, 0.99),
        "retransmits": domain.metrics.count("ipc.retransmits"),
        "drops": domain.metrics.count("net.drops"),
    }


def test_e14_loss_sweep(benchmark):
    """Success rate and latency tail vs loss rate, retransmission on."""
    results = benchmark(lambda: [measure_loss_point(rate, DEFAULT_CONFIG)
                                 for rate in LOSS_RATES])
    report_table(
        "E14  [home] open vs frame loss, retransmission on (100 opens/rate)",
        [(f"{row['drop_rate']:.0%}", f"{row['success_rate']:.0%}",
          row["p50_ms"], row["p99_ms"], row["retransmits"], row["drops"])
         for row in results],
        headers=("loss", "success", "p50 ms", "p99 ms",
                 "retransmits", "frames dropped"),
    )
    by_rate = {row["drop_rate"]: row for row in results}
    # Loss-free: nothing retransmitted, nothing dropped, nothing failed.
    assert by_rate[0.0]["success_rate"] == 1.0
    assert by_rate[0.0]["retransmits"] == 0
    assert by_rate[0.0]["drops"] == 0
    # The headline claim: >= 99% resolution success at 10% frame loss.
    assert by_rate[0.10]["success_rate"] >= 0.99
    assert by_rate[0.10]["retransmits"] > 0
    # The tail pays for recovery, the median barely moves: p50 within 2x of
    # clean, p99 bounded by a few backoff intervals.
    assert by_rate[0.10]["p50_ms"] < by_rate[0.0]["p50_ms"] * 2
    assert by_rate[0.20]["success_rate"] >= 0.95


def test_e14_retransmission_off_fails_measurably():
    """The control: same wire, fail-stop-only kernel."""
    off = KernelConfig(retransmit_enabled=False)
    row = measure_loss_point(0.10, off)
    on_row = measure_loss_point(0.10, DEFAULT_CONFIG)
    report_table(
        "E14b  10% loss: retransmission on vs off (100 opens)",
        [
            ("on", f"{on_row['success_rate']:.0%}", on_row["p50_ms"],
             on_row["p99_ms"], on_row["retransmits"]),
            ("off", f"{row['success_rate']:.0%}", row["p50_ms"],
             row["p99_ms"], row["retransmits"]),
        ],
        headers=("retransmission", "success", "p50 ms", "p99 ms",
                 "retransmits"),
    )
    assert row["retransmits"] == 0
    # Without retransmission, lost frames surface as failures (after the
    # resolver's bounded retries) and as 400 ms probe-timeout excursions in
    # the tail.  Either symptom is "measurable"; both usually show.
    assert (row["failed"] > 0 or row["p99_ms"] > 100.0)
    assert row["success_rate"] < on_row["success_rate"]


# ------------------------------------------------------- zero-loss identity


def _echo_server():
    yield SetPid(1, Scope.BOTH)
    while True:
        delivery = yield Receive()
        yield Reply(delivery.sender, Message.reply(ReplyCode.OK))


def _e1_remote_ms(install_null_faults: bool) -> float:
    domain = Domain()
    ws1 = domain.create_host("ws1")
    ws2 = domain.create_host("ws2")
    ws2.spawn(_echo_server(), "server")
    if install_null_faults:
        domain.set_wire_faults(LOSSLESS_WIRE)

    def client():
        yield Delay(0.01)
        pid = yield GetPid(1, Scope.ANY)
        t0 = yield Now()
        for __ in range(20):
            yield Send(pid, Message.request(0x0101))
        t1 = yield Now()
        return (t1 - t0) / 20

    return run_on(domain, ws1, client()) * 1e3


def _open_ms(install_null_faults: bool, cached: bool) -> float:
    domain = Domain(seed=3)
    workstation = setup_workstation(domain, "mann")
    fs_host = domain.create_host("vax1")
    handle = start_server(fs_host, VFileServer(user="mann"))
    standard_prefixes(workstation, handle)
    if cached:
        workstation.enable_name_cache()
    if install_null_faults:
        domain.set_wire_faults(LOSSLESS_WIRE)

    def client(session):
        yield from files.write_file(session, "[home]naming.mss", b"x" * 64)
        # One warm-up open so the cached variant measures the warm path.
        stream = yield from session.open("[home]naming.mss", "r")
        yield from stream.close()
        t0 = yield Now()
        stream = yield from session.open("[home]naming.mss", "r")
        t1 = yield Now()
        yield from stream.close()
        return (t1 - t0) * 1e3

    return run_on(domain, workstation.host, client(workstation.session()))


def test_e14_zero_loss_is_bit_identical():
    """The reliability machinery is free when the wire is clean.

    E1 (remote transaction), E4 (remote via-prefix open), and E12 (warm
    cached open) produce *exactly* the same floats with a zero-rate fault
    model installed as with no fault model at all -- and still match the
    paper.  No timer fires, no rng stream is drawn, no frame is added.
    """
    e1_plain = _e1_remote_ms(False)
    e1_nulled = _e1_remote_ms(True)
    e4_plain = _open_ms(False, cached=False)
    e4_nulled = _open_ms(True, cached=False)
    e12_plain = _open_ms(False, cached=True)
    e12_nulled = _open_ms(True, cached=True)

    report_table(
        "E14c  zero-loss identity (must be exact)",
        [
            ("E1 remote txn", e1_plain, e1_nulled),
            ("E4 remote via-prefix open", e4_plain, e4_nulled),
            ("E12 warm cached open", e12_plain, e12_nulled),
        ],
        headers=("experiment", "no fault model (ms)", "null fault model (ms)"),
    )
    assert e1_plain == e1_nulled
    assert e4_plain == e4_nulled
    assert e12_plain == e12_nulled
    assert e1_plain == pytest.approx(PAPER_E1_REMOTE_MS, rel=0.01)
    # This open composes the stub path slightly differently from the E4/E12
    # benches (a seeding write and a warm-up open precede it), so the
    # comparison to the paper is a sanity band, not the headline assert --
    # bench_e4/bench_e12 own the tight reproductions.
    assert e4_plain == pytest.approx(PAPER_E4_REMOTE_PREFIX_MS, rel=0.02)
    assert e12_plain == pytest.approx(PAPER_E12_WARM_MS, rel=0.02)


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench).

    Rounds are pinned at 100 in both modes: success rate and percentiles
    are round-count-dependent, so quick mode instead skips the clean-wire
    control point.
    """
    from repro.obs.bench import trajectory_point

    def clean_point():
        clean = measure_loss_point(0.0, DEFAULT_CONFIG)
        return {"clean_p50_ms": clean["p50_ms"],
                "clean_retransmits": clean["retransmits"]}

    lossy = measure_loss_point(0.10, DEFAULT_CONFIG)
    return trajectory_point(
        quick,
        {
            "loss10_success_rate": lossy["success_rate"],
            "loss10_p50_ms": lossy["p50_ms"],
            "loss10_p99_ms": lossy["p99_ms"],
            "loss10_retransmits": lossy["retransmits"],
        },
        clean_point)
