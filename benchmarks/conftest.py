"""Benchmark harness plumbing.

Each bench runs a discrete-event simulation and reports *simulated* numbers
against the paper's (wall-clock time of running the simulation, which
pytest-benchmark measures, is not the result -- the simulated latencies
are).  Benches register their paper-vs-measured tables with
:func:`report_table`; the tables are printed in the terminal summary so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures the
reproduction results.
"""

from __future__ import annotations

_REPORTS: list[str] = []


def report_table(title: str, rows: list[tuple], headers: tuple) -> str:
    """Register a result table for the end-of-run summary; returns its text."""
    widths = [len(str(h)) for h in headers]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).ljust(widths[i])
                           for i, h in enumerate(headers)))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    text = "\n".join(lines)
    _REPORTS.append(text)
    return text


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "V-System naming reproduction: "
                                    "paper vs measured")
    for report in _REPORTS:
        terminalreporter.write_line("")
        for line in report.splitlines():
            terminalreporter.write_line(line)
    _REPORTS.clear()
