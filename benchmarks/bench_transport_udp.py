"""Implementation benchmark: the protocol over real UDP sockets.

Not a paper table -- the paper's numbers are hardware measurements our
simulator reproduces.  This measures the *implementation* on today's
loopback: wall-clock Open and read round-trips through the asyncio
transport, with the full protocol stack (prefix forwarding included).
Its role is regression tracking for the real-socket path.
"""

import asyncio

import pytest

from conftest import report_table

from repro.core.context import ContextPair, WellKnownContext
from repro.core.prefix_server import ContextPrefixServer
from repro.net.asyncio_transport import AsyncDomain
from repro.net.latency import STANDARD_3MBIT
from repro.runtime import files
from repro.runtime.session import Session
from repro.servers.fileserver.server import VFileServer

ROUNDS = 30


async def _measure() -> dict:
    domain = AsyncDomain()
    ws = await domain.create_host("ws")
    fs_host = await domain.create_host("fs")
    fileserver = VFileServer(user="mann")
    fs_pid = fs_host.spawn(fileserver.body(), "fileserver")
    prefix = ContextPrefixServer(user="mann")
    prefix_pid = ws.spawn(prefix.body(), "prefix")
    await asyncio.sleep(0.05)
    prefix.define_prefix("home",
                         ContextPair(fs_pid, int(WellKnownContext.HOME)))
    session = Session(ContextPair(fs_pid, int(WellKnownContext.HOME)),
                      prefix_pid, STANDARD_3MBIT)
    done = asyncio.Event()
    results: dict = {}
    loop = asyncio.get_running_loop()

    def client():
        yield from files.write_file(session, "bench.dat", b"x" * 2048)
        t0 = loop.time()
        for __ in range(ROUNDS):
            stream = yield from session.open("bench.dat", "r")
            yield from stream.close()
        t1 = loop.time()
        for __ in range(ROUNDS):
            stream = yield from session.open("[home]bench.dat", "r")
            yield from stream.close()
        t2 = loop.time()
        for __ in range(ROUNDS):
            yield from files.read_file(session, "bench.dat")
        t3 = loop.time()
        results["open_direct_ms"] = (t1 - t0) / ROUNDS * 1e3
        results["open_prefix_ms"] = (t2 - t1) / ROUNDS * 1e3
        results["read_2k_ms"] = (t3 - t2) / ROUNDS * 1e3
        done.set()

    ws.spawn(client(), "bench-client")
    await asyncio.wait_for(done.wait(), 60)
    domain.check_healthy()
    await domain.shutdown()
    return results


def test_udp_transport_roundtrips(benchmark):
    results = benchmark.pedantic(lambda: asyncio.run(_measure()),
                                 rounds=3, iterations=1)
    report_table(
        "UDP  Real-socket transport (loopback wall-clock; implementation "
        "benchmark, not a paper figure)",
        [
            ("open, direct", results["open_direct_ms"]),
            ("open, via prefix server (forwarded)", results["open_prefix_ms"]),
            ("open+read 2 KB+close", results["read_2k_ms"]),
        ],
        headers=("operation", "wall ms"),
    )
    # Sanity: sockets work and the prefix path costs more than direct.
    assert results["open_direct_ms"] < 50
    assert results["open_prefix_ms"] > results["open_direct_ms"] * 0.8


def trajectory_metrics(quick: bool = False) -> dict:
    """Excluded from the continuous benchmark (repro.obs.bench).

    These numbers are loopback wall-clock, not simulated time: they vary
    with the machine and load, so two identical-seed runs would not
    produce identical snapshots and no tolerance would be meaningful.
    """
    return {}
