"""E13: the ``[obs]`` name space -- what a live introspection read costs.

The paper has no observability chapter; this experiment prices the design
decision of PR 3: introspection state is served *through the CSNH protocol
itself*, so reading ``[obs]/hosts/vax1/metrics`` is a real three-hop
resolution (prefix server -> root obs server -> remote stat server) plus
ordinary block reads -- not a free function call.

Measured here:

- **read latency** by target: local-host metrics vs remote-host metrics vs
  fleet roll-ups, with the forwarding hop and wire crossings visible in the
  latency deltas;
- **non-perturbation**: with stat servers deployed on every host and
  introspection reads interleaved into the workload, the E4 Open table,
  the E7 forwarding slope, and the E12 warm-open collapse all reproduce
  unchanged -- observers pay, the observed system does not.
"""

import pytest

from conftest import report_table
from _common import (
    export_observability,
    maybe_observability,
    run_on,
)

from repro.core.context import ContextPair, WellKnownContext
from repro.kernel.domain import Domain
from repro.kernel.ipc import Now
from repro.net.latency import NAME_SEGMENT_BYTES
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, enable_obs_namespace, start_server

#: E4 baselines (ms, simulated) that must survive the [obs] deployment.
E4_PAPER = {
    "local direct": 1.21,
    "remote direct": 3.70,
    "local via prefix": 5.14,
    "remote via prefix": 7.69,
}

ROUNDS = 10


def observed_system(name_cache: bool = False):
    """ws1 + vax1 file server with stat servers on every host."""
    domain = Domain(obs=maybe_observability())
    workstation = setup_workstation(domain, "mann", name="ws1",
                                    name_cache=name_cache)
    handle = start_server(domain.create_host("vax1"),
                          VFileServer(user="mann"))
    standard_prefixes(workstation, handle)
    enable_obs_namespace(domain, root_host=workstation.host)
    return domain, workstation, handle


def _timed_read(session, name):
    """One full read of an [obs] object: (latency ms, payload bytes)."""
    t0 = yield Now()
    data = yield from session.read_file(name)
    t1 = yield Now()
    return (t1 - t0) * 1e3, len(data)


def _timed_open(session, name):
    t0 = yield Now()
    stream = yield from session.open(name, "r")
    t1 = yield Now()
    yield from stream.close()
    return (t1 - t0) * 1e3


# ------------------------------------------------------------ read latency


def measure_read_latency() -> dict:
    domain, workstation, __ = observed_system()
    targets = (
        ("local host metrics", "[obs]/hosts/ws1/metrics"),
        ("remote host metrics", "[obs]/hosts/vax1/metrics"),
        ("remote host processes", "[obs]/hosts/vax1/processes"),
        ("fleet metrics", "[obs]/fleet/metrics"),
        ("fleet hosts", "[obs]/fleet/hosts"),
    )

    def client(session):
        for index in range(5):
            yield from files.write_file(session, f"[home]f{index}.txt",
                                        b"x" * 64)
        results = {}
        for label, name in targets:
            total = 0.0
            size = 0
            for __ in range(ROUNDS):
                ms, nbytes = yield from _timed_read(session, name)
                total += ms
                size = nbytes
            results[label] = {"ms": total / ROUNDS, "bytes": size}
        return results

    results = run_on(domain, workstation.host, client(workstation.session()))
    export_observability(domain.obs, "bench_e13")
    return results


def test_e13_introspection_read_latency(benchmark):
    results = benchmark(measure_read_latency)

    report_table(
        "E13  [obs] read latency: prefix server -> root obs server -> "
        "stat server, plus block reads",
        [(label, row["ms"], row["bytes"])
         for label, row in results.items()],
        headers=("target", "measured ms", "payload bytes"),
    )

    local = results["local host metrics"]["ms"]
    remote = results["remote host metrics"]["ms"]
    # Introspection is charged like any other resolution: a local-host read
    # already costs more than E4's 5.14 ms local via-prefix open (an extra
    # forwarding hop), and never less than the open it contains.
    assert local > 5.14
    # The remote stat server adds cross-machine legs: the forwarded request
    # and every payload block cross the wire.
    assert remote > local + 1.0
    # Roll-ups served by the (local) root aren't remote-priced: the fleet
    # read sits below the remote per-host read unless its payload dwarfs it.
    assert results["fleet hosts"]["ms"] < remote
    for row in results.values():
        assert row["bytes"] > 0


# ---------------------------------------------------------- non-perturbation


def measure_e4_with_obs() -> dict:
    """The E4 grid, with stat servers deployed on every machine."""
    domain = Domain(obs=maybe_observability())
    workstation = setup_workstation(domain, "mann")
    remote = start_server(domain.create_host("vax1"),
                          VFileServer(user="mann"))
    local = start_server(workstation.host, VFileServer(user="mann"))
    standard_prefixes(workstation, remote)
    workstation.prefix_server.define_prefix(
        "local", ContextPair(local.pid, int(WellKnownContext.HOME)))
    enable_obs_namespace(domain, root_host=workstation.host)
    local_home = ContextPair(local.pid, int(WellKnownContext.HOME))

    def seed(session):
        yield from files.write_file(session, "[home]naming.mss", b"x" * 64)
        yield from files.write_file(session, "[local]naming.mss", b"y" * 64)

    run_on(domain, workstation.host, seed(workstation.session()), name="seed")

    cases = {
        "local direct": (workstation.session(local_home), "naming.mss"),
        "remote direct": (workstation.session(), "naming.mss"),
        "local via prefix": (workstation.session(), "[local]naming.mss"),
        "remote via prefix": (workstation.session(), "[home]naming.mss"),
    }
    results = {}
    for label, (session, name) in cases.items():

        def timer(session=session, name=name):
            total = 0.0
            for __ in range(ROUNDS):
                total += yield from _timed_open(session, name)
                # Live introspection between opens: extra traffic, but it
                # must not leak into the measured open path.
                yield from session.read_file("[obs]/hosts/vax1/metrics")
            return total / ROUNDS

        results[label] = run_on(domain, workstation.host, timer(),
                                name=f"timer-{label}")
    return results


def test_e13_e4_table_unperturbed(benchmark):
    results = benchmark(measure_e4_with_obs)

    report_table(
        "E13b  E4 Open table with [obs] deployed and introspection reads "
        "interleaved",
        [(label, E4_PAPER[label], results[label]) for label in E4_PAPER],
        headers=("case", "paper ms", "measured ms"),
    )
    for label, paper_ms in E4_PAPER.items():
        assert results[label] == pytest.approx(paper_ms, rel=0.02)


def measure_e7_slope_with_obs(hops: int = 2, rounds: int = 5) -> float:
    """E7's per-link forwarding slope, stat servers running everywhere."""
    domain = Domain(obs=maybe_observability())
    workstation = setup_workstation(domain, "mann")
    handles = [start_server(domain.create_host(f"vax{i}"),
                            VFileServer(user="mann"))
               for i in range(hops + 1)]
    standard_prefixes(workstation, handles[0])
    for index in range(hops):
        handles[index].server.store.link_remote(
            handles[index].server.home, b"next",
            ContextPair(handles[index + 1].pid, int(WellKnownContext.HOME)))
    enable_obs_namespace(domain, root_host=workstation.host)

    def client(session):
        times = {}
        for count in (0, hops):
            name = "next/" * count + f"leaf{count}.txt"
            yield from files.write_file(session, name, b"x")
            total = 0.0
            for __ in range(rounds):
                total += yield from _timed_open(session, name)
            times[count] = total / rounds
        return times

    times = run_on(domain, workstation.host, client(workstation.session()))
    return (times[hops] - times[0]) / hops


def test_e13_e7_forwarding_slope_unperturbed(benchmark):
    slope = benchmark(measure_e7_slope_with_obs)
    hop_cost = Domain().latency.remote_hop(NAME_SEGMENT_BYTES) * 1e3
    report_table(
        "E13c  E7 forwarding slope with [obs] deployed",
        [("per-link cost (measured)", slope),
         ("per-link cost (model)", hop_cost)],
        headers=("quantity", "ms"),
    )
    assert slope == pytest.approx(hop_cost, rel=0.05)


def measure_e12_warm_with_obs() -> dict:
    """E12's warm-open collapse, with introspection reads interleaved."""
    domain, workstation, __ = observed_system(name_cache=True)

    def client(session):
        yield from files.write_file(session, "[home]naming.mss", b"x" * 64)
        cold = yield from _timed_open(session, "[home]naming.mss")
        total = 0.0
        for __ in range(ROUNDS):
            total += yield from _timed_open(session, "[home]naming.mss")
            yield from session.read_file("[obs]/fleet/metrics")
        return {"cold": cold, "warm": total / ROUNDS}

    return run_on(domain, workstation.host, client(workstation.session()))


def test_e13_e12_warm_open_unperturbed(benchmark):
    results = benchmark(measure_e12_warm_with_obs)
    report_table(
        "E13d  E12 warm-open collapse with [obs] deployed",
        [("warm via prefix (target ~3.70)", results["warm"]),
         ("cold via prefix", results["cold"])],
        headers=("case", "measured ms"),
    )
    # The cache still collapses warm opens to the direct-open cost.
    assert results["warm"] == pytest.approx(E4_PAPER["remote direct"],
                                            rel=0.05)


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench)."""
    from repro.obs.bench import trajectory_point

    latency = measure_read_latency()
    return trajectory_point(
        quick,
        {
            "local_metrics_read_ms": latency["local host metrics"]["ms"],
            "remote_metrics_read_ms": latency["remote host metrics"]["ms"],
            "fleet_metrics_read_ms": latency["fleet metrics"]["ms"],
        },
        lambda: {
            "warm_open_with_obs_ms": measure_e12_warm_with_obs()["warm"]})
