"""Ablations of the design choices DESIGN.md calls out.

Not paper tables -- these vary one mechanism at a time to show *why* the
design is the way it is:

- A1: the Sec. 5.6 pattern-matching extension (server-side filtering vs
  shipping the whole directory);
- A2: the file server's post-reply read-ahead (the mechanism behind E3);
- A3: the fixed name-segment buffer size (what a bigger buffer would cost
  every remote CSname operation);
- A4: prefix-server parse CPU (1984's 3.5 ms vs a faster machine) -- the
  delta in E4 is almost entirely this constant.
"""

import pytest

from conftest import report_table
from _common import run_on, standard_system

from repro.core.context import ContextPair, WellKnownContext
from repro.kernel.domain import Domain
from repro.kernel.ipc import Now
from repro.net.latency import STANDARD_3MBIT
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from repro.servers.fileserver.disk import DiskModel
from repro.vio.client import read_block


# ---------------------------------------------------------------- A1


def measure_listing(entries: int, pattern) -> tuple[float, int]:
    system_domain, workstation, fs = standard_system()

    def seed(session):
        yield from session.mkdir("box")
        for index in range(entries):
            suffix = "log" if index % 16 else "err"
            yield from session.create(f"box/f{index:03d}.{suffix}")

    run_on(system_domain, workstation.host, seed(workstation.session()),
           name="seed")
    before = system_domain.metrics.count("net.bytes")
    session = workstation.session()

    def client():
        t0 = yield Now()
        records = yield from session.list_directory("box", pattern=pattern)
        t1 = yield Now()
        return (t1 - t0) * 1e3, records

    elapsed, records = run_on(system_domain, workstation.host, client(),
                              name="lister")
    net_bytes = system_domain.metrics.count("net.bytes") - before
    return elapsed, net_bytes


def test_a1_pattern_matching_extension(benchmark):
    full_ms, full_bytes = benchmark(measure_listing, 128, None)
    filtered_ms, filtered_bytes = measure_listing(128, "*.err")

    report_table(
        "A1  Sec. 5.6 extension: pattern-matched context directories "
        "(128 objects, 8 matching)",
        [
            ("full directory", full_ms, full_bytes),
            ("pattern '*.err'", filtered_ms, filtered_bytes),
            ("saving", full_ms - filtered_ms, full_bytes - filtered_bytes),
        ],
        headers=("listing", "ms", "net bytes"),
    )
    assert filtered_ms < full_ms * 0.6
    assert filtered_bytes < full_bytes * 0.6


# ---------------------------------------------------------------- A2


def measure_stream(readahead: bool, pages: int = 24) -> float:
    domain = Domain()
    workstation = setup_workstation(domain, "mann")
    fs = start_server(domain.create_host("vax1"),
                      VFileServer(user="mann",
                                  disk=DiskModel(page_seconds=15e-3),
                                  readahead=readahead))
    standard_prefixes(workstation, fs)
    content = b"a" * (512 * pages)

    def client(session):
        yield from files.write_file(session, "s.dat", content)
        stream = yield from session.open("s.dat", "r")
        yield from read_block(stream.server, stream.instance, 0)
        t0 = yield Now()
        for block in range(1, pages):
            yield from read_block(stream.server, stream.instance, block)
        t1 = yield Now()
        return (t1 - t0) / (pages - 1)

    return run_on(domain, workstation.host,
                  client(workstation.session())) * 1e3


def test_a2_readahead_ablation(benchmark):
    with_ra = benchmark(measure_stream, True)
    without_ra = measure_stream(False)

    report_table(
        "A2  File server read-ahead ablation (sequential read, 15 ms disk)",
        [
            ("read-ahead ON (paper's 17.13)", with_ra),
            ("read-ahead OFF", without_ra),
            ("penalty", without_ra - with_ra),
        ],
        headers=("configuration", "ms/page"),
    )
    assert with_ra == pytest.approx(17.1, rel=0.02)
    # Without read-ahead every page pays disk + the full request/reply.
    assert without_ra == pytest.approx(15.0 + 3.93, rel=0.03)


# ---------------------------------------------------------------- A3


def test_a3_name_buffer_size(benchmark):
    """The 256-byte fixed name buffer: every remote CSname op carries it.

    The ablation evaluates the latency model at alternative buffer sizes
    (the constant is the calibrated wire payload; see latency.py).
    """

    def evaluate():
        rows = []
        for buffer in (64, 128, 256, 512, 1024):
            remote_open = (STANDARD_3MBIT.stub_pre
                           + STANDARD_3MBIT.remote_transaction(
                               request_segment=buffer)
                           + STANDARD_3MBIT.stub_post) * 1e3
            rows.append((buffer, remote_open))
        return rows

    rows = benchmark(evaluate)
    report_table(
        "A3  Remote Open vs fixed name-buffer size (paper uses 256 B)",
        [(f"{size} B", ms) for size, ms in rows],
        headers=("buffer", "remote open ms"),
    )
    as_dict = dict(rows)
    assert as_dict[256] == pytest.approx(3.70, rel=0.01)
    # A 1 KB buffer would cost every remote open ~2 ms more; 64 B would
    # save ~0.5 ms but cap path names absurdly.
    assert as_dict[1024] - as_dict[256] > 1.9
    assert as_dict[256] - as_dict[64] < 0.6


# ---------------------------------------------------------------- A4


def measure_prefix_delta(parse_cpu: float) -> float:
    domain = Domain()
    workstation = setup_workstation(domain, "mann")
    workstation.prefix_server.parse_cpu = parse_cpu
    fs = start_server(domain.create_host("vax1"), VFileServer(user="mann"))
    standard_prefixes(workstation, fs)

    def client(session):
        yield from files.write_file(session, "[home]t.txt", b"x")
        t0 = yield Now()
        stream = yield from session.open("t.txt", "r")
        t1 = yield Now()
        yield from stream.close()
        t2 = yield Now()
        stream = yield from session.open("[home]t.txt", "r")
        t3 = yield Now()
        yield from stream.close()
        return ((t3 - t2) - (t1 - t0)) * 1e3

    return run_on(domain, workstation.host, client(workstation.session()))


def test_a4_prefix_cpu_sensitivity(benchmark):
    paper_cpu = STANDARD_3MBIT.prefix_server_cpu
    delta_1984 = benchmark(measure_prefix_delta, paper_cpu)
    delta_fast = measure_prefix_delta(paper_cpu / 10)
    delta_free = measure_prefix_delta(0.0)

    report_table(
        "A4  Prefix delta vs prefix-server parse CPU (E4's 3.94 ms "
        "dissected)",
        [
            ("10 MHz 68000 (paper)", paper_cpu * 1e3, delta_1984),
            ("10x faster CPU", paper_cpu / 10 * 1e3, delta_fast),
            ("free parsing (floor = 1 local hop)", 0.0, delta_free),
        ],
        headers=("machine", "parse CPU ms", "measured delta ms"),
    )
    assert delta_1984 == pytest.approx(3.93, rel=0.02)
    # The delta is essentially the parse CPU plus one 385 us local hop.
    assert delta_free == pytest.approx(0.385, rel=0.05)
    assert delta_fast == pytest.approx(paper_cpu / 10 * 1e3 + 0.385,
                                       rel=0.05)


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench)."""
    from repro.obs.bench import trajectory_point

    def listing_points():
        full_ms, full_bytes = measure_listing(128, None)
        filtered_ms, filtered_bytes = measure_listing(128, "*.err")
        return {
            "no_readahead_ms": measure_stream(False),
            "full_listing_ms": full_ms,
            "filtered_listing_ms": filtered_ms,
            "full_listing_bytes": full_bytes,
            "filtered_listing_bytes": filtered_bytes,
        }

    return trajectory_point(
        quick,
        {
            "readahead_ms": measure_stream(True),
            "prefix_delta_ms": measure_prefix_delta(
                STANDARD_3MBIT.prefix_server_cpu),
        },
        listing_points)
