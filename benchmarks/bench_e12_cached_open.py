"""E12: client-side name-binding cache -- warm/cold opens, hit rate, recovery.

Paper Sec. 5: "a client that has previously communicated with the
appropriate context server can bypass the context prefix server and send
the request directly" -- the (server-pid, context-id) binding makes that
safe to do.  E4 prices what the bypass saves: every via-prefix request pays
~3.9 ms of prefix-server processing over a direct send.

This bench measures the :mod:`repro.core.namecache` layer built on that
observation:

- **warm vs cold**: a cold ``[home]`` open pays the full E4 via-prefix cost
  (7.69 ms remote); once the binding advice is learned, the warm open
  collapses to the direct-open cost (3.70 ms remote, 1.21 ms local).
- **hit rate**: a Zipf-skewed trace over a populated name tree runs almost
  entirely warm -- after the first miss the *prefix binding* serves every
  name under the prefix, not just names already seen.
- **stale-hint recovery**: a server crash + re-registration makes every
  cached binding for it wrong; the optimistic send comes back
  NONEXISTENT_PROCESS, the cache invalidates, and the same request
  transparently re-resolves through the prefix server.  Correctness never
  depends on cache freshness.
"""

import pytest

from conftest import report_table
from _common import (
    export_observability,
    maybe_observability,
    open_timing_system,
    run_on,
    standard_system,
)

from repro.core.context import ContextPair, WellKnownContext
from repro.faults import CrashSchedule
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, Now
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from repro.workloads.namegen import NameTreeSpec, populate_fileserver
from repro.workloads.traces import Operation, zipf_trace

#: E4 baselines the cache is measured against (ms, simulated).
E4_PAPER = {
    "local direct": 1.21,
    "remote direct": 3.70,
    "local via prefix": 5.14,
    "remote via prefix": 7.69,
}

ROUNDS = 20


def _timed_open(session, name):
    """One Open/close, returning its simulated latency in ms."""
    t0 = yield Now()
    stream = yield from session.open(name, "r")
    t1 = yield Now()
    yield from stream.close()
    return (t1 - t0) * 1e3


def measure_warm_cold() -> dict:
    domain, workstation, remote, local = open_timing_system()

    def seed(session):
        yield from files.write_file(session, "[home]naming.mss", b"x" * 64)
        yield from files.write_file(session, "[local]naming.mss", b"y" * 64)

    # Seed through an uncached session, then switch caching on: sessions
    # capture the workstation cache at creation time.
    run_on(domain, workstation.host, seed(workstation.session()), name="seed")
    cache = workstation.enable_name_cache()

    results = {}
    cases = {
        "remote": ("naming.mss", "[home]naming.mss"),
        "local": ("naming.mss", "[local]naming.mss"),
    }
    local_home = ContextPair(local.pid, int(WellKnownContext.HOME))
    direct_sessions = {
        "remote": workstation.session(),
        "local": workstation.session(local_home),
    }
    for where, (direct_name, prefixed_name) in cases.items():

        def timer(where=where, direct_name=direct_name,
                  prefixed_name=prefixed_name):
            session = workstation.session()
            cache.clear()
            direct = yield from _timed_open(direct_sessions[where],
                                            direct_name)
            cold = yield from _timed_open(session, prefixed_name)
            warm_total = 0.0
            for __ in range(ROUNDS):
                warm_total += yield from _timed_open(session, prefixed_name)
            return direct, cold, warm_total / ROUNDS

        direct, cold, warm = run_on(domain, workstation.host, timer(),
                                    name=f"timer-{where}")
        results[f"{where} direct"] = direct
        results[f"{where} via prefix (cold)"] = cold
        results[f"{where} via prefix (warm)"] = warm
    results["stats"] = cache.stats
    return results


def measure_zipf_hit_rate() -> dict:
    domain, workstation, handle = standard_system(seed=7)
    spec = NameTreeSpec(depth=2, fanout=3, files_per_directory=4,
                        file_bytes=64)
    paths = populate_fileserver(handle.server, spec, root="data")
    names = [f"[root]{path}" for path in paths]
    trace = zipf_trace(names, length=800, seed=11, skew=1.1,
                       read_fraction=0.95, query_fraction=0.05)
    cache = workstation.enable_name_cache()
    session = workstation.session()

    def run_trace():
        total = 0.0
        opens = 0
        for op, name in trace:
            if op is Operation.QUERY:
                yield from session.query(name)
                continue
            total += yield from _timed_open(session, name)
            opens += 1
        return total / opens

    mean_open = run_on(domain, workstation.host, run_trace(), name="zipf")
    export_observability(domain.obs, "bench_e12")
    return {
        "mean_open_ms": mean_open,
        "events": len(trace),
        "unique_names": trace.unique_names(),
        "stats": cache.stats,
        "footprint": cache.footprint(),
    }


def measure_stale_recovery() -> dict:
    """Crash + re-registration: every cached binding is wrong; recover."""
    domain = Domain(seed=3)
    workstation = setup_workstation(domain, "mann")
    fs_host = domain.create_host("vax1")

    def populated_server() -> VFileServer:
        server = VFileServer(user="mann")
        node = server.store.make_path("data/f0.dat", directory=False)
        node.data[:] = b"v" * 64
        return server

    handle = start_server(fs_host, populated_server())
    standard_prefixes(workstation, handle)
    # Recovery-only mode: no registry watching, so the crash is discovered
    # the hard way -- by sending to the dead pid.
    cache = workstation.enable_name_cache(watch_registry=False)
    CrashSchedule(domain, fs_host).down_between(
        0.05, 0.1, respawn=lambda host: start_server(host, populated_server()))
    name = "[storage]data/f0.dat"

    def client():
        session = workstation.session()
        cold = yield from _timed_open(session, name)       # learn
        warm = yield from _timed_open(session, name)       # generic-bound hit
        yield Delay(0.3)                                   # crash + respawn
        recovered = yield from _timed_open(session, name)  # stale -> fallback
        rewarmed = yield from _timed_open(session, name)   # re-learned
        return cold, warm, recovered, rewarmed

    cold, warm, recovered, rewarmed = run_on(domain, workstation.host,
                                             client(), name="recovery")
    return {
        "cold": cold,
        "warm": warm,
        "recovered": recovered,
        "rewarmed": rewarmed,
        "stats": cache.stats,
    }


def test_e12_warm_open_collapses_to_direct(benchmark):
    results = benchmark(measure_warm_cold)

    rows = []
    for where in ("remote", "local"):
        direct = results[f"{where} direct"]
        cold = results[f"{where} via prefix (cold)"]
        warm = results[f"{where} via prefix (warm)"]
        rows.append((f"{where} direct", E4_PAPER[f"{where} direct"], direct))
        rows.append((f"{where} via prefix, cold",
                     E4_PAPER[f"{where} via prefix"], cold))
        rows.append((f"{where} via prefix, warm", "~direct", warm))
    report_table(
        "E12  Cached open latency: cold pays the E4 via-prefix cost, warm "
        "collapses to direct",
        rows,
        headers=("case", "expected ms", "measured ms"),
    )

    # Cold (miss) opens still pay the full E4 via-prefix cost: learning
    # from reply advice costs zero extra simulated time.
    assert results["remote via prefix (cold)"] == pytest.approx(
        E4_PAPER["remote via prefix"], rel=0.02)
    assert results["local via prefix (cold)"] == pytest.approx(
        E4_PAPER["local via prefix"], rel=0.02)
    # ...and direct opens are untouched by the cache layer.
    assert results["remote direct"] == pytest.approx(
        E4_PAPER["remote direct"], rel=0.02)
    # Warm opens collapse to the direct-open cost: the acceptance bar.
    assert results["remote via prefix (warm)"] == pytest.approx(
        results["remote direct"], rel=0.05)
    assert results["remote via prefix (warm)"] == pytest.approx(3.70,
                                                                rel=0.05)
    assert results["local via prefix (warm)"] == pytest.approx(
        results["local direct"], rel=0.05)
    assert results["stats"].fallbacks == 0


def test_e12_zipf_hit_rate(benchmark):
    results = benchmark(measure_zipf_hit_rate)
    stats = results["stats"]

    report_table(
        "E12b  Zipf(1.1) trace over a populated tree: hit rate and warm "
        "open cost",
        [
            ("events", results["events"]),
            ("unique names", results["unique_names"]),
            ("cache lookups", stats.lookups),
            ("hits", stats.hits),
            ("misses", stats.misses),
            ("fallbacks", stats.fallbacks),
            ("hit rate", f"{stats.hit_rate:.3f}"),
            ("mean open ms (target ~3.70)", results["mean_open_ms"]),
        ],
        headers=("quantity", "value"),
    )

    # The CI gate: the skewed workload must run >= 90% warm.
    assert stats.hit_rate >= 0.90
    assert stats.fallbacks == 0
    # Warm-dominated mean open sits at the direct-open cost, far below the
    # uncached 7.69 ms via-prefix cost.
    assert results["mean_open_ms"] == pytest.approx(3.70, rel=0.05)


def test_e12_stale_hint_recovery(benchmark):
    results = benchmark(measure_stale_recovery)
    stats = results["stats"]

    report_table(
        "E12c  Stale-hint recovery: crash + re-registration mid-workload",
        [
            ("cold open (learn)", results["cold"]),
            ("warm open (generic hit)", results["warm"]),
            ("open across crash (fallback)", results["recovered"]),
            ("next open (re-learned)", results["rewarmed"]),
            ("fallbacks", stats.fallbacks),
            ("invalidations", stats.invalidations),
        ],
        headers=("case", "ms / count"),
    )

    # The stale binding was used, detected, invalidated, and recovered --
    # all inside one request; the caller never saw an error.
    assert stats.fallbacks >= 1
    assert stats.invalidations >= 1
    # The recovery open costs extra (stale NACK + full re-resolution) but
    # succeeds; the very next open is warm again at direct cost.
    assert results["recovered"] > results["warm"]
    assert results["rewarmed"] == pytest.approx(3.70, rel=0.05)


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench).

    The Zipf trace length is pinned: hit rate and mean depend on it.
    """
    from repro.obs.bench import trajectory_point

    def zipf_point():
        zipf = measure_zipf_hit_rate()
        return {"zipf_mean_open_ms": zipf["mean_open_ms"],
                "zipf_hit_rate": zipf["stats"].hit_rate}

    warm_cold = measure_warm_cold()
    return trajectory_point(
        quick,
        {
            "remote_cold_ms": warm_cold["remote via prefix (cold)"],
            "remote_warm_ms": warm_cold["remote via prefix (warm)"],
            "local_warm_ms": warm_cold["local via prefix (warm)"],
        },
        zipf_point)
