"""E11 (paper Sec. 3.1): IPC as an adequate transport for streams.

Paper: "Streams can be implemented efficiently using the V IPC primitives
... This is comparable to the performance of highly tuned special-purpose
file access protocols.  With this performance, the V IPC facility is also
entirely adequate as a transport level for remote terminal access and file
transfer."

Reproduced: sequential stream throughput against the disk bound (the
adequacy claim quantified), a pipe stream, and bulk transfer utilization.
"""

import pytest

from conftest import report_table
from _common import run_on, standard_system

from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, Now
from repro.kernel.services import Scope, ServiceId
from repro.net.latency import STANDARD_3MBIT
from repro.runtime import files
from repro.servers import PipeServer, start_server
from repro.servers.fileserver.disk import DiskModel
from repro.servers.pipeserver import drain_pipe, pipe_write
from repro.vio.client import read_block

PAGES = 64


def measure_file_throughput() -> tuple[float, float]:
    """(achieved KB/s, disk-bound KB/s) for a sequential remote read."""
    domain, workstation, fs = standard_system(
        disk=DiskModel(page_seconds=15e-3))
    content = b"t" * (512 * PAGES)

    def client(session):
        yield from files.write_file(session, "stream.dat", content)
        stream = yield from session.open("stream.dat", "r")
        t0 = yield Now()
        for block in range(PAGES):
            yield from read_block(stream.server, stream.instance, block)
        t1 = yield Now()
        return len(content) / (t1 - t0) / 1024

    achieved = run_on(domain, workstation.host, client(workstation.session()))
    disk_bound = 512 / 15e-3 / 1024
    return achieved, disk_bound


def measure_pipe_throughput() -> float:
    """KB/s through a same-host pipe (terminal-style stream traffic)."""
    domain = Domain()
    host = domain.create_host("ws")
    start_server(host, PipeServer())
    payload = b"p" * (16 * 1024)

    def client():
        yield Delay(0.01)
        pid = yield GetPid(int(ServiceId.PIPE), Scope.LOCAL)
        from repro.core.context import ContextPair
        from repro.core.resolver import NamingEnvironment
        from repro.runtime.session import Session

        session = Session(ContextPair(pid, 0), None, domain.latency)
        writer = yield from session.open("stream", "w")
        reader = yield from session.open("stream", "r")
        t0 = yield Now()
        yield from pipe_write(writer, payload)
        yield from writer.close()  # reader then sees EOF when drained
        data = yield from drain_pipe(reader)
        t1 = yield Now()
        assert data == payload
        return len(payload) / (t1 - t0) / 1024

    return run_on(domain, host, client())


def test_e11_stream_adequacy(benchmark):
    achieved, disk_bound = benchmark(measure_file_throughput)
    pipe_kbs = measure_pipe_throughput()
    bulk_kbs = (64 / (STANDARD_3MBIT.bulk_move_remote(64 * 1024)) )

    report_table(
        "E11  Stream transport adequacy (Sec. 3.1)",
        [
            ("remote file read (15 ms disk)", f"{achieved:.1f} KB/s",
             f"{achieved / disk_bound:.0%} of disk bound"),
            ("disk bound", f"{disk_bound:.1f} KB/s", "100%"),
            ("local pipe stream", f"{pipe_kbs:.1f} KB/s", "(no disk)"),
            ("bulk MoveTo transfer", f"{bulk_kbs:.1f} KB/s",
             "(file transfer)"),
        ],
        headers=("stream", "throughput", "note"),
    )

    # The adequacy claim: IPC streaming achieves >85% of what the disk
    # could ever deliver -- the protocol is not the bottleneck.
    assert achieved / disk_bound > 0.85
    # Pipes (no disk) run far faster than disk-bound file streams.
    assert pipe_kbs > achieved * 3


def test_e11_throughput_scales_with_disk(benchmark):
    """Halving disk time nearly halves stream time: the transport keeps up."""

    def run():
        periods = []
        for disk_ms in (15.0, 7.5):
            domain, workstation, fs = standard_system(
                disk=DiskModel(page_seconds=disk_ms * 1e-3))
            content = b"x" * (512 * 16)

            def client(session, label=disk_ms):
                yield from files.write_file(session, "d.dat", content)
                stream = yield from session.open("d.dat", "r")
                t0 = yield Now()
                for block in range(16):
                    yield from read_block(stream.server, stream.instance,
                                          block)
                t1 = yield Now()
                return (t1 - t0) / 16

            periods.append(run_on(domain, workstation.host,
                                  client(workstation.session())) * 1e3)
        return periods

    slow, fast = benchmark(run)
    assert fast < slow * 0.65


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench)."""
    from repro.obs.bench import trajectory_point

    achieved, disk_bound = measure_file_throughput()
    return trajectory_point(
        quick,
        {
            "file_read_kbs": achieved,
            "disk_utilization_rate": achieved / disk_bound,
        },
        lambda: {"pipe_kbs": measure_pipe_throughput()})
