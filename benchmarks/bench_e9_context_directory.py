"""E9 (paper Sec. 5.6): context directories vs enumerate-and-query.

Paper: "An alternative to this approach would be to provide an operation
that enumerates (or lists) the names of objects in a context.  The client
would use the list of names in conjunction with the object query operation
to simulate the reading of a context directory.  We argue that our approach
is preferable because ... a straight enumeration of names is rarely
sufficient and requires an additional operation for each object at
considerable cost over the context directory approach."

Reproduced: the two client strategies against the same directory, across
context sizes.  The directory read costs one open plus O(size/block)
sequential reads; enumerate+query costs one transaction *per object*.
"""

import pytest

from conftest import report_table
from _common import run_on, standard_system

from repro.core.descriptors import ObjectDescription
from repro.kernel.ipc import Now
from repro.runtime import files

SIZES = (4, 16, 64, 128)


def build_directory(entries: int):
    domain, workstation, fs = standard_system()

    def seed(session):
        yield from session.mkdir("many")
        for index in range(entries):
            yield from session.create(f"many/f{index:03d}.dat")

    run_on(domain, workstation.host, seed(workstation.session()),
           name="seed")
    return domain, workstation


def measure_directory_read(entries: int) -> tuple[float, int]:
    domain, workstation = build_directory(entries)
    session = workstation.session()

    def client():
        t0 = yield Now()
        records = yield from session.list_directory("many")
        t1 = yield Now()
        assert len(records) == entries
        return t1 - t0

    elapsed = run_on(domain, workstation.host, client(), name="reader")
    return elapsed * 1e3, entries


def measure_enumerate_and_query(entries: int) -> float:
    domain, workstation = build_directory(entries)
    session = workstation.session()

    def client():
        # The names are assumed known (enumeration itself would add another
        # read); we charge only the per-object queries, which is *generous*
        # to the design the paper argues against.
        t0 = yield Now()
        records = []
        for index in range(entries):
            records.append((yield from session.query(f"many/f{index:03d}.dat")))
        t1 = yield Now()
        assert len(records) == entries
        return t1 - t0

    return run_on(domain, workstation.host, client(), name="querier") * 1e3


def test_e9_context_directory_vs_enumerate(benchmark):
    directory_ms, __ = benchmark(measure_directory_read, SIZES[-1])

    rows = []
    ratios = {}
    for size in SIZES:
        dir_ms, __ = measure_directory_read(size)
        enum_ms = measure_enumerate_and_query(size)
        ratios[size] = enum_ms / dir_ms
        rows.append((size, dir_ms, enum_ms, f"{ratios[size]:.1f}x"))
    report_table(
        "E9  Listing a context: directory read vs enumerate+query (Sec. 5.6)",
        rows,
        headers=("objects", "directory ms", "enumerate+query ms",
                 "advantage"),
    )

    # Shape: the advantage grows with context size; by 64 objects the
    # directory read wins by several-fold.
    assert ratios[SIZES[0]] > 1.0
    assert ratios[64] > 3.0
    assert ratios[128] >= ratios[16]


def test_e9_directory_read_is_block_granular(benchmark):
    """Cost steps with blocks of records, not per object -- the mechanism
    behind the E9 advantage."""

    def run():
        small_ms, __ = measure_directory_read(2)
        bigger_ms, __ = measure_directory_read(8)
        return small_ms, bigger_ms

    small_ms, bigger_ms = benchmark(run)
    report_table(
        "E9b  Directory read cost, 2 vs 8 objects (same block count)",
        [("2 objects", small_ms), ("8 objects", bigger_ms)],
        headers=("context", "measured ms"),
    )
    # 8 small records still fit a couple of blocks: far from 4x the cost.
    assert bigger_ms < small_ms * 2.0


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench).

    The context size is pinned (64) in both modes: per-object costs depend
    on it, so reducing it would change the metric, not just the runtime.
    """
    dir_ms, __ = measure_directory_read(64)
    enum_ms = measure_enumerate_and_query(64)
    return {
        "directory64_ms": dir_ms,
        "enumerate64_ms": enum_ms,
        "advantage64_ratio": enum_ms / dir_ms,
    }
