"""E1 (paper Sec. 3.1, Figure 1): the Send-Receive-Reply transaction.

Paper: "The time for a Send-Receive-Reply sequence using 32-byte messages
between two processes on separate 10 MHz SUN workstations connected by a
3 Mbit Ethernet is 2.56 milliseconds."

Reproduced: remote and local transactions measured through the live kernel,
plus the 10 Mbit variant showing the CPU-dominance the V authors reported.
"""

import pytest

from conftest import report_table
from _common import run_on

from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, Now, Receive, Reply, Send, SetPid
from repro.kernel.messages import Message, ReplyCode
from repro.kernel.services import Scope
from repro.net.latency import STANDARD_3MBIT, STANDARD_10MBIT

PAPER_REMOTE_MS = 2.56
PAPER_LOCAL_MS = 0.77  # the SOSP'83 local figure the paper builds on

ROUNDS = 50


def echo_server():
    yield SetPid(1, Scope.BOTH)
    while True:
        delivery = yield Receive()
        yield Reply(delivery.sender, Message.reply(ReplyCode.OK))


def measure_transactions(latency, remote: bool, rounds: int = ROUNDS) -> float:
    domain = Domain(latency=latency)
    client_host = domain.create_host("ws1")
    server_host = domain.create_host("ws2") if remote else client_host
    server_host.spawn(echo_server(), "server")

    def client():
        yield Delay(0.01)
        pid = yield GetPid(1, Scope.ANY)
        assert pid is not None
        t0 = yield Now()
        for __ in range(rounds):
            yield Send(pid, Message.request(0x0101))
        t1 = yield Now()
        return (t1 - t0) / rounds

    return run_on(domain, client_host, client()) * 1e3


def test_e1_send_receive_reply(benchmark):
    remote_ms = benchmark(measure_transactions, STANDARD_3MBIT, True)
    local_ms = measure_transactions(STANDARD_3MBIT, False)
    fast_ms = measure_transactions(STANDARD_10MBIT, True)

    report_table(
        "E1  Send-Receive-Reply, 32-byte messages (Sec. 3.1)",
        [
            ("remote, 3 Mbit", PAPER_REMOTE_MS, remote_ms),
            ("local", PAPER_LOCAL_MS, local_ms),
            ("remote, 10 Mbit", "(n/a)", fast_ms),
        ],
        headers=("configuration", "paper ms", "measured ms"),
    )

    assert remote_ms == pytest.approx(PAPER_REMOTE_MS, rel=0.01)
    assert local_ms == pytest.approx(PAPER_LOCAL_MS, rel=0.01)
    # Shape: the faster wire barely helps; software costs dominate.
    assert fast_ms > remote_ms * 0.85


def test_e1_message_size_sweep(benchmark):
    """Transaction cost vs appended-segment size: linear in wire bytes."""

    def sweep():
        results = []
        for segment in (0, 64, 256, 1024):
            domain = Domain()
            ws1 = domain.create_host("ws1")
            ws2 = domain.create_host("ws2")
            ws2.spawn(echo_server(), "server")

            def client(size=segment):
                yield Delay(0.01)
                pid = yield GetPid(1, Scope.ANY)
                t0 = yield Now()
                for __ in range(10):
                    yield Send(pid, Message.request(
                        0x0101, segment=b"x" * size))
                t1 = yield Now()
                return (t1 - t0) / 10

            results.append((segment, run_on(domain, ws1, client()) * 1e3))
        return results

    results = benchmark(sweep)
    report_table(
        "E1b  Transaction time vs appended segment size",
        [(f"{size} B segment", ms) for size, ms in results],
        headers=("request", "measured ms"),
    )
    times = [ms for __, ms in results]
    assert times == sorted(times)  # monotone in bytes
    wire_per_byte_ms = 8 / STANDARD_3MBIT.bandwidth_bps * 1e3
    expected_slope = (times[-1] - times[0]) / 1024
    assert expected_slope == pytest.approx(wire_per_byte_ms, rel=0.05)


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench).

    The mean is over identical steady-state transactions, so fewer rounds
    in quick mode yield the *same* simulated value -- quick and full
    snapshots stay comparable.
    """
    from repro.obs.bench import pick_rounds

    rounds = pick_rounds(quick, ROUNDS, 10)
    return {
        "remote_3mbit_ms": measure_transactions(STANDARD_3MBIT, True, rounds),
        "local_ms": measure_transactions(STANDARD_3MBIT, False, rounds),
        "remote_10mbit_ms": measure_transactions(STANDARD_10MBIT, True,
                                                 rounds),
    }
