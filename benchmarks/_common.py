"""Shared builders for the benchmark suite."""

from __future__ import annotations

import os
from typing import Any, Generator, Optional

from repro.core.context import ContextPair, WellKnownContext
from repro.kernel.domain import Domain
from repro.kernel.host import Host
from repro.obs import Observability
from repro.runtime.workstation import (
    Workstation,
    setup_workstation,
    standard_prefixes,
)
from repro.servers.base import ServerHandle, start_server
from repro.servers.fileserver.disk import DiskModel
from repro.servers.fileserver.server import VFileServer

MISSING = object()

#: Environment variable that switches the benches into tracing mode: when it
#: names a directory, system builders attach an Observability bundle and
#: ``export_observability`` writes span/metric JSONL there, ready for
#: ``python -m repro.obs.report``.
TRACE_DIR_VAR = "REPRO_TRACE_DIR"


def maybe_observability() -> Optional[Observability]:
    """An Observability bundle when tracing is requested, else None."""
    return Observability() if os.environ.get(TRACE_DIR_VAR) else None


def export_observability(obs: Optional[Observability],
                         prefix: str) -> Optional[tuple[str, str]]:
    """Export a bench run's spans and metrics; returns the paths written."""
    out_dir = os.environ.get(TRACE_DIR_VAR)
    if obs is None or not out_dir:
        return None
    spans_path = os.path.join(out_dir, f"{prefix}.spans.jsonl")
    metrics_path = os.path.join(out_dir, f"{prefix}.metrics.jsonl")
    obs.export_spans(spans_path)
    obs.export_metrics(metrics_path)
    return spans_path, metrics_path


def run_on(domain: Domain, host: Host, gen: Generator,
           name: str = "client") -> Any:
    """Run a client generator to completion; returns its value."""
    box: dict[str, Any] = {"result": MISSING}

    def wrapper():
        box["result"] = yield from gen

    host.spawn(wrapper(), name=name)
    domain.run()
    domain.check_healthy()
    if box["result"] is MISSING:
        raise AssertionError(f"benchmark client {name!r} stalled")
    return box["result"]


def standard_system(user: str = "mann", seed: int = 0,
                    disk: DiskModel | None = None):
    """Workstation + remote file server with the standard prefixes."""
    domain = Domain(seed=seed, obs=maybe_observability())
    workstation = setup_workstation(domain, user)
    fs_host = domain.create_host("vax1")
    handle = start_server(fs_host, VFileServer(user=user, disk=disk))
    standard_prefixes(workstation, handle)
    return domain, workstation, handle


def open_timing_system():
    """Sec. 6 configuration: workstation, remote + local file servers."""
    domain = Domain(obs=maybe_observability())
    workstation = setup_workstation(domain, "mann")
    remote = start_server(domain.create_host("vax1"), VFileServer(user="mann"))
    local = start_server(workstation.host, VFileServer(user="mann"))
    standard_prefixes(workstation, remote)
    workstation.prefix_server.define_prefix(
        "local", ContextPair(local.pid, int(WellKnownContext.HOME)))
    return domain, workstation, remote, local
