"""E15: continuous telemetry -- watchdog cycles and the cost of watching.

PR 6's telemetry collector samples every host's counters into ring-buffer
time series on the simulated clock and evaluates SLO watchdog rules at each
tick, serving both through the ``[obs]`` name space.  This experiment
prices and pins that machinery:

- **watchdog cycle**: the seeded E14 chaos run with watchdogs armed fires
  the retransmission-rate alert during the loss phase and resolves it on
  the healed wire, and every alert record survives the trip back through
  ``[obs]/fleet/alerts`` -- deterministic counts, tracked by the
  trajectory;
- **series read latency**: pulling a ring buffer over the full forwarding
  chain (``[obs]/hosts/vax1/timeseries/retransmits``) is priced like any
  resolution plus block reads;
- **zero simulated perturbation**: with the collector ticking at 20 Hz,
  E4's remote via-prefix open still measures the paper's 7.69 ms --
  sampling charges no simulated time to the observed system;
- **instrumentation overhead (wall)**: the per-transaction latency hook is
  the telemetry feature the kernel pays for even between ticks.  Comparing
  wall time of an E1/E7-style open workload with telemetry off vs armed
  with an interval longer than the run (pure hook cost, no sampling)
  bounds the overhead at 2%.
"""

import time

import pytest

from conftest import report_table
from _common import run_on, standard_system

from repro.kernel.ipc import Now
from repro.obs import Observability
from repro.runtime import files

#: E4's remote via-prefix open (ms, simulated) -- must survive telemetry.
E4_REMOTE_VIA_PREFIX = 7.69

ROUNDS = 5

#: Longer than any simulated run here: with this interval the collector
#: never ticks mid-workload, so only the per-transaction hook runs.
HOOK_ONLY_INTERVAL = 3600.0


# ----------------------------------------------------------- watchdog cycle


def measure_watchdog_cycle() -> dict:
    """The E14 chaos run with watchdogs armed: fire/resolve/delivery counts."""
    from repro.faults.chaos import run_chaos

    report = run_chaos(seed=7, duration=5.0, drop=0.10, watchdogs=True)
    return {
        "fired": report.alerts["fired"],
        "resolved": report.alerts["resolved"],
        "delivered": report.alerts["delivered"],
        "retransmits": report.metrics["ipc.retransmits"],
        "success_rate": report.success_rate,
    }


def test_e15_watchdog_fire_resolve_cycle(benchmark):
    cycle = benchmark(measure_watchdog_cycle)
    report_table(
        "E15  SLO watchdogs over the E14 chaos run (seed 7, 10% loss)",
        [("alerts fired", cycle["fired"]),
         ("alerts resolved", cycle["resolved"]),
         ("alert records via [obs]/fleet/alerts", cycle["delivered"]),
         ("ipc.retransmits", cycle["retransmits"])],
        headers=("quantity", "count"),
    )
    # The loss phase must trip the retransmission-rate rule, the healed
    # wire must clear it, and the protocol read must return every record.
    assert cycle["fired"] >= 1
    assert cycle["resolved"] >= 1
    assert cycle["delivered"] == cycle["fired"] + cycle["resolved"]


# ------------------------------------------------------- series read latency


def _telemetry_system(interval: float = 0.05):
    from repro.servers.statserver import enable_obs_namespace

    domain, workstation, handle = standard_system()
    enable_obs_namespace(domain, root_host=workstation.host)
    telemetry = domain.enable_telemetry(interval=interval)
    return domain, workstation, telemetry


def _timed_read(session, name):
    t0 = yield Now()
    data = yield from session.read_file(name)
    t1 = yield Now()
    return (t1 - t0) * 1e3, len(data)


def measure_series_read_latency() -> dict:
    """Mean ms to pull a populated ring buffer / the alert log via [obs]."""
    domain, workstation, __ = _telemetry_system()

    def workload(session):
        from repro.kernel.ipc import Delay

        yield from files.write_file(session, "[home]f.txt", b"x" * 64)
        for __ in range(20):
            yield from files.read_file(session, "[home]f.txt")
            yield Delay(0.05)

    run_on(domain, workstation.host, workload(workstation.session()),
           name="workload")

    def reader(session):
        results = {}
        for label, name in (
                ("timeseries", "[obs]/hosts/vax1/timeseries/retransmits"),
                ("alerts", "[obs]/fleet/alerts")):
            total = 0.0
            size = 0
            for __ in range(ROUNDS):
                ms, nbytes = yield from _timed_read(session, name)
                total += ms
                size = nbytes
            results[label] = {"ms": total / ROUNDS, "bytes": size}
        return results

    return run_on(domain, workstation.host, reader(workstation.session()),
                  name="reader")


def test_e15_series_read_latency(benchmark):
    results = benchmark(measure_series_read_latency)
    report_table(
        "E15b  time-series reads through the forwarding chain",
        [(label, row["ms"], row["bytes"])
         for label, row in results.items()],
        headers=("target", "measured ms", "payload bytes"),
    )
    # A remote ring-buffer read crosses the wire per block on top of the
    # three-hop resolution; it can never undercut E4's via-prefix open.
    assert results["timeseries"]["ms"] > E4_REMOTE_VIA_PREFIX
    assert results["timeseries"]["bytes"] > 0
    assert results["alerts"]["bytes"] > 0


# ------------------------------------------------------- zero perturbation


def measure_open_with_telemetry() -> float:
    """E4's remote via-prefix open with the collector sampling at 20 Hz."""
    domain, workstation, __ = _telemetry_system(interval=0.05)

    def client(session):
        yield from files.write_file(session, "[home]naming.mss", b"x" * 64)
        total = 0.0
        for __ in range(ROUNDS):
            t0 = yield Now()
            stream = yield from session.open("[home]naming.mss", "r")
            t1 = yield Now()
            yield from stream.close()
            total += (t1 - t0) * 1e3
        return total / ROUNDS

    return run_on(domain, workstation.host, client(workstation.session()))


def test_e15_sampling_does_not_perturb_opens(benchmark):
    measured = benchmark(measure_open_with_telemetry)
    report_table(
        "E15c  E4 remote via-prefix open with telemetry sampling at 20 Hz",
        [("paper", E4_REMOTE_VIA_PREFIX), ("measured", measured)],
        headers=("source", "ms"),
    )
    assert measured == pytest.approx(E4_REMOTE_VIA_PREFIX, rel=0.02)


# -------------------------------------------------- instrumentation overhead


def _open_workload(telemetry: bool, reads: int = 200) -> float:
    """Wall seconds for an E1/E7-style read loop, telemetry off or armed."""
    start = time.perf_counter()
    domain, workstation, __ = standard_system()
    if telemetry:
        domain.enable_telemetry(interval=HOOK_ONLY_INTERVAL)

    def client(session):
        yield from files.write_file(session, "[home]f.txt", b"x" * 64)
        for __ in range(reads):
            yield from files.read_file(session, "[home]f.txt")

    run_on(domain, workstation.host, client(workstation.session()))
    return time.perf_counter() - start


def measure_hook_overhead(rounds: int = 5) -> dict:
    """Best-of-``rounds`` wall time, off vs hook-only, interleaved.

    Interleaving (off, on, off, on, ...) keeps cache/frequency drift from
    biasing one side; best-of filters scheduler noise.
    """
    best = {False: float("inf"), True: float("inf")}
    for __ in range(rounds):
        for armed in (False, True):
            best[armed] = min(best[armed], _open_workload(armed))
    return {
        "off_s": best[False],
        "on_s": best[True],
        "overhead": best[True] / best[False] - 1.0,
    }


def test_e15_hook_overhead_bounded():
    result = measure_hook_overhead()
    report_table(
        "E15d  per-transaction hook cost: telemetry off vs armed "
        "(interval > run, so no sampling ticks)",
        [("telemetry off", result["off_s"] * 1e3),
         ("hook only", result["on_s"] * 1e3),
         ("overhead", result["overhead"] * 100)],
        headers=("configuration", "wall ms / %"),
    )
    assert result["overhead"] <= 0.02, (
        f"telemetry hook costs {result['overhead']:.1%} wall time "
        f"(budget 2%)")


def measure_instrumentation_matrix() -> dict:
    """Wall seconds of one workload under each instrumentation mode."""
    from repro.kernel.domain import Domain
    from repro.runtime.workstation import setup_workstation, standard_prefixes
    from repro.servers.base import start_server
    from repro.servers.fileserver.server import VFileServer

    def run_mode(mode: str) -> float:
        start = time.perf_counter()
        obs = Observability() if mode == "traced" else None
        domain = Domain(obs=obs)
        workstation = setup_workstation(domain, "mann")
        handle = start_server(domain.create_host("vax1"),
                              VFileServer(user="mann"))
        standard_prefixes(workstation, handle)
        if mode == "profiler":
            domain.enable_profiler()
        elif mode == "telemetry":
            domain.enable_telemetry(interval=0.05)

        def client(session):
            yield from files.write_file(session, "[home]f.txt", b"x" * 64)
            for __ in range(100):
                yield from files.read_file(session, "[home]f.txt")

        run_on(domain, workstation.host, client(workstation.session()))
        return time.perf_counter() - start

    return {mode: run_mode(mode)
            for mode in ("baseline", "profiler", "telemetry", "traced")}


def test_e15_instrumentation_matrix():
    matrix = measure_instrumentation_matrix()
    report_table(
        "E15e  instrumentation overhead matrix (one seeded workload)",
        [(mode, seconds * 1e3) for mode, seconds in matrix.items()],
        headers=("mode", "wall ms"),
    )
    for seconds in matrix.values():
        assert seconds > 0


# --------------------------------------------------------------- trajectory


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench)."""
    from repro.obs.bench import trajectory_point

    cycle = measure_watchdog_cycle()
    reads = measure_series_read_latency()
    return trajectory_point(
        quick,
        {
            "watchdog_fired": cycle["fired"],
            "watchdog_resolved": cycle["resolved"],
            "alerts_delivered": cycle["delivered"],
            "timeseries_read_ms": reads["timeseries"]["ms"],
            "alerts_read_ms": reads["alerts"]["ms"],
        },
        lambda: {"open_with_telemetry_ms": measure_open_with_telemetry()})
