"""E2 (paper Sec. 3.1): program loading with MoveTo.

Paper: "Using MoveTo for program loading from a network file server into a
diskless SUN workstation (assuming the program text is already in the file
server's memory buffers), a 64 kilobyte program can be loaded in 338
milliseconds on the 3 megabit Ethernet.  This performance is within 13
percent of the maximum speed at which a SUN workstation can write packets
out to the network when there is no protocol overhead."

Reproduced: end-to-end LOAD_PROGRAM through the naming protocol and the
file server, across a size sweep, plus the raw packet-write bound ratio.
"""

import pytest

from conftest import report_table
from _common import run_on, standard_system

from repro.kernel.ipc import Now
from repro.runtime import files
from repro.runtime.program import load_program

PAPER_64KB_MS = 338.0
PAPER_OVERHEAD_RATIO = 1.13


def measure_load(size_bytes: int) -> float:
    domain, workstation, fs = standard_system()
    image = b"\x90" * size_bytes

    def client(session):
        yield from files.write_file(session, "[bin]prog", image)
        t0 = yield Now()
        loaded = yield from load_program(session, "[bin]prog")
        t1 = yield Now()
        assert len(loaded) == size_bytes
        return t1 - t0

    return run_on(domain, workstation.host,
                  client(workstation.session())) * 1e3


def test_e2_program_load(benchmark):
    measured_64k = benchmark(measure_load, 64 * 1024)

    from repro.net.latency import STANDARD_3MBIT

    rows = []
    for kib in (8, 16, 32, 64, 128):
        measured = measure_load(kib * 1024)
        bulk = STANDARD_3MBIT.bulk_move_remote(kib * 1024) * 1e3
        raw = STANDARD_3MBIT.bulk_move_raw(kib * 1024) * 1e3
        paper = PAPER_64KB_MS if kib == 64 else "(n/a)"
        rows.append((f"{kib} KB", paper, measured, measured / raw))
    report_table(
        "E2  Program load via MoveTo (Sec. 3.1)",
        rows,
        headers=("image size", "paper ms", "measured ms", "vs raw bound"),
    )

    # The bulk move itself is the paper's 338 ms; end-to-end adds ~15 ms of
    # naming (a size query and the load request, each via the prefix
    # server), so allow that overhead on top.
    assert STANDARD_3MBIT.bulk_move_remote(64 * 1024) * 1e3 == pytest.approx(
        PAPER_64KB_MS, rel=0.005)
    assert measured_64k == pytest.approx(PAPER_64KB_MS, rel=0.06)
    assert measured_64k > PAPER_64KB_MS  # overhead, never a discount
    # Shape: the bulk portion sits 13% above the raw packet-write bound.
    bulk = STANDARD_3MBIT.bulk_move_remote(64 * 1024)
    raw = STANDARD_3MBIT.bulk_move_raw(64 * 1024)
    assert bulk / raw == pytest.approx(PAPER_OVERHEAD_RATIO, rel=0.001)


def test_e2_load_scales_linearly(benchmark):
    def sweep():
        return [measure_load(kib * 1024) for kib in (16, 32, 64)]

    t16, t32, t64 = benchmark(sweep)
    # Doubling the image roughly doubles the time (fixed naming overhead
    # shrinks relative to the move).
    assert t32 / t16 == pytest.approx(2.0, rel=0.15)
    assert t64 / t32 == pytest.approx(2.0, rel=0.10)


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench)."""
    from repro.obs.bench import trajectory_point

    return trajectory_point(
        quick,
        {"load_64k_ms": measure_load(64 * 1024)},
        lambda: {"load_16k_ms": measure_load(16 * 1024)})
