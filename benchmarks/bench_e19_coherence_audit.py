"""E19: coherence observability -- propagation lag, staleness, audit cost.

PR 10 stamps every authoritative binding mutation with ``(epoch, source)``
provenance, traces SYNC/INVALIDATE fan-out through a passive
:class:`~repro.obs.audit.CoherenceProbe`, and adds a fleet auditor that
walks ``[obs]/hosts/<host>/coherence`` and classifies every cached entry
against the shard owner.  This experiment pins four properties:

- **invalidation propagation**: a pinned mutation storm (rebinds and
  deletes through the live protocol, forwarded to shard owners) yields a
  deterministic notice count and p50/p99 owner-to-replica lag;
- **staleness at hit**: the E18-shaped Zipf read mix, probe armed, yields
  a deterministic distribution of binding age at cache-hit time -- every
  sample TTL-bounded by construction;
- **audit sweep cost**: one full fleet walk over the wire (every host's
  coherence document read through the Sec. 5.4 forwarding chain) has a
  deterministic simulated price;
- **audit under failover**: the pinned E18 replica-crash storm, audited
  through ``[obs]`` at quiescence, classifies **zero** entries incoherent
  -- and arming the probe costs zero simulated time (the bare and armed
  mutation storms end at the identical simulated instant).
"""

import time

from conftest import report_table

#: The pinned mutation storm: rebinds + deletes through the protocol.
MUT = dict(seed=19, n_replicas=3, n_prefixes=24, rounds=40, lease_ttl=1.0)

#: The pinned replica-crash storm (identical to E18's, audited here).
STORM = dict(seed=11, duration=6.0, n_replicas=3, n_prefixes=48,
             n_clients=2, lease_ttl=0.8)

#: Zipf staleness section: the E18 geometry, shrunk to a primary-viable
#: size but pinned identically in quick and full mode (the staleness
#: distribution is round-count sensitive).
ZIPF_PREFIXES = 512
ZIPF_FILES = 8
ZIPF_READS = 600
ZIPF_SKEW = 1.1
ZIPF_LEASE_TTL = 2.0

_PAYLOAD = b"e19-coherence-payload"


def _sharded_system(seed: int, n_replicas: int, n_prefixes: int,
                    lease_ttl: float, armed: bool = True):
    """Domain + cluster + file server; probe armed unless ``armed=False``."""
    from repro.core.context import ContextPair, WellKnownContext
    from repro.core.shard import ShardCluster
    from repro.kernel.domain import Domain
    from repro.obs.audit import enable_coherence
    from repro.servers.base import start_server
    from repro.servers.fileserver.server import VFileServer

    domain = Domain(seed=seed)
    if armed:
        enable_coherence(domain)
    fs_host = domain.create_host("vax1")
    fileserver = VFileServer(user="mann")
    for index in range(ZIPF_FILES):
        node = fileserver.store.make_path(f"data/f{index}.dat",
                                          directory=False)
        node.data[:] = _PAYLOAD
    fs_handle = start_server(fs_host, fileserver)
    pair = ContextPair(fs_handle.pid, int(WellKnownContext.DEFAULT))
    cluster = ShardCluster(domain, domain.create_hosts(n_replicas,
                                                       prefix="ns"),
                           lease_ttl=lease_ttl)
    for index in range(n_prefixes):
        cluster.seed_binding(f"p{index}", pair)
    return domain, cluster, pair, fs_host, fs_handle


# ------------------------------------------------- invalidation propagation


def run_mutation_storm(armed: bool = True) -> dict:
    """The pinned rebind/delete storm; returns probe digest + end time.

    Every 5th round deletes and re-adds its prefix (INVALIDATE + SYNC
    fan-out); the rest rebind in place (SYNC fan-out).  Mutations go to
    the primary replica and forward to the shard owner over the wire, so
    the measured lag includes the real forwarding path.
    """
    from repro.kernel.ipc import Delay
    from repro.runtime.session import Session

    domain, cluster, pair, __, __ = _sharded_system(
        MUT["seed"], MUT["n_replicas"], MUT["n_prefixes"],
        MUT["lease_ttl"], armed=armed)
    session = Session(current=pair, prefix_server=cluster.primary_pid(),
                      latency=domain.latency)

    def mutator(session):
        for round_no in range(MUT["rounds"]):
            index = round_no % MUT["n_prefixes"]
            if round_no % 5 == 4:
                yield from session.delete_prefix(f"p{index}")
                yield from session.add_prefix(f"p{index}", pair)
            else:
                yield from session.add_prefix(f"p{index}", pair,
                                              replace=True)
            yield Delay(0.02)

    host = domain.create_host("mutator")
    host.spawn(mutator(session), name="e19-mutator")
    domain.run()
    domain.check_healthy()
    probe = domain.coherence
    return {
        "end_t": domain.now,
        "summary": probe.summary() if probe is not None else None,
    }


def measure_propagation() -> dict:
    run = run_mutation_storm(armed=True)
    digest = run["summary"]
    lag = digest["invalidation_lag_ms"]
    return {
        "rounds": MUT["rounds"],
        "notices_sent": digest["notices_sent"],
        "notices_applied": digest["notices_applied"],
        "notices_in_flight": digest["notices_in_flight"],
        "propagation_p50_ms": lag["p50"],
        "propagation_p99_ms": lag["p99"],
        "propagation_max_ms": lag["max"],
        "end_t": run["end_t"],
    }


def test_e19_invalidation_propagation(benchmark):
    prop = benchmark(measure_propagation)
    report_table(
        "E19  invalidation propagation (pinned mutation storm, 3 replicas)",
        [("notices sent", prop["notices_sent"]),
         ("notices applied", prop["notices_applied"]),
         ("owner->replica lag p50 (ms)", prop["propagation_p50_ms"]),
         ("owner->replica lag p99 (ms)", prop["propagation_p99_ms"])],
        headers=("quantity", "value"),
    )
    # Every fan-out notice lands (no peer is down in this scenario)...
    assert prop["notices_applied"] == prop["notices_sent"]
    assert prop["notices_in_flight"] == 0
    # ...and the lag is a real wire time: positive, bounded.
    assert 0.0 < prop["propagation_p50_ms"] <= prop["propagation_p99_ms"]
    assert prop["propagation_p99_ms"] < 250.0  # the SLO rule's limit


def test_e19_probe_observer_effect():
    """Arming the probe must not move the simulated timeline at all."""
    armed = run_mutation_storm(armed=True)
    bare = run_mutation_storm(armed=False)
    assert bare["summary"] is None
    assert armed["end_t"] == bare["end_t"]


# --------------------------------------------------------- staleness at hit


def measure_zipf_staleness() -> dict:
    """E18-shaped Zipf reads, probe armed: binding age at cache-hit time."""
    from repro.core.resolver import NameError_
    from repro.kernel.ipc import Delay, Now
    from repro.runtime import files
    from repro.runtime.session import Session

    domain, cluster, pair, __, __ = _sharded_system(
        5, 4, ZIPF_PREFIXES, ZIPF_LEASE_TTL)
    client_host = domain.create_host("client")
    resolver = cluster.resolver(negative_ttl=2.0, host=client_host)
    session = Session(current=pair, prefix_server=cluster.primary_pid(),
                      latency=domain.latency, cache=resolver)
    tally = {"ok": 0, "miss": 0}
    population = ZIPF_PREFIXES * ZIPF_FILES

    def reader(session):
        for number in range(ZIPF_READS):
            rank = domain.rng.zipf_index("e19.zipf", population, ZIPF_SKEW)
            prefix = rank % ZIPF_PREFIXES
            name = (f"[p{prefix}]data/"
                    f"f{(rank // ZIPF_PREFIXES) % ZIPF_FILES}.dat")
            try:
                yield from files.read_file(session, name)
            except NameError_:
                tally["miss"] += 1
            else:
                tally["ok"] += 1
            yield Delay(0.005)

    client_host.spawn(reader(session), name="e19-zipf-reader")
    domain.run()
    domain.check_healthy()
    digest = domain.coherence.summary()
    staleness = digest["staleness_at_hit_ms"]
    return {
        "reads": ZIPF_READS,
        "reads_ok": tally["ok"],
        "hits_sampled": staleness["samples"],
        "staleness_p50_ms": staleness["p50"],
        "staleness_p99_ms": staleness["p99"],
        "staleness_max_ms": staleness["max"],
    }


def test_e19_zipf_staleness(benchmark):
    zipf = benchmark(measure_zipf_staleness)
    report_table(
        "E19  staleness at hit (Zipf reads through the shard resolver)",
        [("reads", zipf["reads"]),
         ("cache hits sampled", zipf["hits_sampled"]),
         ("staleness p50 (ms)", zipf["staleness_p50_ms"]),
         ("staleness p99 (ms)", zipf["staleness_p99_ms"]),
         ("staleness max (ms)", zipf["staleness_max_ms"]),
         ("TTL bound (ms)", ZIPF_LEASE_TTL * 1000)],
        headers=("quantity", "value"),
    )
    assert zipf["hits_sampled"] > 0
    # The served-staleness contract: no hit older than the binding TTL.
    assert zipf["staleness_max_ms"] <= ZIPF_LEASE_TTL * 1000


# ----------------------------------------------------------- audit sweep


def measure_audit_walk() -> dict:
    """Simulated cost of one full fleet coherence walk through [obs]."""
    from repro.obs.audit import audit_via_obs
    from repro.runtime.workstation import setup_workstation, standard_prefixes
    from repro.servers.statserver import enable_obs_namespace

    domain, cluster, pair, fs_host, fs_handle = _sharded_system(
        7, MUT["n_replicas"], MUT["n_prefixes"], MUT["lease_ttl"])
    watcher = setup_workstation(domain, "watch")
    standard_prefixes(watcher, fs_handle)
    enable_obs_namespace(domain, fs_host)
    resolver = cluster.resolver(host=watcher.host)
    del resolver  # registered; audited as part of the walk
    start = domain.now
    report = audit_via_obs(watcher)
    walk_ms = (domain.now - start) * 1000.0
    entries = sum(tier.get("entries", 0)
                  for tier in report["tiers"].values())
    return {
        "hosts_walked": len(report["hosts"]),
        "entries_classified": entries,
        "incoherent": len(report["findings"]["incoherent"]),
        "unreachable": len(report["unreachable"]),
        "audit_walk_ms": round(walk_ms, 4),
        "ok": report["ok"],
    }


def test_e19_audit_walk(benchmark):
    walk = benchmark(measure_audit_walk)
    report_table(
        "E19  fleet coherence walk through [obs] (5 hosts + watcher)",
        [("hosts walked", walk["hosts_walked"]),
         ("entries classified", walk["entries_classified"]),
         ("incoherent", walk["incoherent"]),
         ("simulated walk cost (ms)", walk["audit_walk_ms"])],
        headers=("quantity", "value"),
    )
    assert walk["ok"] and walk["incoherent"] == 0
    assert walk["unreachable"] == 0
    assert walk["entries_classified"] > 0
    # The walk is real traffic: it costs simulated time, bounded.
    assert 0.0 < walk["audit_walk_ms"] < 1000.0


# ----------------------------------------------------- audit under failover


def measure_storm_audit() -> dict:
    """The pinned replica-crash storm, audited through [obs] at quiescence."""
    from repro.faults.chaos import run_replica_storm

    report = run_replica_storm(**STORM, watchdogs=True)
    audit = report.audit
    tiers = audit["tiers"]
    drift = audit["findings"]["map_drift"]
    return {
        "reads_ok": report.reads_ok,
        "reads_failed": report.reads_failed,
        "audit_incoherent": len(audit["findings"]["incoherent"]),
        "audit_stale": len(audit["findings"]["stale"]),
        "audit_replica_entries": tiers["replica"]["entries"],
        "audit_resolver_entries": tiers["resolver"]["entries"],
        "audit_map_drift": len(drift),
        "audit_replica_drift": sum(1 for finding in drift
                                   if finding["tier"] == "replica"),
        "alerts_fired": report.alerts.get("fired", 0),
        "audit_ok": audit["ok"],
    }


def test_e19_storm_audit(benchmark):
    storm = benchmark(measure_storm_audit)
    report_table(
        "E19  replica-crash storm audited at quiescence (via [obs])",
        [("reads ok", storm["reads_ok"]),
         ("replica entries audited", storm["audit_replica_entries"]),
         ("resolver entries audited", storm["audit_resolver_entries"]),
         ("incoherent (servable wrongness)", storm["audit_incoherent"]),
         ("map drift at quiescence", storm["audit_map_drift"])],
        headers=("quantity", "value"),
    )
    # The forbidden state never survives quiescence...
    assert storm["audit_ok"] and storm["audit_incoherent"] == 0
    # ...every *replica* converged on one map (resolvers catch up lazily,
    # on their next routed lookup, so idle clients may trail by design)...
    assert storm["audit_replica_drift"] == 0
    assert storm["audit_map_drift"] <= STORM["n_clients"]
    # ...and the storm itself still behaves exactly as E18 pinned it.
    assert storm["reads_failed"] == 0


# ----------------------------------------------------------------- wall rate


def wall_metrics(quick: bool = False) -> dict:
    """Wall-clock throughput of the audited storm (loose-gated)."""
    start = time.perf_counter()
    storm = measure_storm_audit()
    elapsed = time.perf_counter() - start
    return {
        "wall_audited_storm_reads_per_sec":
            round(storm["reads_ok"] / elapsed, 1) if elapsed > 0 else 0.0,
    }


# ---------------------------------------------------------------- trajectory


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench).

    Propagation and storm-audit counts are functions of pinned seeds --
    byte-identical across runs and machines.  The Zipf staleness section
    and the paired observer-effect run ride as secondary (full-mode)
    metrics.
    """
    from repro.obs.bench import trajectory_point

    prop = measure_propagation()
    walk = measure_audit_walk()
    storm = measure_storm_audit()

    def secondary() -> dict:
        zipf = measure_zipf_staleness()
        bare = run_mutation_storm(armed=False)
        return {
            "staleness_p50_ms": zipf["staleness_p50_ms"],
            "staleness_p99_ms": zipf["staleness_p99_ms"],
            "staleness_samples": zipf["hits_sampled"],
            # 0.0 by the zero-observer-effect rule: the armed and bare
            # mutation storms end at the identical simulated instant.
            "probe_observer_effect_s": round(
                abs(prop["end_t"] - bare["end_t"]), 9),
        }

    return trajectory_point(
        quick,
        {
            "propagation_p50_ms": prop["propagation_p50_ms"],
            "propagation_p99_ms": prop["propagation_p99_ms"],
            "notices_sent": prop["notices_sent"],
            "notices_applied": prop["notices_applied"],
            "audit_walk_ms": walk["audit_walk_ms"],
            "audit_entries_classified": walk["entries_classified"],
            "storm_audit_incoherent": storm["audit_incoherent"],
            "storm_audit_replica_entries": storm["audit_replica_entries"],
        },
        secondary)
