"""E8b (paper Sec. 2.2, Consistency): delete-under-crash.

Paper: "deleting a named object requires notifying the name server that its
name for the object is invalid.  If one of the servers crashes during the
operation, the system will be left inconsistent unless deletion is performed
as a multi-server atomic transaction."

Reproduced: an identical create/delete workload with client crashes injected
inside the operation, run against both architectures.  The centralized model
strands dangling names and orphan objects at a rate proportional to the
crash rate; the distributed model, where "if objects and their names are
kept together" deletion is one server-internal operation, audits clean at
every crash rate.
"""

import pytest

from conftest import report_table
from _common import run_on

from repro.baseline import (
    BaselineClient,
    CentralNameServer,
    UidObjectServer,
    audit,
)
from repro.baseline.client import ClientCrashed, CrashPoint
from repro.core.context import ContextPair, WellKnownContext
from repro.core.resolver import NameError_
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from repro.sim.rng import DeterministicRng
from repro.runtime import files

OPERATIONS = 60


def centralized_inconsistencies(crash_rate: float, seed: int = 5) -> tuple:
    domain = Domain(seed=seed)
    ws = domain.create_host("ws")
    ns = CentralNameServer()
    ns_handle = start_server(domain.create_host("ns"), ns)
    server = UidObjectServer(allocator_id=1)
    handle = start_server(domain.create_host("obj"), server)
    rng = DeterministicRng(seed)

    def client():
        yield Delay(0.05)
        completed = 0
        for index in range(OPERATIONS):
            lib = BaselineClient(ns_handle.pid, domain.latency)
            name = f"f{index}"
            crash_create = rng.uniform("cc", 0, 1) < crash_rate
            crash_delete = rng.uniform("cd", 0, 1) < crash_rate
            try:
                yield from lib.create(
                    name, handle.pid,
                    crash_at=(CrashPoint.AFTER_OBJECT_CREATE
                              if crash_create else CrashPoint.NONE))
            except ClientCrashed:
                continue
            try:
                yield from lib.delete(
                    name,
                    crash_at=(CrashPoint.AFTER_OBJECT_DELETE
                              if crash_delete else CrashPoint.NONE))
                completed += 1
            except ClientCrashed:
                continue
        return completed

    completed = run_on(domain, ws, client())
    report = audit(ns, [server])
    return report.inconsistency_count, completed


def distributed_inconsistencies(crash_rate: float, seed: int = 5) -> tuple:
    domain = Domain(seed=seed)
    workstation = setup_workstation(domain, "mann")
    fs = start_server(domain.create_host("vax1"), VFileServer(user="mann"))
    standard_prefixes(workstation, fs)
    rng = DeterministicRng(seed)
    session = workstation.session()

    def client():
        yield Delay(0.05)
        completed = 0
        for index in range(OPERATIONS):
            name = f"f{index}"
            # A client crash between operations abandons the sequence at the
            # same points as the centralized run -- but each operation is a
            # single-server action, so there is no intermediate state.
            if rng.uniform("cc", 0, 1) < crash_rate:
                continue  # "crashed" before creating
            yield from files.write_file(session, name, b"x")
            if rng.uniform("cd", 0, 1) < crash_rate:
                continue  # "crashed" before deleting: file + name both live
            yield from session.remove(name)
            completed += 1
        return completed

    completed = run_on(domain, workstation.host, client())
    # The distributed audit: every directory entry must reach its object
    # (trivially true: they are the same server state) and no object exists
    # without a directory entry holding it.
    store = fs.server.store
    dangling = 0
    home = fs.server.home
    for name, entry in home.entries.items():
        if entry is None:  # cannot happen; the invariant the audit checks
            dangling += 1
    return dangling, completed


def test_e8b_consistency_under_crashes(benchmark):
    rates = (0.0, 0.1, 0.3)
    central = {}
    distributed = {}
    central[rates[-1]] = benchmark(centralized_inconsistencies, rates[-1])
    for rate in rates[:-1]:
        central[rate] = centralized_inconsistencies(rate)
    for rate in rates:
        distributed[rate] = distributed_inconsistencies(rate)

    rows = []
    for rate in rates:
        rows.append((f"{rate:.0%}", central[rate][0], distributed[rate][0]))
    report_table(
        "E8b  Inconsistencies after crash-injected create/delete "
        f"({OPERATIONS} op pairs, Sec. 2.2)",
        rows,
        headers=("crash rate", "centralized: dangling+orphans",
                 "distributed: dangling+orphans"),
    )

    assert central[0.0][0] == 0          # no crashes, no inconsistency
    assert central[0.1][0] > 0           # crashes strand registry state
    assert central[0.3][0] > central[0.1][0]
    for rate in rates:
        assert distributed[rate][0] == 0  # names live with objects


def test_e8b_stale_binding_breaks_later_clients(benchmark):
    """A dangling name is not just cosmetic: it poisons future opens."""

    def run():
        domain = Domain(seed=7)
        ws = domain.create_host("ws")
        ns = CentralNameServer()
        ns_handle = start_server(domain.create_host("ns"), ns)
        server = UidObjectServer(allocator_id=1)
        handle = start_server(domain.create_host("obj"), server)

        def client():
            yield Delay(0.05)
            lib = BaselineClient(ns_handle.pid, domain.latency)
            yield from lib.create("shared", handle.pid)
            try:
                yield from lib.delete(
                    "shared", crash_at=CrashPoint.AFTER_OBJECT_DELETE)
            except ClientCrashed:
                pass
            other = BaselineClient(ns_handle.pid, domain.latency)
            from repro.baseline.client import BaselineError

            try:
                yield from other.open("shared")
            except BaselineError as err:
                return err.code.name

        return run_on(domain, ws, client())

    outcome = benchmark(run)
    report_table(
        "E8b-b  What a later client sees through a dangling name",
        [("open('shared')", outcome)],
        headers=("operation", "result"),
    )
    assert outcome == "INCONSISTENT"


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench)."""
    central_bad, central_done = centralized_inconsistencies(0.3)
    dist_bad, dist_done = distributed_inconsistencies(0.3)
    return {
        "central_inconsistencies_30pct": central_bad,
        "central_completed_30pct": central_done,
        "distributed_inconsistencies_30pct": dist_bad,
        "distributed_completed_30pct": dist_done,
    }
