"""E17: flight recorder -- forensic capture inside the observer budget.

PR 8's flight recorder feeds per-host ring buffers of compact flight
records from the kernel's Send/Reply/Forward/packet paths, sealing digest
windows into per-lane hash chains so two runs can be compared without
shipping either record stream.  This experiment prices and pins the
forensic layer:

- **black-box capture**: the seeded E14 chaos run flown with the recorder
  yields deterministic per-host record counts, digest windows, and exactly
  one postmortem (vax1's mid-run crash) -- pure functions of the seed,
  tracked by the trajectory;
- **zero perturbation**: the recorder-attached chaos run reports metrics
  *bit-identical* to the bare run's -- recording happens strictly off the
  simulated clock (the engine's recording dispatch only stamps
  ``_fire_seq``; nothing is scheduled, delayed, or reordered);
- **replay determinism**: re-running the scenario reproduces the digest
  chains exactly (the CI replay smoke), and bisecting a seed pair locates
  the first divergent event seq -- also deterministic, also tracked;
- **observer-effect (wall)**: the E15 budget discipline, applied the way
  E15 itself applied it -- the *always-on* layer is gated, the opt-in
  layer is priced.  The rolling digest chain (window sealing + hash) must
  stay inside the <= 2% budget; raw capture is a turn-on-when-debugging
  forensic tool whose per-record cost is pinned in absolute terms
  (CPython's interpreter floor for a six-field record site is ~0.5 us,
  which on a ~7 us/event simulator reads as a 4-6% wall cost while
  attached -- reported, not hidden behind a friendlier workload).
"""

import time

from conftest import report_table
from _common import run_on, standard_system

from repro.runtime import files

ROUNDS = 5

#: The pinned chaos scenario (E14's seed-7 run) every section reuses.
SCENARIO = dict(seed=7, duration=5.0, drop=0.10)

#: The seed pair the bisect determinism check forks on.
BISECT_SEEDS = (7, 8)


# ------------------------------------------------------------ black boxes


def measure_flight_chaos() -> dict:
    """The pinned chaos run flown with the recorder: capture accounting."""
    from repro.faults.chaos import run_chaos

    report = run_chaos(flight=True, **SCENARIO)
    hosts = report.flight["hosts"]
    return {
        "records_ws": hosts["ws-mann"]["records_seen"],
        "records_vax1": hosts["vax1"]["records_seen"],
        "windows": sum(entry["windows"] for entry in hosts.values()),
        "postmortems": sum(report.flight["postmortems"].values()),
        "success_rate": report.success_rate,
        "report": report,
    }


def test_e17_black_box_capture(benchmark):
    capture = benchmark(measure_flight_chaos)
    report_table(
        "E17  flight recorder over the E14 chaos run (seed 7, 10% loss)",
        [("ws-mann records", capture["records_ws"]),
         ("vax1 records", capture["records_vax1"]),
         ("digest windows sealed", capture["windows"]),
         ("postmortem dumps", capture["postmortems"])],
        headers=("quantity", "count"),
    )
    assert capture["records_ws"] > 0 and capture["records_vax1"] > 0
    assert capture["windows"] >= 1
    # The mid-run crash froze exactly one black box.
    assert capture["postmortems"] == 1


# -------------------------------------------------------- zero perturbation


def test_e17_recorder_leaves_the_run_bit_identical():
    from repro.faults.chaos import run_chaos

    bare = run_chaos(**SCENARIO)
    flown = run_chaos(flight=True, **SCENARIO)
    bare_doc = bare.to_dict()
    flown_doc = flown.to_dict()
    flown_doc.pop("flight")
    assert bare_doc == flown_doc, (
        "recorder-attached chaos run diverged from the bare run")


# ------------------------------------------------------- replay determinism


def measure_replay_determinism() -> dict:
    """Chains across a re-run, and the fork seq of the pinned seed pair."""
    from repro.obs.flight import compare
    from repro.obs.replay import replay

    first = replay(**SCENARIO)
    second = replay(**SCENARIO)
    verdict = compare(first, second)
    seed_a, seed_b = BISECT_SEEDS
    fork_verdict = compare(replay(**{**SCENARIO, "seed": seed_a}),
                           replay(**{**SCENARIO, "seed": seed_b}))
    return {
        "replay_identical": verdict["identical"],
        "fork_found": fork_verdict["fork"] is not None,
        "fork_seq": (fork_verdict["fork"] or {}).get("seq"),
    }


def test_e17_replay_reproduces_and_bisect_localizes():
    result = measure_replay_determinism()
    report_table(
        "E17b  replay determinism (seed 7 rerun; bisect seeds 7 vs 8)",
        [("rerun digest chains identical", result["replay_identical"]),
         ("seed fork located", result["fork_found"]),
         ("fork event seq", result["fork_seq"])],
        headers=("check", "value"),
    )
    assert result["replay_identical"]
    assert result["fork_found"] and result["fork_seq"] is not None


# ------------------------------------------------------- observer effect


#: Budget for the always-on digest layer (E15's observer-effect budget).
CHAIN_BUDGET = 0.02

#: Absolute ceiling on the per-record capture cost.  The measured floor is
#: ~0.1 us (bound C append of a small tuple); anything near a microsecond
#: means a Python frame or dict build crept back into the record path.
CAPTURE_CEILING_NS = 1000.0


def measure_capture_cost(records: int = 256 * 800, rounds: int = 3) -> dict:
    """Per-record cost of the recorder's two layers, microbenchmarked.

    - **capture**: build one six-field record tuple and push it through
      the bound ``list.append`` the kernel record sites use -- the cost a
      host pays the instant an IPC effect fires;
    - **chain**: seal the accumulated tail into digest windows
      (slice, incremental hash, chain append) -- the cost the engine's
      periodic ``flush`` amortises over every ``window`` records.

    Large ``records`` and best-of-``rounds`` make this stable on noisy
    boxes where workload-level wall ratios swing by several percent.
    """
    from repro.obs.flight import KIND_SEND, FlightRecorder

    capture_s = seal_s = float("inf")
    for __ in range(rounds):
        recorder = FlightRecorder(capacity=records, window=256)
        append = recorder._lane("bench").tail.append
        start = time.perf_counter()
        for seq in range(records):
            append((seq, 0.001, KIND_SEND, 10, 20, seq))
        capture_s = min(capture_s, time.perf_counter() - start)
        start = time.perf_counter()
        recorder.flush()
        seal_s = min(seal_s, time.perf_counter() - start)
    return {
        "capture_ns": capture_s / records * 1e9,
        "seal_ns": seal_s / records * 1e9,
    }


def _open_workload(flight: bool, reads: int = 200) -> tuple:
    """(wall seconds, records captured) for an E1/E7-style read loop."""
    from repro.obs.flight import enable_flight_recorder

    start = time.perf_counter()
    domain, workstation, __ = standard_system()
    recorder = enable_flight_recorder(domain) if flight else None

    def client(session):
        yield from files.write_file(session, "[home]f.txt", b"x" * 64)
        for __ in range(reads):
            yield from files.read_file(session, "[home]f.txt")

    run_on(domain, workstation.host, client(workstation.session()))
    wall = time.perf_counter() - start
    records = 0
    if recorder is not None:
        recorder.finalize()
        records = sum(recorder.stats(name)["records_seen"]
                      for name in recorder.hosts())
    return wall, records


def measure_recorder_overhead(rounds: int = ROUNDS) -> dict:
    """Price both recorder layers against an open workload.

    The wall sides are interleaved best-of-``rounds`` (off, on, off, on,
    ...) so cache/frequency drift cannot bias one configuration -- E15's
    protocol.  The *gated* quantity is the digest chain's share of the
    bare run: per-record seal cost (microbenchmarked, stable) times the
    records this workload actually generates.  The *attached* column
    prices full capture -- every record site live -- which in pure
    CPython sits at the interpreter's ~0.5 us/record floor and is
    reported as-is rather than gated: the recorder is an opt-in forensic
    instrument (``--flight``), costless when detached (the engine only
    swaps its dispatch loop when a recorder attaches).
    """
    best = {False: float("inf"), True: float("inf")}
    records = 0
    for __ in range(rounds):
        for armed in (False, True):
            wall, captured = _open_workload(armed)
            best[armed] = min(best[armed], wall)
            records = max(records, captured)
    cost = measure_capture_cost()
    chain_s = cost["seal_ns"] * 1e-9 * records
    return {
        "off_s": best[False],
        "on_s": best[True],
        "records": records,
        "capture_ns": cost["capture_ns"],
        "seal_ns": cost["seal_ns"],
        "overhead": best[True] / best[False] - 1.0,
        "chain_overhead": chain_s / best[False],
    }


def test_e17_observer_effect_bounded():
    result = measure_recorder_overhead()
    report_table(
        "E17c  recorder observer effect (open workload, "
        f"{result['records']} records): always-on digest layer gated at "
        "the E15 budget, opt-in capture priced at the CPython floor",
        [("recorder off (wall ms)", result["off_s"] * 1e3),
         ("recorder attached (wall ms)", result["on_s"] * 1e3),
         ("attached overhead %  [reported]", result["overhead"] * 100),
         ("capture ns/record  [ceiling 1000]", result["capture_ns"]),
         ("digest seal ns/record", result["seal_ns"]),
         ("digest chain share %  [budget 2]",
          result["chain_overhead"] * 100)],
        headers=("quantity", "value"),
    )
    assert result["chain_overhead"] <= CHAIN_BUDGET, (
        f"digest chain costs {result['chain_overhead']:.2%} of the bare "
        f"run (budget {CHAIN_BUDGET:.0%})")
    assert result["capture_ns"] <= CAPTURE_CEILING_NS, (
        f"capture path costs {result['capture_ns']:.0f} ns/record "
        f"(ceiling {CAPTURE_CEILING_NS:.0f} ns -- a Python frame or dict "
        f"build crept into the record site)")


# --------------------------------------------------------------- trajectory


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench).

    All counts here are pure functions of the pinned scenario seeds --
    capture accounting and the bisect fork seq must stay byte-identical
    across runs and machines.
    """
    from repro.obs.bench import trajectory_point

    capture = measure_flight_chaos()
    return trajectory_point(
        quick,
        {
            "flight_records_ws": capture["records_ws"],
            "flight_records_vax1": capture["records_vax1"],
            "flight_windows": capture["windows"],
            "flight_postmortems": capture["postmortems"],
        },
        lambda: {
            "bisect_fork_seq": measure_replay_determinism()["fork_seq"],
        })
