"""E8c (paper Sec. 2.2, Reliability): availability under server failure.

Paper: "If an object's name is stored with the object, the name will always
be accessible if the object itself is accessible.  A name server, on the
other hand, represents a central failure point, and its failure can cause a
situation in which objects existing at locations where there have been no
failures are inaccessible because they cannot be named."

Reproduced: the same names spread over K object/file servers; kill one
server at a time (including, for the centralized system, the name server)
and measure the fraction of names still reachable.
"""

import pytest

from conftest import report_table
from _common import run_on

from repro.baseline import BaselineClient, CentralNameServer, UidObjectServer
from repro.baseline.client import BaselineError
from repro.core.context import ContextPair, WellKnownContext
from repro.core.resolver import NameError_
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay
from repro.runtime.session import Session
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from repro.vio.client import release_instance

SERVERS = 3
FILES_PER_SERVER = 6


def distributed_availability(kill_index) -> float:
    """Fraction of names reachable with file server ``kill_index`` down."""
    domain = Domain(seed=3)
    workstation = setup_workstation(domain, "mann")
    handles = [start_server(domain.create_host(f"vax{i}"),
                            VFileServer(user="mann"))
               for i in range(SERVERS)]
    standard_prefixes(workstation, handles[0])
    for index, handle in enumerate(handles):
        workstation.prefix_server.define_prefix(
            f"srv{index}", ContextPair(handle.pid,
                                       int(WellKnownContext.HOME)))
        for fileno in range(FILES_PER_SERVER):
            handle.server.store.make_path(
                f"users/mann/f{fileno}.dat", directory=False)
    if kill_index is not None:
        handles[kill_index].host.crash()
    names = [f"[srv{s}]f{f}.dat"
             for s in range(SERVERS) for f in range(FILES_PER_SERVER)]

    def client(session):
        reachable = 0
        for name in names:
            try:
                stream = yield from session.open(name, "r")
                yield from release_instance(stream.server, stream.instance)
                reachable += 1
            except NameError_:
                pass
        return reachable / len(names)

    return run_on(domain, workstation.host, client(workstation.session()))


def centralized_availability(kill: str) -> float:
    """kill: 'none', 'object0', or 'nameserver'."""
    domain = Domain(seed=3)
    ws = domain.create_host("ws")
    ns = CentralNameServer()
    ns_handle = start_server(domain.create_host("ns"), ns)
    servers, handles = [], []
    for index in range(SERVERS):
        server = UidObjectServer(allocator_id=index + 1)
        handle = start_server(domain.create_host(f"obj{index}"), server)
        servers.append(server)
        handles.append(handle)

    def client():
        yield Delay(0.05)
        lib = BaselineClient(ns_handle.pid, domain.latency)
        names = []
        for index, handle in enumerate(handles):
            for fileno in range(FILES_PER_SERVER):
                name = f"srv{index}/f{fileno}.dat"
                yield from lib.create(name, handle.pid, data=b"x")
                names.append(name)
        if kill == "object0":
            handles[0].host.crash()
        elif kill == "nameserver":
            ns_handle.host.crash()
        fresh = BaselineClient(ns_handle.pid, domain.latency)
        reachable = 0
        for name in names:
            try:
                stream = yield from fresh.open(name)
                yield from release_instance(stream.server, stream.instance)
                reachable += 1
            except BaselineError:
                pass
        return reachable / len(names)

    return run_on(domain, ws, client())


def test_e8c_availability(benchmark):
    central_ns_down = benchmark(centralized_availability, "nameserver")
    central_obj_down = centralized_availability("object0")
    central_healthy = centralized_availability("none")
    dist_healthy = distributed_availability(None)
    dist_one_down = distributed_availability(0)

    report_table(
        "E8c  Names reachable with one server down (Sec. 2.2 Reliability)",
        [
            ("centralized, all up", f"{central_healthy:.0%}"),
            ("centralized, 1 object server down", f"{central_obj_down:.0%}"),
            ("centralized, NAME SERVER down", f"{central_ns_down:.0%}"),
            ("distributed, all up", f"{dist_healthy:.0%}"),
            ("distributed, 1 file server down", f"{dist_one_down:.0%}"),
        ],
        headers=("configuration", "reachable"),
    )

    assert central_healthy == 1.0 and dist_healthy == 1.0
    # Losing one of K object servers loses ~1/K of names in both models...
    assert central_obj_down == pytest.approx(1 - 1 / SERVERS, abs=0.01)
    assert dist_one_down == pytest.approx(1 - 1 / SERVERS, abs=0.01)
    # ...but losing the name server loses EVERYTHING, although every object
    # still physically exists -- the central failure point.
    assert central_ns_down == 0.0


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench)."""
    return {
        "central_ns_down_reachable_rate": centralized_availability(
            "nameserver"),
        "central_obj_down_reachable_rate": centralized_availability(
            "object0"),
        "distributed_one_down_reachable_rate": distributed_availability(0),
    }
