"""E3 (paper Sec. 3.1): sequential file reading over IPC.

Paper: "with a disk delivering a 512 byte page every 15 milliseconds, a file
can be read sequentially averaging 17.13 milliseconds per page.  This is
comparable to the performance of highly tuned special-purpose file access
protocols."

Reproduced: steady-state per-page period with the timed disk and the file
server's post-reply read-ahead, plus the no-read-ahead control (random
access) showing where the 2 ms of IPC overlap goes.
"""

import pytest

from conftest import report_table
from _common import run_on, standard_system

from repro.kernel.ipc import Now
from repro.runtime import files
from repro.servers.fileserver.disk import DiskModel
from repro.vio.client import read_block

PAPER_MS_PER_PAGE = 17.13
DISK_MS = 15.0
PAGES = 48


def measure_sequential(pages: int = PAGES) -> float:
    domain, workstation, fs = standard_system(
        disk=DiskModel(page_seconds=DISK_MS * 1e-3))
    content = b"s" * (512 * pages)

    def client(session):
        yield from files.write_file(session, "seq.dat", content)
        stream = yield from session.open("seq.dat", "r")
        yield from read_block(stream.server, stream.instance, 0)  # warm-up
        t0 = yield Now()
        for block in range(1, pages):
            yield from read_block(stream.server, stream.instance, block)
        t1 = yield Now()
        yield from stream.close()
        return (t1 - t0) / (pages - 1)

    return run_on(domain, workstation.host,
                  client(workstation.session())) * 1e3


def measure_random(pages: int = 16) -> float:
    domain, workstation, fs = standard_system(
        disk=DiskModel(page_seconds=DISK_MS * 1e-3))
    content = b"r" * (512 * pages)

    def client(session):
        yield from files.write_file(session, "rand.dat", content)
        stream = yield from session.open("rand.dat", "r")
        order = [(block * 7) % pages for block in range(pages)]
        t0 = yield Now()
        for block in order:
            yield from read_block(stream.server, stream.instance, block)
        t1 = yield Now()
        return (t1 - t0) / pages

    return run_on(domain, workstation.host,
                  client(workstation.session())) * 1e3


def test_e3_sequential_read(benchmark):
    sequential_ms = benchmark(measure_sequential)
    random_ms = measure_random()

    report_table(
        "E3  Sequential file read, 512-byte pages, 15 ms disk (Sec. 3.1)",
        [
            ("sequential (read-ahead)", PAPER_MS_PER_PAGE, sequential_ms),
            ("random (no read-ahead)", "(n/a)", random_ms),
            ("disk bound", DISK_MS, DISK_MS),
        ],
        headers=("access pattern", "paper ms/page", "measured ms/page"),
    )

    assert sequential_ms == pytest.approx(PAPER_MS_PER_PAGE, rel=0.02)
    # Shape: disk-dominated; IPC adds ~2 ms, not ~4 (the overlap works).
    assert DISK_MS < sequential_ms < DISK_MS + 2.5
    assert random_ms > sequential_ms  # read-ahead only helps sequential


def test_e3_faster_disk_shifts_the_bottleneck(benchmark):
    """With a 0 ms disk the period collapses to pure protocol cost."""

    def run():
        domain, workstation, fs = standard_system(
            disk=DiskModel(page_seconds=0.0))
        content = b"f" * (512 * 16)

        def client(session):
            yield from files.write_file(session, "fast.dat", content)
            stream = yield from session.open("fast.dat", "r")
            t0 = yield Now()
            for block in range(16):
                yield from read_block(stream.server, stream.instance, block)
            t1 = yield Now()
            return (t1 - t0) / 16

        return run_on(domain, workstation.host,
                      client(workstation.session())) * 1e3

    protocol_ms = benchmark(run)
    report_table(
        "E3b  Per-page protocol cost with an instant disk",
        [("512-byte page read", protocol_ms)],
        headers=("operation", "measured ms"),
    )
    assert protocol_ms < 5.0


def trajectory_metrics(quick: bool = False) -> dict:
    """Metrics tracked by the continuous benchmark (repro.obs.bench).

    The sequential per-page period is a steady-state mean, so a shorter
    quick-mode file yields the same value.
    """
    from repro.obs.bench import pick_rounds

    return {
        "sequential_ms": measure_sequential(pick_rounds(quick, PAGES, 16)),
        "random_ms": measure_random(16),
    }
