"""Tests for the centralized name-server baseline (paper Sec. 2.1-2.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.baseline import (
    BaselineClient,
    CentralNameServer,
    UidAllocator,
    UidObjectServer,
    audit,
)
from repro.baseline.client import BaselineError, ClientCrashed, CrashPoint
from repro.baseline.uids import ALLOCATOR_MAX, allocator_of, sequence_of
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay
from repro.kernel.messages import ReplyCode
from repro.servers.base import start_server
from tests.helpers import run_on


class TestUids:
    def test_uids_unique_within_allocator(self):
        allocator = UidAllocator(7)
        uids = [allocator.allocate() for __ in range(1000)]
        assert len(set(uids)) == 1000

    def test_uids_unique_across_allocators(self):
        a, b = UidAllocator(1), UidAllocator(2)
        assert not {a.allocate() for __ in range(100)} & {
            b.allocate() for __ in range(100)}

    def test_structure_roundtrip(self):
        allocator = UidAllocator(5)
        uid = allocator.allocate()
        assert allocator_of(uid) == 5
        assert sequence_of(uid) == 0

    def test_allocator_id_range_checked(self):
        with pytest.raises(ValueError):
            UidAllocator(ALLOCATOR_MAX + 1)

    @given(st.integers(0, ALLOCATOR_MAX), st.integers(0, 10_000))
    def test_structure_property(self, allocator_id, steps):
        allocator = UidAllocator(allocator_id)
        allocator._sequence = steps
        uid = allocator.allocate()
        assert allocator_of(uid) == allocator_id
        assert sequence_of(uid) == steps


def baseline_system(object_server_count=2):
    """A domain with a client host, the name server, and object servers."""
    domain = Domain()
    client_host = domain.create_host("ws")
    ns_host = domain.create_host("ns")
    ns = CentralNameServer()
    ns_handle = start_server(ns_host, ns)
    object_servers = []
    handles = []
    for index in range(object_server_count):
        host = domain.create_host(f"obj{index}")
        server = UidObjectServer(allocator_id=index + 1)
        handles.append(start_server(host, server))
        object_servers.append(server)
    return domain, client_host, ns, ns_handle, object_servers, handles


class TestNameServerProtocol:
    def test_create_then_open_by_name(self):
        domain, ws, ns, ns_handle, servers, handles = baseline_system()

        def client():
            yield Delay(0.01)
            lib = BaselineClient(ns_handle.pid, domain.latency)
            yield from lib.create("data/a.txt", handles[0].pid, data=b"abc")
            stream = yield from lib.open("data/a.txt")
            from repro.vio.client import read_block

            code, data = yield from read_block(stream.server, stream.instance, 0)
            return code, data, lib.name_server_transactions

        code, data, transactions = run_on(domain, ws, client())
        assert code is ReplyCode.OK and data == b"abc"
        assert transactions == 2  # one register, one lookup

    def test_lookup_missing_name_fails(self):
        domain, ws, ns, ns_handle, servers, handles = baseline_system()

        def client():
            yield Delay(0.01)
            lib = BaselineClient(ns_handle.pid, domain.latency)
            try:
                yield from lib.lookup("ghost")
            except BaselineError as err:
                return err.code

        assert run_on(domain, ws, client()) is ReplyCode.NOT_FOUND

    def test_duplicate_registration_rejected(self):
        domain, ws, ns, ns_handle, servers, handles = baseline_system()

        def client():
            yield Delay(0.01)
            lib = BaselineClient(ns_handle.pid, domain.latency)
            yield from lib.create("dup", handles[0].pid)
            try:
                yield from lib.create("dup", handles[1].pid)
            except BaselineError as err:
                return err.code

        assert run_on(domain, ws, client()) is ReplyCode.NAME_EXISTS

    def test_clean_delete_is_consistent(self):
        domain, ws, ns, ns_handle, servers, handles = baseline_system()

        def client():
            yield Delay(0.01)
            lib = BaselineClient(ns_handle.pid, domain.latency)
            yield from lib.create("tmp/x", handles[0].pid)
            yield from lib.delete("tmp/x")

        run_on(domain, ws, client())
        report = audit(ns, servers)
        assert report.consistent
        assert report.bindings == 0 and report.objects == 0


class TestClientCache:
    def test_cache_avoids_repeat_lookups(self):
        domain, ws, ns, ns_handle, servers, handles = baseline_system()

        def client():
            yield Delay(0.01)
            lib = BaselineClient(ns_handle.pid, domain.latency,
                                 cache_enabled=True)
            yield from lib.create("hot", handles[0].pid, data=b"x")
            for __ in range(5):
                stream = yield from lib.open("hot")
            return lib.name_server_transactions, lib.cache_hits

        transactions, hits = run_on(domain, ws, client())
        assert transactions == 2  # register + first lookup only
        assert hits == 4

    def test_stale_cache_is_the_papers_inconsistency(self):
        """Sec. 2.2: 'Caching the name in the client would introduce
        inconsistency problems.'"""
        domain, ws, ns, ns_handle, servers, handles = baseline_system()

        def deleter():
            yield Delay(0.02)
            lib = BaselineClient(ns_handle.pid, domain.latency)
            yield from lib.create("victim", handles[0].pid)
            # another, cache-less path deletes it properly:
            yield from lib.delete("victim")

        def cached_client():
            lib = BaselineClient(ns_handle.pid, domain.latency,
                                 cache_enabled=True)
            yield Delay(0.01)
            yield from lib.create("decoy", handles[0].pid)
            yield Delay(0.05)
            # warm the cache while the name exists:
            try:
                yield from lib.lookup("victim")
            except BaselineError:
                return "missed"
            return lib

        # Interleave: create+cache, then delete elsewhere, then reuse cache.
        def scenario():
            lib = BaselineClient(ns_handle.pid, domain.latency,
                                 cache_enabled=True)
            yield Delay(0.01)
            yield from lib.create("victim", handles[0].pid)
            yield from lib.lookup("victim")          # cached
            clean = BaselineClient(ns_handle.pid, domain.latency)
            yield from clean.delete("victim")        # object + binding gone
            try:
                yield from lib.open("victim")        # stale cache entry
            except BaselineError as err:
                return err.code

        assert run_on(domain, ws, scenario()) is ReplyCode.INCONSISTENT


class TestCrashWindows:
    def test_crash_after_object_delete_leaves_dangling_name(self):
        domain, ws, ns, ns_handle, servers, handles = baseline_system()

        def scenario():
            yield Delay(0.01)
            lib = BaselineClient(ns_handle.pid, domain.latency)
            yield from lib.create("frag/x", handles[0].pid)
            try:
                yield from lib.delete("frag/x",
                                      crash_at=CrashPoint.AFTER_OBJECT_DELETE)
            except ClientCrashed:
                return "crashed"

        assert run_on(domain, ws, scenario()) == "crashed"
        report = audit(ns, servers)
        assert report.dangling_names == [b"frag/x"]
        assert not report.consistent

    def test_crash_after_create_leaves_orphan_object(self):
        domain, ws, ns, ns_handle, servers, handles = baseline_system()

        def scenario():
            yield Delay(0.01)
            lib = BaselineClient(ns_handle.pid, domain.latency)
            try:
                yield from lib.create("orphan", handles[0].pid,
                                      crash_at=CrashPoint.AFTER_OBJECT_CREATE)
            except ClientCrashed:
                return "crashed"

        assert run_on(domain, ws, scenario()) == "crashed"
        report = audit(ns, servers)
        assert len(report.orphan_objects) == 1
        assert report.dangling_names == []

    def test_dangling_name_poisons_later_use(self):
        domain, ws, ns, ns_handle, servers, handles = baseline_system()

        def scenario():
            yield Delay(0.01)
            lib = BaselineClient(ns_handle.pid, domain.latency)
            yield from lib.create("p", handles[0].pid)
            try:
                yield from lib.delete("p",
                                      crash_at=CrashPoint.AFTER_OBJECT_DELETE)
            except ClientCrashed:
                pass
            other = BaselineClient(ns_handle.pid, domain.latency)
            try:
                yield from other.open("p")
            except BaselineError as err:
                return err.code

        assert run_on(domain, ws, scenario()) is ReplyCode.INCONSISTENT


class TestAudit:
    def test_empty_system_consistent(self):
        ns = CentralNameServer()
        assert audit(ns, []).consistent

    def test_report_counts(self):
        domain, ws, ns, ns_handle, servers, handles = baseline_system()

        def scenario():
            yield Delay(0.01)
            lib = BaselineClient(ns_handle.pid, domain.latency)
            for index in range(4):
                yield from lib.create(f"f{index}",
                                      handles[index % 2].pid)

        run_on(domain, ws, scenario())
        report = audit(ns, servers)
        assert report.bindings == 4
        assert report.objects == 4
        assert report.inconsistency_count == 0
