"""Unit tests for server-side instances and the id table (paper Sec. 4.3)."""

import pytest

from repro.kernel.messages import ReplyCode
from repro.kernel.pids import Pid
from repro.vio.instance import (
    Instance,
    InstanceError,
    InstanceTable,
    MemoryInstance,
)

OWNER = Pid.make(1, 1)


def run_gen(gen):
    """Drive an effect-free instance hook to its return value."""
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("instance hook yielded an effect unexpectedly")


class TestMemoryInstance:
    def test_read_within_data(self):
        instance = MemoryInstance(OWNER, data=b"abcdef", block_size=4)
        code, data = run_gen(instance.read_block(0))
        assert (code, data) == (ReplyCode.OK, b"abcd")
        code, data = run_gen(instance.read_block(1))
        assert (code, data) == (ReplyCode.OK, b"ef")

    def test_read_past_end_is_eof(self):
        instance = MemoryInstance(OWNER, data=b"ab", block_size=4)
        code, data = run_gen(instance.read_block(1))
        assert code is ReplyCode.END_OF_FILE

    def test_write_extends_data(self):
        instance = MemoryInstance(OWNER, block_size=4)
        code, written = run_gen(instance.write_block(1, b"wxyz"))
        assert (code, written) == (ReplyCode.OK, 4)
        assert instance.data == bytearray(b"\x00\x00\x00\x00wxyz")
        assert instance.size_bytes() == 8

    def test_oversized_write_rejected(self):
        instance = MemoryInstance(OWNER, block_size=4)
        code, __ = run_gen(instance.write_block(0, b"12345"))
        assert code is ReplyCode.BAD_ARGS

    def test_readonly_write_rejected(self):
        instance = MemoryInstance(OWNER, data=b"ro", writable=False)
        code, __ = run_gen(instance.write_block(0, b"x"))
        assert code is ReplyCode.MODE_ERROR

    def test_query_fields_shape(self):
        instance = MemoryInstance(OWNER, data=b"abc", block_size=512)
        table = InstanceTable()
        table.insert(instance)
        fields = instance.query_fields()
        assert fields["size_bytes"] == 3
        assert fields["block_size"] == 512
        assert fields["instance"] == instance.instance_id
        assert fields["readable"] and fields["writable"]

    def test_base_instance_defaults(self):
        instance = Instance(OWNER)
        code, data = run_gen(instance.read_block(0))
        assert code is ReplyCode.END_OF_FILE
        code, __ = run_gen(instance.write_block(0, b"x"))
        assert code is ReplyCode.MODE_ERROR


class TestInstanceTable:
    def test_ids_unique_and_nonzero(self):
        table = InstanceTable()
        ids = [table.insert(MemoryInstance(OWNER)) for __ in range(100)]
        assert len(set(ids)) == 100
        assert 0 not in ids

    def test_get_and_release(self):
        table = InstanceTable()
        instance = MemoryInstance(OWNER)
        instance_id = table.insert(instance)
        assert table.get(instance_id) is instance
        released = table.release(instance_id)
        assert released is instance
        assert table.get(instance_id) is None
        assert instance.instance_id is None

    def test_released_id_not_soon_reused(self):
        table = InstanceTable(start=1)
        first = table.insert(MemoryInstance(OWNER))
        table.release(first)
        soon = [table.insert(MemoryInstance(OWNER)) for __ in range(50)]
        assert first not in soon

    def test_release_owned_by(self):
        table = InstanceTable()
        other = Pid.make(2, 2)
        table.insert(MemoryInstance(OWNER))
        table.insert(MemoryInstance(other))
        table.insert(MemoryInstance(other))
        assert table.release_owned_by(other) == 2
        assert len(table) == 1

    def test_wraparound_skips_live_ids(self):
        table = InstanceTable(start=0xFFFF)
        first = table.insert(MemoryInstance(OWNER))
        second = table.insert(MemoryInstance(OWNER))
        assert first == 0xFFFF
        assert second == 1  # 0 skipped
