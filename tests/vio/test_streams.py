"""Tests for the client-side I/O protocol: block ops and FileStream."""

import pytest

from repro.kernel.messages import ReplyCode
from repro.runtime import files
from repro.vio.client import (
    FileStream,
    IoError,
    query_instance,
    read_all_bytes,
    read_block,
    release_instance,
    write_block,
)
from tests.helpers import standard_system


def opened(system, name, content, mode="r"):
    """Client generator: create a file and open it."""
    def setup(session):
        yield from files.write_file(session, name, content)
        stream = yield from session.open(name, mode)
        return session, stream
    return setup


class TestBlockOps:
    def test_read_block_by_block(self):
        system = standard_system()
        content = bytes(range(256)) * 4  # exactly 2 blocks of 512

        def client(session):
            yield from files.write_file(session, "b.bin", content)
            stream = yield from session.open("b.bin", "r")
            code0, block0 = yield from read_block(stream.server,
                                                  stream.instance, 0)
            code1, block1 = yield from read_block(stream.server,
                                                  stream.instance, 1)
            code2, __ = yield from read_block(stream.server,
                                              stream.instance, 2)
            return (code0, block0), (code1, block1), code2

        (c0, b0), (c1, b1), c2 = system.run_client(client(system.session()))
        assert c0 is ReplyCode.OK and b0 == content[:512]
        assert c1 is ReplyCode.OK and b1 == content[512:]
        assert c2 is ReplyCode.END_OF_FILE

    def test_bad_instance_rejected(self):
        system = standard_system()

        def client(session):
            stream = yield from session.open("[tmp]t", "w")
            code, __ = yield from read_block(stream.server, 0xDEAD, 0)
            return code

        assert system.run_client(
            client(system.session())) is ReplyCode.BAD_INSTANCE

    def test_query_instance_fields(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "q.bin", b"x" * 700)
            stream = yield from session.open("q.bin", "r")
            reply = yield from query_instance(stream.server, stream.instance)
            return reply

        reply = system.run_client(client(system.session()))
        assert reply["size_bytes"] == 700
        assert reply["block_size"] == 512

    def test_release_invalidates_instance(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "r.bin", b"x")
            stream = yield from session.open("r.bin", "r")
            code = yield from release_instance(stream.server, stream.instance)
            late, __ = yield from read_block(stream.server, stream.instance, 0)
            return code, late

        code, late = system.run_client(client(system.session()))
        assert code is ReplyCode.OK
        assert late is ReplyCode.BAD_INSTANCE

    def test_read_all_bytes(self):
        system = standard_system()
        content = b"z" * 1500

        def client(session):
            yield from files.write_file(session, "all.bin", content)
            stream = yield from session.open("all.bin", "r")
            return (yield from read_all_bytes(stream.server, stream.instance))

        assert system.run_client(client(system.session())) == content


class TestFileStream:
    def test_positioned_reads(self):
        system = standard_system()
        content = bytes(range(200)) * 10  # 2000 bytes

        def client(session):
            yield from files.write_file(session, "s.bin", content)
            stream = yield from session.open("s.bin", "r")
            first = yield from stream.read(100)
            second = yield from stream.read(700)
            stream.seek(1990)
            tail = yield from stream.read(100)
            return first, second, tail

        first, second, tail = system.run_client(client(system.session()))
        assert first == content[:100]
        assert second == content[100:800]
        assert tail == content[1990:]

    def test_partial_block_write_preserves_neighbors(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "p.bin", b"A" * 1024)
            stream = yield from session.open("p.bin", "a")
            stream.seek(500)
            yield from stream.write(b"BBB")
            return (yield from files.read_file(session, "p.bin"))

        data = system.run_client(client(system.session()))
        assert data[:500] == b"A" * 500
        assert data[500:503] == b"BBB"
        assert data[503:] == b"A" * 521

    def test_write_spanning_blocks(self):
        system = standard_system()

        def client(session):
            stream = yield from session.open("span.bin", "w")
            yield from stream.write(b"x" * 1300)
            yield from stream.close()
            record = yield from session.query("span.bin")
            return record.size_bytes

        assert system.run_client(client(system.session())) == 1300

    def test_open_classmethod_queries_block_size(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "o.bin", b"abc")
            raw = yield from session.open("o.bin", "r")
            stream = yield from FileStream.open(raw.server, raw.instance)
            return stream.block_size

        assert system.run_client(client(system.session())) == 512

    def test_double_close_raises_io_error(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "c.bin", b"x")
            stream = yield from session.open("c.bin", "r")
            yield from stream.close()
            try:
                yield from stream.close()
            except IoError as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.BAD_INSTANCE

    def test_negative_seek_rejected(self):
        stream = FileStream(server=None, instance=1, block_size=512)
        with pytest.raises(ValueError):
            stream.seek(-1)
