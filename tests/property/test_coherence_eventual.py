"""Eventual coherence as a property: no mutation/crash sequence survives
quiescence with an incoherent entry.

The coherence auditor's taxonomy (repro.obs.audit) calls an entry
*incoherent* only when a client could be served a stamp that disagrees
with the shard owner's right now -- replica disagreement under a fresh
lease.  The lease/fan-out discipline of PR 9 claims that state is
unreachable once the dust settles; this property test drives randomized
sequences of binding creates, rebinds, deletes, reads, and replica
crash/restart cycles against a live sharded fleet, waits out every lease
and TTL, and asserts the audit over the whole fleet (replica tables *and*
client resolver caches) finds zero incoherent entries -- every time.

Availability during the sequence is explicitly not the property: mid-
failover mutations and reads may fail (callers see errors), but nothing
wrong may remain *servable* afterwards.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import ContextPair, WellKnownContext
from repro.core.resolver import NameError_
from repro.core.shard import ShardCluster
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay
from repro.obs.audit import audit_direct, enable_coherence
from repro.runtime import files
from repro.runtime.session import Session
from repro.servers import VFileServer, start_server
from repro.vio.client import IoError

N_REPLICAS = 3
N_PREFIXES = 4
LEASE_TTL = 0.5
PAYLOAD = b"eventual-payload"

#: One step of a driving sequence.  Crash indices address replicas;
#: everything else addresses prefixes ``p0``..``p3``.
_OPS = st.one_of(
    st.tuples(st.just("add"), st.integers(0, N_PREFIXES - 1)),
    st.tuples(st.just("rebind"), st.integers(0, N_PREFIXES - 1)),
    st.tuples(st.just("delete"), st.integers(0, N_PREFIXES - 1)),
    st.tuples(st.just("read"), st.integers(0, N_PREFIXES - 1)),
    st.tuples(st.just("crash"), st.integers(0, N_REPLICAS - 1)),
)


def _build_fleet(seed: int):
    domain = Domain(seed=seed)
    enable_coherence(domain)
    fs_host = domain.create_host("vax1")
    fileserver = VFileServer(user="mann")
    node = fileserver.store.make_path("data/f0.dat", directory=False)
    node.data[:] = PAYLOAD
    fs_handle = start_server(fs_host, fileserver)
    pair = ContextPair(fs_handle.pid, int(WellKnownContext.DEFAULT))
    replica_hosts = domain.create_hosts(N_REPLICAS, prefix="ns")
    cluster = ShardCluster(domain, replica_hosts, lease_ttl=LEASE_TTL)
    for index in range(N_PREFIXES):
        cluster.seed_binding(f"p{index}", pair)
    client_host = domain.create_host("client")
    resolver = cluster.resolver(host=client_host, negative_ttl=0.5)
    return domain, cluster, pair, replica_hosts, client_host, resolver


@given(ops=st.lists(_OPS, min_size=1, max_size=12))
@settings(max_examples=12, deadline=None)
def test_any_sequence_quiesces_coherent(ops):
    domain, cluster, pair, replica_hosts, client_host, resolver = \
        _build_fleet(seed=17)

    def driver():
        for op, index in ops:
            if op == "crash":
                host = replica_hosts[index]
                live = sum(1 for h in replica_hosts if not h.crashed)
                # Keep a majorityless-fleet pathology out of scope: only
                # fail-stop a replica while at least one peer stays up.
                if not host.crashed and live >= 2:
                    host.crash()
                    domain.engine.schedule(6 * LEASE_TTL, host.restart)
                yield Delay(0.05)
                continue
            # Fresh session per op: after a failover the primary moved.
            session = Session(current=pair,
                              prefix_server=cluster.primary_pid(),
                              latency=domain.latency,
                              cache=resolver if op == "read" else None)
            try:
                if op == "add":
                    yield from session.add_prefix(f"p{index}", pair,
                                                  replace=True)
                elif op == "rebind":
                    yield from session.delete_prefix(f"p{index}")
                    yield from session.add_prefix(f"p{index}", pair)
                elif op == "delete":
                    yield from session.delete_prefix(f"p{index}")
                elif op == "read":
                    yield from files.read_file(session,
                                               f"[p{index}]data/f0.dat")
            except (NameError_, IoError):
                pass            # availability is not the property
            yield Delay(0.05)

    client_host.spawn(driver(), name="coherence-driver")
    domain.run()
    # Quiescence: outlive every lease, binding TTL, and negative TTL, then
    # let the telemetry-free engine drain completely.
    domain.engine.schedule(4 * LEASE_TTL, lambda: None)
    domain.run()

    report = audit_direct(domain)
    assert report["findings"]["incoherent"] == [], report["findings"]
    assert report["tiers"]["replica"]["incoherent"] == 0
    # Replicas converged on one map version as well (resolvers are allowed
    # to lag: they catch up lazily on their next routed lookup).
    replica_drift = [finding for finding in report["findings"]["map_drift"]
                     if finding["tier"] == "replica"]
    assert replica_drift == []
    assert report["ok"] is True
