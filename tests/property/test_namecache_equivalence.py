"""Property: cached resolution is observationally equal to cold resolution.

The binding cache is a pure performance layer -- it may change *where* a
request is first sent, never *what* the caller observes.  For random
operation sequences (writes, reads, deletes, queries) interleaved with
prefix rebindings, the same sequence is run twice on identically-seeded
systems -- once with the cache enabled, once without -- and every per-op
outcome (returned data, or the error code raised) must be identical.
"""

from hypothesis import given, settings, strategies as st

from repro.core.context import ContextPair, WellKnownContext
from repro.core.resolver import NameError_
from repro.kernel.domain import Domain
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from repro.sim.rng import DeterministicRng
from tests.helpers import run_on

NAMES = ["[home]a.txt", "[home]b.txt", "[home]docs/c.txt",
         "[other]a.txt", "[other]d.txt"]


def make_ops(seed: int, length: int = 18) -> list[tuple]:
    """A random op sequence, including occasional prefix rebindings."""
    rng = DeterministicRng(seed)
    ops = []
    for step in range(length):
        kind = rng.choice(f"kind{step}",
                          ["write", "write", "read", "read", "read",
                           "query", "remove", "rebind"])
        if kind == "rebind":
            ops.append(("rebind", rng.randint(f"target{step}", 0, 1)))
        elif kind == "write":
            ops.append(("write", rng.choice(f"name{step}", NAMES),
                        b"v%d" % step))
        else:
            ops.append((kind, rng.choice(f"name{step}", NAMES)))
    return ops


def run_sequence(seed: int, ops: list[tuple], cached: bool) -> list[tuple]:
    domain = Domain(seed=seed)
    ws = setup_workstation(domain, "mann")
    servers = [start_server(domain.create_host(f"vax{i}"),
                            VFileServer(user="mann")) for i in range(2)]
    standard_prefixes(ws, servers[0])
    ws.prefix_server.define_prefix(
        "other", ContextPair(servers[1].pid, int(WellKnownContext.HOME)))
    for handle in servers:
        handle.server.store.make_path("docs", directory=True)
    cache = ws.enable_name_cache() if cached else None

    def client(session):
        outcomes = []
        for op in ops:
            try:
                if op[0] == "rebind":
                    pair = ContextPair(servers[op[1]].pid,
                                       int(WellKnownContext.HOME))
                    yield from session.add_prefix("home", pair, replace=True)
                    outcomes.append(("rebind", "ok"))
                elif op[0] == "write":
                    yield from files.write_file(session, op[1], op[2])
                    outcomes.append(("write", "ok"))
                elif op[0] == "read":
                    data = yield from files.read_file(session, op[1])
                    outcomes.append(("read", data))
                elif op[0] == "remove":
                    yield from session.remove(op[1])
                    outcomes.append(("remove", "ok"))
                else:
                    record = yield from session.query(op[1])
                    outcomes.append(("query", record.TAG.name, record.name))
            except NameError_ as err:
                outcomes.append((op[0], f"error:{err.code.name}"))
        return outcomes

    outcomes = run_on(domain, ws.host, client(ws.session()))
    if cache is not None:
        # The cache must actually have been exercised for the comparison
        # to mean anything.
        assert cache.stats.lookups > 0
    return outcomes


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=500))
def test_cached_equals_cold_resolution(seed):
    ops = make_ops(seed)
    cold = run_sequence(seed, ops, cached=False)
    warm = run_sequence(seed, ops, cached=True)
    assert warm == cold
