"""The commutation theorem: simulator resolution == abstract denotation.

For randomized multi-server configurations (random directory trees, random
cross-server links, random prefix tables) and randomized names (both valid
and invalid), the operational system -- prefix server, forwarding, the whole
protocol -- must agree with the Sec. 7 semantic model in
:mod:`repro.core.semantics`:

- a name the model says denotes an object opens successfully and reaches a
  file of the expected identity;
- a name the model says denotes a context maps (NAME_TO_CONTEXT) to a pair
  the model recognizes as (an alias of) the same context;
- a name the model says is Undefined fails with a naming error.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.context import ContextPair, WellKnownContext
from repro.core.resolver import NameError_
from repro.core.semantics import (
    AbstractObject,
    Denotation,
    Undefined,
    extract_model,
)
from repro.kernel.domain import Domain
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from repro.sim.rng import DeterministicRng
from tests.helpers import run_on

COMPONENTS = [b"a", b"b", b"c", b"docs", b"src"]


def build_random_system(seed: int):
    """2 file servers with random trees, links, and prefixes."""
    rng = DeterministicRng(seed)
    domain = Domain(seed=seed)
    ws = setup_workstation(domain, "mann")
    servers = [start_server(domain.create_host(f"vax{i}"),
                            VFileServer(user="mann")) for i in range(2)]
    standard_prefixes(ws, servers[0])
    ws.prefix_server.define_prefix(
        "other", ContextPair(servers[1].pid, int(WellKnownContext.HOME)))

    # Random trees under each home.
    for index, handle in enumerate(servers):
        store = handle.server.store
        directories = [handle.server.home]
        for __ in range(rng.randint(f"dirs{index}", 2, 5)):
            parent = rng.choice(f"parent{index}", directories)
            name = rng.choice(f"dname{index}", COMPONENTS)
            if store.get(parent, name) is None:
                directories.append(store.create_directory(parent, name))
        for __ in range(rng.randint(f"files{index}", 2, 6)):
            parent = rng.choice(f"fparent{index}", directories)
            name = rng.choice(f"fname{index}", COMPONENTS) + b".txt"
            if store.get(parent, name) is None:
                store.create_file(parent, name)

    # A couple of random cross-server links (possibly cyclic!).
    for __ in range(rng.randint("links", 1, 2)):
        src = rng.randint("linksrc", 0, 1)
        dst = 1 - src
        store = servers[src].server.store
        name = b"link-" + rng.choice("linkname", COMPONENTS)
        if store.get(servers[src].server.home, name) is None:
            store.link_remote(
                servers[src].server.home, name,
                ContextPair(servers[dst].pid, int(WellKnownContext.HOME)))
    # Let the server processes start (assigning their pid attributes) so
    # the model can be extracted before any client runs.
    domain.run()
    return domain, ws, servers


def candidate_names(seed: int, count: int = 12) -> list[bytes]:
    """Random user-level names, prefixed and not, valid and not."""
    rng = DeterministicRng(seed + 1)
    names = []
    for __ in range(count):
        parts = [rng.choice("part", COMPONENTS + [b"link-a", b"link-b",
                                                  b"a.txt", b"c.txt",
                                                  b"ghost"])
                 for __ in range(rng.randint("len", 1, 3))]
        body = b"/".join(parts)
        if rng.uniform("prefixed", 0, 1) < 0.5:
            prefix = rng.choice("prefix", [b"home", b"other", b"undefined"])
            names.append(b"[" + prefix + b"]" + body)
        else:
            names.append(body)
    return names


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=400))
def test_simulator_agrees_with_the_semantic_model(seed):
    domain, ws, servers = build_random_system(seed)
    model = extract_model([h.server for h in servers],
                          [ws.prefix_server])
    # NOTE on timing: server pids exist at spawn; context ids used by the
    # model are fabricated through each server's own table, so operational
    # NAME_TO_CONTEXT answers land in the model's context space.
    home_pair = ContextPair(servers[0].pid, int(WellKnownContext.HOME))
    prefix_pair = ContextPair(ws.prefix_pid, 0)
    names = candidate_names(seed)

    def denote(name: bytes):
        if name.startswith(b"["):
            return model.interpret_user_name(prefix_pair, name)
        return model.interpret(home_pair, name)

    def client(session):
        observations = []
        for name in names:
            meaning = denote(name)
            if isinstance(meaning, Undefined):
                try:
                    yield from session.query(name)
                    observations.append((name, "resolved", meaning))
                except NameError_:
                    observations.append((name, "ok", None))
            elif isinstance(meaning.value, AbstractObject):
                stream = yield from session.open(name, "r")
                yield from stream.close()
                observations.append((name, "ok", None))
            else:
                pair = yield from session.name_to_context(name)
                # The operational pair must denote the same context set as
                # the model's (contexts can have several ids; compare the
                # underlying entry mappings).
                operational = model.contexts.get(pair)
                denoted = model.contexts.get(meaning.value)
                matches = operational is not None and operational is denoted
                observations.append((name, "ok" if matches else
                                     f"pair-mismatch {pair}", None))
        return observations

    observations = run_on(domain, ws.host, client(ws.session()))
    failures = [(name, what, extra) for name, what, extra in observations
                if what != "ok"]
    assert not failures, failures


def test_model_exposes_many_to_one_inverse():
    """The Sec. 6 deficiency as a theorem: names_of(object) is a set."""
    domain, ws, servers = build_random_system(7)
    # Add an extra alias: a second link to the same home directory.
    servers[0].server.store.link_remote(
        servers[0].server.home, b"self-alias",
        ContextPair(servers[1].pid, int(WellKnownContext.HOME)))
    model = extract_model([h.server for h in servers], [ws.prefix_server])
    target = ContextPair(servers[1].pid, int(WellKnownContext.HOME))
    names = model.names_of(target)
    # At least the prefix binding and the alias reach it: no unique inverse.
    assert len(names) >= 2


def test_cyclic_links_denote_undefined_not_divergence():
    domain, ws, servers = build_random_system(3)
    a, b = servers
    a.server.store.link_remote(
        a.server.home, b"loop",
        ContextPair(b.pid, int(WellKnownContext.HOME)))
    b.server.store.link_remote(
        b.server.home, b"loop",
        ContextPair(a.pid, int(WellKnownContext.HOME)))
    model = extract_model([a.server, b.server], [ws.prefix_server])
    meaning = model.interpret(
        ContextPair(a.pid, int(WellKnownContext.HOME)),
        b"loop/" * 200 + b"x")
    assert isinstance(meaning, Undefined)
    assert "cyclic" in meaning.reason or "unbound" in meaning.reason
