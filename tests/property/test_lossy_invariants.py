"""Property tests: fault interleavings never leak timers or serve stale routes.

Hypothesis drives the *schedule* -- when the wire starts losing frames, how
lossy it gets, when the file server crashes and for how long -- while the
seeded rng keeps each individual run deterministic.  Two invariants from the
retransmission/re-resolution work are checked after every interleaving:

1. **No timer leak**: once the run quiesces, no live scheduled event may
   reference a dead process, and no kernel may still hold an outstanding
   send transaction.
2. **No stale survivor**: ``send_csname_request`` must never hand a caller a
   stale-coded reply obtained through a cached route -- operationally, every
   stale-hint fallback invalidated the binding that produced it, a read that
   returns at all returns the right bytes, and once the faults heal a read
   through the (possibly poisoned) cache succeeds against the *new* server.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.resolver import NameError_
from repro.faults import ChaosSchedule, check_invariants
from repro.faults.chaos import (
    check_no_stuck_transactions,
    check_no_timer_leaks,
)
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, Now
from repro.net.latency import WireFaultModel
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from repro.vio.client import IoError

_PAYLOAD = b"property-payload"
_DURATION = 1.2


def _populated_server() -> VFileServer:
    server = VFileServer(user="mann")
    node = server.store.make_path("data/f0.dat", directory=False)
    node.data[:] = _PAYLOAD
    return server


def _run_interleaving(seed, drop_rate, loss_start, loss_len,
                      crash, crash_start, crash_len):
    """Build the system, apply the schedule, run to quiescence."""
    domain = Domain(seed=seed)
    workstation = setup_workstation(domain, "mann")
    fs_host = domain.create_host("vax1")
    handle = start_server(fs_host, _populated_server())
    standard_prefixes(workstation, handle)
    cache = workstation.enable_name_cache()

    schedule = ChaosSchedule(domain)
    schedule.loss_between(loss_start, min(loss_start + loss_len, 0.9),
                          WireFaultModel(drop_rate=drop_rate))
    new_pid = {}
    if crash:
        def respawn(host):
            new_handle = start_server(host, _populated_server())
            standard_prefixes(workstation, new_handle)
            new_pid["pid"] = new_handle.pid

        schedule.crash_between(fs_host, crash_start,
                               min(crash_start + crash_len, 0.85),
                               respawn=respawn)

    outcomes = {"ok": 0, "failed": 0, "wrong": 0, "healed_ok": False}

    def client(session):
        while True:
            now = yield Now()
            if now >= _DURATION:
                break
            for name in ("[root]data/f0.dat", "[storage]data/f0.dat"):
                try:
                    data = yield from files.read_file(session, name)
                except (NameError_, IoError):
                    outcomes["failed"] += 1
                else:
                    outcomes["wrong" if data != _PAYLOAD else "ok"] += 1
            yield Delay(0.03)
        # The post-heal read: wire clean, server (re)running.  Whatever the
        # cache accumulated during the faults, this must succeed.
        data = yield from files.read_file(session, "[root]data/f0.dat")
        outcomes["healed_ok"] = data == _PAYLOAD

    workstation.host.spawn(client(workstation.session()), name="prop-client")
    domain.run()
    domain.check_healthy()
    return domain, cache, outcomes, handle, new_pid


schedules = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=2**16),
    "drop_rate": st.floats(min_value=0.05, max_value=0.30),
    "loss_start": st.floats(min_value=0.05, max_value=0.40),
    "loss_len": st.floats(min_value=0.10, max_value=0.50),
    "crash": st.booleans(),
    "crash_start": st.floats(min_value=0.10, max_value=0.50),
    "crash_len": st.floats(min_value=0.05, max_value=0.25),
})


@settings(max_examples=10, deadline=None)
@given(schedules)
def test_no_interleaving_leaks_timers(params):
    domain, cache, outcomes, __, __new = _run_interleaving(**params)
    assert check_no_timer_leaks(domain) == []
    assert check_no_stuck_transactions(domain) == []
    # The composite check (includes timeout attribution + cache accounting).
    check_invariants(domain, cache=cache)


@settings(max_examples=10, deadline=None)
@given(schedules)
def test_no_interleaving_serves_stale_replies(params):
    domain, cache, outcomes, handle, new_pid = _run_interleaving(**params)
    # A read either fails cleanly or returns the true bytes -- a stale route
    # must never produce wrong data.
    assert outcomes["wrong"] == 0
    assert outcomes["ok"] > 0
    # Every stale-coded reply obtained through a cached route invalidated
    # the binding that produced it before anything was surfaced.
    assert cache.stats.invalidations >= cache.stats.fallbacks
    # And the caller is never wedged on the stale state: with the wire clean
    # and the server back, resolution through the same cache succeeds.
    assert outcomes["healed_ok"]
    if params["crash"]:
        assert new_pid.get("pid") not in (None, handle.pid)
