"""Order-equivalence of the slotted tuple-heap engine vs a reference.

The engine overhaul replaced per-event dataclass objects on the heap with
plain ``(time, seq, callback, args, event-or-None)`` tuples, fire-and-forget
``post``/``post_at`` entries, and batched ``schedule_many``.  The contract
is that none of this is observable in simulated time: any program of
schedule/post/batch/cancel operations fires in exactly the order the seed's
dataclass-event engine fired it.  This property test pits the real engine
against a deliberately naive reference (a list of event records scanned for
the ``(time, seq)`` minimum -- the seed semantics with none of the
machinery) across randomized programs heavy on simultaneous events.
"""

from dataclasses import dataclass, field

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine

#: Few distinct delays so simultaneous events (the order-sensitive case)
#: are common.
_DELAYS = st.sampled_from([0.0, 0.25, 0.5, 0.5, 1.0])


@dataclass
class _RefEvent:
    time: float
    seq: int
    label: int
    cancelled: bool = field(default=False, compare=False)


class _RefEngine:
    """Seed-style reference: dataclass events, no heap, O(n) extraction."""

    def __init__(self):
        self.events: list[_RefEvent] = []
        self.now = 0.0
        self._seq = 0

    def schedule(self, delay: float, label: int) -> _RefEvent:
        event = _RefEvent(self.now + delay, self._seq, label)
        self._seq += 1
        self.events.append(event)
        return event

    def run(self) -> list[int]:
        fired = []
        while True:
            live = [e for e in self.events if not e.cancelled]
            if not live:
                return fired
            head = min(live, key=lambda e: (e.time, e.seq))
            self.events.remove(head)
            self.now = head.time
            fired.append(head.label)


# One program step: schedule one event ("s"), post one ("p"), or batch-
# schedule 2-3 ("m").  The reference models post and batches as plain
# schedules -- that equality IS the documented contract.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("s"), _DELAYS),
        st.tuples(st.just("p"), _DELAYS),
        st.tuples(st.just("m"), _DELAYS, st.integers(2, 3)),
    ),
    min_size=1, max_size=30)


def _echo_server():
    from repro.kernel.ipc import Receive, Reply, SetPid
    from repro.kernel.messages import Message, ReplyCode
    from repro.kernel.services import Scope

    yield SetPid(1, Scope.BOTH)
    while True:
        delivery = yield Receive()
        yield Reply(delivery.sender, Message.reply(ReplyCode.OK))


def _flight_run(seed: int):
    """A fixed lossy workload flown with the recorder; finalized recorder.

    Every flight-record field (engine seq, simulated time, packet kind,
    pids, txn id) must be a pure function of the seed, so this is the
    determinism contract of the whole forensic layer in one helper.
    """
    from repro.kernel.domain import Domain
    from repro.kernel.ipc import Delay, GetPid, Send
    from repro.kernel.messages import Message
    from repro.kernel.services import Scope
    from repro.net.latency import WireFaultModel
    from repro.obs.flight import enable_flight_recorder

    domain = Domain(seed=seed)
    recorder = enable_flight_recorder(domain, window=8)
    workstation = domain.create_host("ws")
    far = domain.create_host("far")
    far.spawn(_echo_server(), "server")
    domain.set_wire_faults(WireFaultModel(drop_rate=0.15, dup_rate=0.05))

    def client():
        yield Delay(0.01)
        # Under heavy loss GetPid's bounded re-broadcast can come up
        # empty; keep asking (deterministically) until the server is found.
        pid = None
        while pid is None:
            pid = yield GetPid(1, Scope.ANY)
            if pid is None:
                yield Delay(0.05)
        for __ in range(25):
            reply = yield Send(pid, Message.request(0x0101))
            assert reply.ok

    workstation.spawn(client(), name="client")
    domain.run()
    domain.check_healthy()
    recorder.finalize()
    return recorder


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2 ** 32 - 1))
def test_flight_digest_chain_is_pure_function_of_seed(seed):
    from repro.obs.flight import compare

    first = _flight_run(seed)
    second = _flight_run(seed)
    assert first.chains() == second.chains()
    assert ({h: first.records(h) for h in first.hosts()}
            == {h: second.records(h) for h in second.hosts()})
    assert compare(first, second)["identical"]


@settings(max_examples=15, deadline=None)
@given(pair=st.tuples(st.integers(0, 2 ** 16), st.integers(0, 2 ** 16))
       .filter(lambda p: p[0] != p[1]))
def test_flight_chains_fork_at_recorded_event_across_seeds(pair):
    from repro.obs.flight import compare, record_divergence

    first = _flight_run(pair[0])
    second = _flight_run(pair[1])
    verdict = compare(first, second)
    if verdict["identical"]:
        # Two seeds colliding on the full timeline is astronomically rare
        # under 15% loss, but if it happens "identical" must be honest.
        assert first.chains() == second.chains()
        return
    fork = verdict["fork"]
    assert fork is not None
    # The verdict's fork must be the lowest-seq first-divergent record
    # across hosts; recompute it naively from the raw streams.
    expected = None
    for host in set(first.hosts()) | set(second.hosts()):
        diverged = record_divergence(first.records(host),
                                     second.records(host))
        if diverged is None:
            continue
        __, rec_a, rec_b = diverged
        seq = min(r[0] for r in (rec_a, rec_b) if r is not None)
        if expected is None or seq < expected:
            expected = seq
    assert fork["seq"] == expected
    # The digest chain alone (no raw records needed) flags the fork host.
    assert not verdict["hosts"][fork["host"]]["chains_equal"]


@settings(max_examples=200, deadline=None)
@given(ops=_OPS, cancel_picks=st.lists(st.integers(0, 10 ** 6), max_size=8))
def test_firing_order_matches_seed_reference(ops, cancel_picks):
    engine = Engine()
    reference = _RefEngine()
    fired: list[int] = []
    handles: list = []      # cancellable handles, real engine
    ref_handles: list = []  # the same events in the reference
    label = 0
    for op in ops:
        if op[0] == "s":
            handles.append(engine.schedule(op[1], fired.append, label))
            ref_handles.append(reference.schedule(op[1], label))
            label += 1
        elif op[0] == "p":
            engine.post(op[1], fired.append, label)
            reference.schedule(op[1], label)  # not cancellable
            label += 1
        else:
            calls = [(fired.append, (label + i,)) for i in range(op[2])]
            handles.extend(engine.schedule_many(op[1], calls))
            ref_handles.extend(reference.schedule(op[1], label + i)
                               for i in range(op[2]))
            label += op[2]
    for pick in cancel_picks:
        if handles:
            index = pick % len(handles)
            handles[index].cancel()
            ref_handles[index].cancelled = True
    assert engine.pending == sum(
        1 for event in reference.events if not event.cancelled)
    expected = reference.run()
    engine.run()
    assert fired == expected
    assert engine.now == reference.now or not expected
    assert engine.events_processed == len(expected)
