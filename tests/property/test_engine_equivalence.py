"""Order-equivalence of the slotted tuple-heap engine vs a reference.

The engine overhaul replaced per-event dataclass objects on the heap with
plain ``(time, seq, callback, args, event-or-None)`` tuples, fire-and-forget
``post``/``post_at`` entries, and batched ``schedule_many``.  The contract
is that none of this is observable in simulated time: any program of
schedule/post/batch/cancel operations fires in exactly the order the seed's
dataclass-event engine fired it.  This property test pits the real engine
against a deliberately naive reference (a list of event records scanned for
the ``(time, seq)`` minimum -- the seed semantics with none of the
machinery) across randomized programs heavy on simultaneous events.
"""

from dataclasses import dataclass, field

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine

#: Few distinct delays so simultaneous events (the order-sensitive case)
#: are common.
_DELAYS = st.sampled_from([0.0, 0.25, 0.5, 0.5, 1.0])


@dataclass
class _RefEvent:
    time: float
    seq: int
    label: int
    cancelled: bool = field(default=False, compare=False)


class _RefEngine:
    """Seed-style reference: dataclass events, no heap, O(n) extraction."""

    def __init__(self):
        self.events: list[_RefEvent] = []
        self.now = 0.0
        self._seq = 0

    def schedule(self, delay: float, label: int) -> _RefEvent:
        event = _RefEvent(self.now + delay, self._seq, label)
        self._seq += 1
        self.events.append(event)
        return event

    def run(self) -> list[int]:
        fired = []
        while True:
            live = [e for e in self.events if not e.cancelled]
            if not live:
                return fired
            head = min(live, key=lambda e: (e.time, e.seq))
            self.events.remove(head)
            self.now = head.time
            fired.append(head.label)


# One program step: schedule one event ("s"), post one ("p"), or batch-
# schedule 2-3 ("m").  The reference models post and batches as plain
# schedules -- that equality IS the documented contract.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("s"), _DELAYS),
        st.tuples(st.just("p"), _DELAYS),
        st.tuples(st.just("m"), _DELAYS, st.integers(2, 3)),
    ),
    min_size=1, max_size=30)


@settings(max_examples=200, deadline=None)
@given(ops=_OPS, cancel_picks=st.lists(st.integers(0, 10 ** 6), max_size=8))
def test_firing_order_matches_seed_reference(ops, cancel_picks):
    engine = Engine()
    reference = _RefEngine()
    fired: list[int] = []
    handles: list = []      # cancellable handles, real engine
    ref_handles: list = []  # the same events in the reference
    label = 0
    for op in ops:
        if op[0] == "s":
            handles.append(engine.schedule(op[1], fired.append, label))
            ref_handles.append(reference.schedule(op[1], label))
            label += 1
        elif op[0] == "p":
            engine.post(op[1], fired.append, label)
            reference.schedule(op[1], label)  # not cancellable
            label += 1
        else:
            calls = [(fired.append, (label + i,)) for i in range(op[2])]
            handles.extend(engine.schedule_many(op[1], calls))
            ref_handles.extend(reference.schedule(op[1], label + i)
                               for i in range(op[2]))
            label += op[2]
    for pick in cancel_picks:
        if handles:
            index = pick % len(handles)
            handles[index].cancel()
            ref_handles[index].cancelled = True
    assert engine.pending == sum(
        1 for event in reference.events if not event.cancelled)
    expected = reference.run()
    engine.run()
    assert fired == expected
    assert engine.now == reference.now or not expected
    assert engine.events_processed == len(expected)
