"""Model-based property tests over the core data structures.

- the mapping procedure against randomly generated trees (resolution agrees
  with direct tree navigation; unknown paths always fault; parent
  resolution agrees with child resolution);
- the FileStream byte protocol against a plain in-memory reference model
  (random interleavings of writes, reads, and seeks).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mapping import (
    ForwardName,
    Leaf,
    MappingFault,
    ResolvedObject,
    ResolvedParent,
    SubContext,
    map_name,
)
from repro.kernel.messages import ReplyCode

# ---------------------------------------------------------------------------
# Random trees for the mapping procedure.
# ---------------------------------------------------------------------------

component = st.text(min_size=1, max_size=6,
                    alphabet=st.characters(min_codepoint=97,
                                           max_codepoint=122))


def trees(depth):
    if depth == 0:
        return st.just("LEAF")
    return st.recursive(
        st.just("LEAF"),
        lambda children: st.dictionaries(component, children, min_size=0,
                                         max_size=4),
        max_leaves=12,
    )


class DictSpace:
    def __init__(self, tree):
        self.tree = tree

    def root(self, context_id):
        return self.tree if context_id == 0 else None

    def lookup(self, ref, comp):
        if not isinstance(ref, dict):
            return None
        entry = ref.get(comp.decode())
        if entry is None:
            return None
        if isinstance(entry, dict):
            return SubContext(entry)
        return Leaf(entry)


def all_paths(tree, prefix=()):
    """Every (path, node) pair in the tree, including the root."""
    yield prefix, tree
    if isinstance(tree, dict):
        for name, child in tree.items():
            yield from all_paths(child, prefix + (name,))


@settings(max_examples=60)
@given(trees(3))
def test_every_tree_path_resolves_to_its_node(tree):
    if not isinstance(tree, dict):
        tree = {}
    space = DictSpace(tree)
    for path, node in all_paths(tree):
        name = "/".join(path).encode()
        outcome = map_name(space, 0, name, 0)
        assert isinstance(outcome, ResolvedObject), (path, outcome)
        if isinstance(node, dict):
            assert outcome.is_context and outcome.ref is node
        else:
            assert not outcome.is_context and outcome.ref == node


@settings(max_examples=60)
@given(trees(3), component)
def test_unknown_final_component_always_faults(tree, bogus):
    if not isinstance(tree, dict):
        tree = {}
    space = DictSpace(tree)
    for path, node in all_paths(tree):
        if not isinstance(node, dict) or bogus in node:
            continue
        name = "/".join(path + (bogus,)).encode()
        outcome = map_name(space, 0, name, 0)
        assert isinstance(outcome, MappingFault)
        assert outcome.code is ReplyCode.NOT_FOUND


@settings(max_examples=60)
@given(trees(3))
def test_parent_resolution_consistent_with_child(tree):
    if not isinstance(tree, dict):
        tree = {}
    space = DictSpace(tree)
    for path, node in all_paths(tree):
        if not path:
            continue
        name = "/".join(path).encode()
        child = map_name(space, 0, name, 0)
        parent = map_name(space, 0, name, 0, want_parent=True)
        assert isinstance(child, ResolvedObject)
        assert isinstance(parent, ResolvedParent)
        assert parent.component.decode() == path[-1]
        # The parent really holds the child.
        looked_up = space.lookup(parent.parent_ref, parent.component)
        assert looked_up is not None


# ---------------------------------------------------------------------------
# FileStream vs a reference byte model.
# ---------------------------------------------------------------------------

operation = st.one_of(
    st.tuples(st.just("write"), st.integers(0, 1500),
              st.binary(min_size=1, max_size=600)),
    st.tuples(st.just("read"), st.integers(0, 1500), st.integers(1, 700)),
)


@settings(max_examples=25, deadline=None)
@given(st.lists(operation, min_size=1, max_size=6))
def test_filestream_matches_reference_model(ops):
    from tests.helpers import standard_system

    system = standard_system()
    reference = bytearray()

    def client(session):
        stream = yield from session.open("model.bin", "w")
        observations = []
        for op in ops:
            if op[0] == "write":
                __, position, data = op
                if position > len(reference):
                    reference.extend(b"\x00" * (position - len(reference)))
                end = position + len(data)
                if end > len(reference):
                    reference.extend(b"\x00" * (end - len(reference)))
                reference[position:end] = data
                stream.seek(position)
                yield from stream.write(data)
            else:
                __, position, count = op
                stream.seek(position)
                got = yield from stream.read(count)
                expected = bytes(reference[position:position + count])
                observations.append((got, expected))
        final = yield from session.query("model.bin")
        return observations, final.size_bytes

    observations, size = system.run_client(client(system.session()))
    for got, expected in observations:
        assert got == expected
    assert size == len(reference)
