"""Unit tests for the client-side name-binding cache (repro.core.namecache)."""

import pytest

from repro.core.context import ContextPair, WellKnownContext
from repro.core.namecache import (
    BindingCache,
    CachedRoute,
    GenericBinding,
    NameCache,
    STALE_REPLY_CODES,
)
from repro.core.protocol import (
    FIELD_BOUND_CONTEXT,
    FIELD_BOUND_INDEX,
    FIELD_BOUND_SERVER,
    FIELD_HINT_SERVICE,
    make_binding_advice,
    read_binding_advice,
)
from repro.kernel.ipc import Delay, Now
from repro.kernel.messages import Message, ReplyCode
from repro.kernel.pids import Pid
from repro.kernel.services import ServiceId
from repro.obs.registry import MetricsRegistry
from repro.runtime import files
from tests.helpers import run_on, standard_system


# ---------------------------------------------------------------------------
# BindingCache: the bounded LRU/TTL substrate.
# ---------------------------------------------------------------------------


class TestBindingCache:
    def test_put_get_and_counters(self):
        cache = BindingCache(max_entries=4)
        assert cache.get(b"a") is None
        cache.put(b"a", 1)
        assert cache.get(b"a") == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_ttl_expiry_in_simulated_time(self):
        cache = BindingCache(max_entries=4, ttl=2.0)
        cache.put(b"a", 1, now=10.0)
        assert cache.get(b"a", now=11.9) == 1
        assert cache.get(b"a", now=12.1) is None  # expired, dropped
        assert cache.expirations == 1
        assert b"a" not in cache

    def test_ttl_expiry_is_inclusive_at_the_exact_boundary(self):
        # Regression: expiry used a strict ``>``, so an entry read at
        # exactly ``stamp + ttl`` was served fresh.  The shard lease
        # discipline (repro.core.shard) shares this boundary, and
        # coherence needs every party to agree that ``now == expiry``
        # means *expired* -- pin the inclusive comparison.
        cache = BindingCache(max_entries=4, ttl=2.0)
        cache.put(b"a", 1, now=10.0)
        assert cache.get(b"a", now=12.0) is None
        assert cache.expirations == 1
        assert b"a" not in cache

    def test_no_ttl_means_deliberately_stale(self):
        cache = BindingCache(max_entries=4, ttl=None)
        cache.put(b"a", 1, now=0.0)
        assert cache.get(b"a", now=1e9) == 1

    def test_lru_eviction_prefers_recently_used(self):
        cache = BindingCache(max_entries=2)
        cache.put(b"a", 1)
        cache.put(b"b", 2)
        cache.get(b"a")          # touch: b is now oldest
        cache.put(b"c", 3)       # evicts b
        assert cache.get(b"b") is None
        assert cache.get(b"a") == 1
        assert cache.get(b"c") == 3
        assert cache.evictions == 1

    def test_invalidate_and_invalidate_where(self):
        cache = BindingCache(max_entries=8)
        cache.put(b"[p]x", 1)
        cache.put(b"[p]y", 2)
        cache.put(b"[q]z", 3)
        assert cache.invalidate(b"[p]x")
        assert not cache.invalidate(b"[p]x")
        assert cache.invalidate_where(
            lambda key, __: key.startswith(b"[p]")) == 1
        assert len(cache) == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BindingCache(max_entries=0)
        with pytest.raises(ValueError):
            BindingCache(ttl=0.0)


# ---------------------------------------------------------------------------
# Binding advice encode/decode.
# ---------------------------------------------------------------------------


class TestBindingAdvice:
    def test_round_trip(self):
        pid = Pid.make(3, 7)
        advice = make_binding_advice(pid, 0xFFF1, 6)
        reply = Message.reply(ReplyCode.OK, **advice)
        pair, index, service = read_binding_advice(reply)
        assert pair == ContextPair(pid, 0xFFF1)
        assert index == 6
        assert service is None

    def test_generic_service_echoed(self):
        pid = Pid.make(3, 7)
        advice = make_binding_advice(pid, 0, 9,
                                     hint_service=int(ServiceId.STORAGE))
        reply = Message.reply(ReplyCode.OK, **advice)
        __, __, service = read_binding_advice(reply)
        assert service == int(ServiceId.STORAGE)

    def test_absent_advice_is_none(self):
        assert read_binding_advice(Message.reply(ReplyCode.OK)) is None
        partial = Message.reply(ReplyCode.OK, **{FIELD_BOUND_SERVER: 1})
        assert read_binding_advice(partial) is None


# ---------------------------------------------------------------------------
# NameCache mechanics (driven directly, no simulation).
# ---------------------------------------------------------------------------


def _drive(gen):
    """Drive a cache.route generator, answering Now with 0.0."""
    try:
        effect = next(gen)
        while True:
            if isinstance(effect, Now):
                effect = gen.send(0.0)
            else:
                raise AssertionError(f"unexpected effect {effect!r}")
    except StopIteration as stop:
        return stop.value


def _ok_reply(pid, context_id, index, service=None):
    return Message.reply(ReplyCode.OK, **make_binding_advice(
        pid, context_id, index, hint_service=service))


class TestNameCacheMechanics:
    def test_learn_then_route_hint_and_prefix(self):
        cache = NameCache()
        pid = Pid.make(2, 5)
        name = b"[home]a/b.txt"
        cache.learn(name, _ok_reply(pid, 0xFFF1, 6))
        # Exact name: served by the hint table.
        route = _drive(cache.route(name))
        assert route == CachedRoute(pid, 0xFFF1, 6, "hint")
        # Sibling never seen before: served by the learned prefix binding.
        route = _drive(cache.route(b"[home]other.txt"))
        assert route.source == "prefix"
        assert (route.dst, route.context_id, route.name_index) == (pid, 0xFFF1, 6)

    def test_multi_hop_advice_learns_hint_but_not_prefix(self):
        cache = NameCache()
        pid = Pid.make(2, 5)
        # bound_index 8 != rest_index 6: interpretation crossed more than
        # the prefix, so the prefix alone cannot be assumed to bind here.
        cache.learn(b"[home]a/b.txt", _ok_reply(pid, 3, 8))
        assert cache.hint_for(b"[home]a/b.txt") is not None
        assert cache.prefix_entry("home") is None

    def test_learns_nothing_from_errors_or_adviceless_replies(self):
        cache = NameCache()
        cache.learn(b"[home]x", Message.reply(ReplyCode.NOT_FOUND))
        cache.learn(b"[home]x", Message.reply(ReplyCode.OK))
        assert cache.hint_for(b"[home]x") is None
        assert cache.stats.lookups == 0

    def test_bypass_ops_and_unprefixed_names_not_routed(self):
        from repro.kernel.messages import RequestCode

        cache = NameCache()
        assert not cache.should_route(b"plain.txt", RequestCode.OPEN_FILE)
        assert not cache.should_route(b"[home]x",
                                      RequestCode.ADD_CONTEXT_NAME)
        assert not cache.should_route(b"[home]x",
                                      RequestCode.DELETE_CONTEXT_NAME)
        assert cache.should_route(b"[home]x", RequestCode.OPEN_FILE)

    def test_generic_binding_pid_ttl(self):
        cache = NameCache(getpid_ttl=5.0)
        pid = Pid.make(2, 5)
        cache.learn(b"[storage]f", _ok_reply(pid, 0, 9,
                                             service=int(ServiceId.STORAGE)),
                    now=0.0)
        assert cache.prefix_entry("storage") == GenericBinding(
            int(ServiceId.STORAGE), 0)
        # Within TTL: cached pid, no GetPid effect.
        route = _drive(cache.route(b"[storage]g"))
        assert route.source == "generic"
        assert route.dst == pid
        # Past TTL the cached pid is dropped and GetPid is re-issued.
        gen = cache.route(b"[storage]g")
        effect = next(gen)
        assert isinstance(effect, Now)
        effect = gen.send(100.0)
        from repro.kernel.ipc import GetPid

        assert isinstance(effect, GetPid)
        fresh = Pid.make(4, 9)
        with pytest.raises(StopIteration) as stop:
            gen.send(fresh)
        assert stop.value.value.dst == fresh
        assert cache.service_pid(int(ServiceId.STORAGE), now=100.0) == fresh

    def test_stale_reply_detection(self):
        cache = NameCache()
        for code in STALE_REPLY_CODES:
            assert cache.is_stale_reply(Message.reply(code))
        assert not cache.is_stale_reply(Message.reply(ReplyCode.OK))
        assert not cache.is_stale_reply(
            Message.reply(ReplyCode.NO_PERMISSION))

    def test_invalidate_route_drops_hint_and_guilty_prefix(self):
        cache = NameCache()
        pid = Pid.make(2, 5)
        name = b"[home]a.txt"
        cache.learn(name, _ok_reply(pid, 0xFFF1, 6))
        cache.learn(b"[home]b.txt", _ok_reply(pid, 0xFFF1, 6))
        route = _drive(cache.route(name))
        cache.invalidate_route(name, route,
                               int(ReplyCode.NONEXISTENT_PROCESS))
        # The hint, the prefix binding that produced it, and sibling hints
        # derived from the same binding are all gone.
        assert cache.hint_for(name) is None
        assert cache.hint_for(b"[home]b.txt") is None
        assert cache.prefix_entry("home") is None
        assert cache.stats.fallbacks == 1

    def test_invalidate_generic_route_drops_only_service_pid(self):
        cache = NameCache()
        pid = Pid.make(2, 5)
        cache.learn(b"[storage]f", _ok_reply(pid, 0, 9,
                                             service=int(ServiceId.STORAGE)),
                    now=0.0)
        route = _drive(cache.route(b"[storage]f"))
        assert route.source == "hint"
        # Second access of a *different* name goes through the generic
        # binding; invalidating that route keeps the prefix knowledge.
        route = _drive(cache.route(b"[storage]g"))
        assert route.source == "generic"
        cache.invalidate_route(b"[storage]g", route,
                               int(ReplyCode.NONEXISTENT_PROCESS))
        assert cache.prefix_entry("storage") is not None
        assert cache.service_pid(int(ServiceId.STORAGE), now=0.0) is None

    def test_invalidate_prefix_notice(self):
        cache = NameCache()
        pid = Pid.make(2, 5)
        cache.learn(b"[home]a.txt", _ok_reply(pid, 0xFFF1, 6))
        dropped = cache.invalidate_prefix(b"home")
        assert dropped == 2  # the prefix entry and the hint under it
        assert cache.prefix_entry("home") is None
        assert cache.hint_for(b"[home]a.txt") is None

    def test_note_pid_removed_drops_generic_bindings_only(self):
        cache = NameCache()
        pid = Pid.make(2, 5)
        cache.learn(b"[home]a.txt", _ok_reply(pid, 0xFFF1, 6))
        cache.learn(b"[storage]f", _ok_reply(pid, 0, 9,
                                             service=int(ServiceId.STORAGE)),
                    now=0.0)
        cache.note_pid_removed(pid)
        # The satellite-2 scope: dead *generic* bindings drop immediately;
        # fixed hints stay optimistic (recovery handles them).
        assert cache.service_pid(int(ServiceId.STORAGE), now=0.0) is None
        assert cache.hint_for(b"[home]a.txt") is not None

    def test_registry_counters(self):
        registry = MetricsRegistry()
        cache = NameCache(registry=registry)
        pid = Pid.make(2, 5)
        cache.learn(b"[home]a.txt", _ok_reply(pid, 0xFFF1, 6))
        _drive(cache.route(b"[home]a.txt"))
        _drive(cache.route(b"[nope]x"))
        cache.invalidate_prefix(b"home")
        assert registry.counter_value("namecache.hits", source="hint") == 1
        assert registry.counter_value("namecache.misses") == 1
        assert registry.counter_value("namecache.invalidations",
                                      reason="notice") == 2


# ---------------------------------------------------------------------------
# End-to-end: learning, timing, and proactive notices in a live system.
# ---------------------------------------------------------------------------


def _enable_cache(system):
    return system.workstation.enable_name_cache()


class TestNameCacheEndToEnd:
    def test_first_via_prefix_request_learns_the_binding(self):
        system = standard_system()

        def seed(session):
            yield from files.write_file(session, "[home]f.txt", b"x")

        system.run_client(seed(system.session()))
        cache = _enable_cache(system)

        def client(session):
            data = yield from files.read_file(session, "[home]f.txt")
            return data

        assert system.run_client(client(system.session())) == b"x"
        assert cache.prefix_entry("home") == ContextPair(
            system.fileserver.pid, int(WellKnownContext.HOME))
        hint = cache.hint_for("[home]f.txt")
        assert hint is not None and hint[0].server == system.fileserver.pid

    def test_warm_open_costs_the_same_as_direct_open(self):
        system = standard_system()

        def seed(session):
            yield from files.write_file(session, "[home]f.txt", b"x")

        system.run_client(seed(system.session()))
        _enable_cache(system)

        def timed(session, name):
            t0 = yield Now()
            stream = yield from session.open(name, "r")
            t1 = yield Now()
            yield from stream.close()
            return t1 - t0

        def client():
            cached = system.session()
            direct = system.session(system.home_context())
            __ = yield from timed(cached, "[home]f.txt")     # learn
            warm = yield from timed(cached, "[home]f.txt")
            base = yield from timed(direct, "f.txt")
            return warm, base

        warm, base = system.run_client(client())
        assert warm == pytest.approx(base, rel=0.01)

    def test_delete_prefix_notice_invalidates_proactively(self):
        system = standard_system()

        def seed(session):
            yield from files.write_file(session, "[tmp]t.txt", b"x")

        system.run_client(seed(system.session()))
        cache = _enable_cache(system)

        def client(session):
            yield from files.read_file(session, "[tmp]t.txt")
            assert cache.prefix_entry("tmp") is not None
            yield from session.delete_prefix("tmp")
            return cache.prefix_entry("tmp"), cache.hint_for("[tmp]t.txt")

        entry, hint = system.run_client(client(system.session()))
        assert entry is None and hint is None
        assert cache.stats.invalidations >= 1

    def test_add_prefix_replace_notice_invalidates(self):
        system = standard_system()

        def seed(session):
            yield from files.write_file(session, "[home]h.txt", b"x")

        system.run_client(seed(system.session()))
        cache = _enable_cache(system)

        def client(session):
            yield from files.read_file(session, "[home]h.txt")
            assert cache.prefix_entry("home") is not None
            # Rebind [home] to PUBLIC: attached caches hear about it.
            yield from session.add_prefix(
                "home", ContextPair(system.fileserver.pid,
                                    int(WellKnownContext.PUBLIC)),
                replace=True)
            return cache.prefix_entry("home"), cache.hint_for("[home]h.txt")

        entry, hint = system.run_client(client(system.session()))
        assert entry is None and hint is None

    def test_cache_off_by_default_no_stats_anywhere(self):
        system = standard_system()

        def seed(session):
            yield from files.write_file(session, "[home]f.txt", b"x")
            return (yield from files.read_file(session, "[home]f.txt"))

        assert system.run_client(seed(system.session())) == b"x"
        assert system.workstation.name_cache is None
