"""Unit + property tests for CSnames and the prefix syntax (paper Sec. 5.1, 5.8)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.names import (
    MAX_NAME_BYTES,
    BadName,
    as_name_bytes,
    as_text,
    has_prefix,
    is_final_component,
    join,
    next_component,
    parse_prefix,
    split_components,
    validate_component,
)


class TestCoercion:
    def test_str_becomes_utf8(self):
        assert as_name_bytes("naming.mss") == b"naming.mss"

    def test_bytes_pass_through(self):
        assert as_name_bytes(b"raw") == b"raw"

    def test_empty_name_is_legal(self):
        # "a sequence of zero or more bytes" (Sec. 5.1)
        assert as_name_bytes("") == b""

    def test_non_ascii_names_are_legal(self):
        assert as_name_bytes("ファイル") == "ファイル".encode("utf-8")

    def test_oversized_name_rejected(self):
        with pytest.raises(BadName, match="buffer"):
            as_name_bytes("x" * (MAX_NAME_BYTES + 1))

    def test_embedded_nul_rejected(self):
        with pytest.raises(BadName, match="NUL"):
            as_name_bytes(b"bad\x00name")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            as_name_bytes(42)  # type: ignore[arg-type]

    def test_as_text_replaces_garbage(self):
        assert as_text(b"\xff\xfe") != ""


class TestPrefixSyntax:
    def test_parse_prefix(self):
        prefix, rest = parse_prefix(b"[home]src/naming.mss")
        assert prefix == b"home"
        assert rest == 6
        assert b"[home]src/naming.mss"[rest:] == b"src/naming.mss"

    def test_parse_prefix_at_offset(self):
        name = b"xx[bin]cat"
        assert has_prefix(name, 2)
        prefix, rest = parse_prefix(name, 2)
        assert prefix == b"bin" and name[rest:] == b"cat"

    def test_prefix_only_name(self):
        prefix, rest = parse_prefix(b"[home]")
        assert prefix == b"home" and rest == 6

    def test_has_prefix(self):
        assert has_prefix(b"[p]x")
        assert not has_prefix(b"p]x")
        assert not has_prefix(b"")

    def test_unterminated_prefix_rejected(self):
        with pytest.raises(BadName, match="unterminated"):
            parse_prefix(b"[home/naming.mss")

    def test_empty_prefix_rejected(self):
        with pytest.raises(BadName, match="empty"):
            parse_prefix(b"[]x")

    def test_missing_prefix_rejected(self):
        with pytest.raises(BadName):
            parse_prefix(b"plain")

    @given(st.text(min_size=1, max_size=20,
                   alphabet=st.characters(min_codepoint=97, max_codepoint=122)),
           st.text(max_size=30,
                   alphabet=st.characters(min_codepoint=97, max_codepoint=122)))
    def test_prefix_roundtrip_property(self, prefix, rest):
        name = f"[{prefix}]{rest}".encode()
        parsed, index = parse_prefix(name)
        assert parsed == prefix.encode()
        assert name[index:] == rest.encode()


class TestComponents:
    def test_next_component_walks_left_to_right(self):
        name = b"a/bb/ccc"
        component, index = next_component(name, 0)
        assert component == b"a"
        component, index = next_component(name, index)
        assert component == b"bb"
        component, index = next_component(name, index)
        assert component == b"ccc"
        component, __ = next_component(name, index)
        assert component == b""

    def test_leading_and_double_separators_skipped(self):
        assert next_component(b"//a//b", 0) == (b"a", 3)
        assert split_components(b"//a//b//") == [b"a", b"b"]

    def test_split_components(self):
        assert split_components("users/mann/naming.mss") == [
            b"users", b"mann", b"naming.mss"]
        assert split_components("") == []
        assert split_components("solo") == [b"solo"]

    def test_split_with_start_index(self):
        assert split_components(b"[home]a/b", 6) == [b"a", b"b"]

    def test_is_final_component(self):
        name = b"a/b"
        __, index = next_component(name, 0)
        assert not is_final_component(name, index)
        __, index = next_component(name, index)
        assert is_final_component(name, index)

    def test_join(self):
        assert join("a", b"b", "c") == b"a/b/c"

    @given(st.lists(st.text(min_size=1, max_size=8,
                            alphabet=st.characters(min_codepoint=97,
                                                   max_codepoint=122)),
                    min_size=0, max_size=8))
    def test_join_split_roundtrip_property(self, parts):
        joined = join(*parts)
        assert split_components(joined) == [p.encode() for p in parts]


class TestComponentValidation:
    def test_plain_component_ok(self):
        assert validate_component(b"naming.mss") == b"naming.mss"

    def test_empty_component_rejected(self):
        with pytest.raises(BadName):
            validate_component(b"")

    def test_bracket_bytes_rejected(self):
        with pytest.raises(BadName):
            validate_component(b"a[b")
        with pytest.raises(BadName):
            validate_component(b"a]b")

    def test_separator_rejected(self):
        with pytest.raises(BadName):
            validate_component(b"a/b")
