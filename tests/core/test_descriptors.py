"""Tests for typed object description records (paper Sec. 5.5, Figure 3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.descriptors import (
    ContextDescription,
    DescriptorError,
    DescriptorTag,
    FileDescription,
    MailboxDescription,
    NameBindingDescription,
    ObjectDescription,
    PipeDescription,
    PrefixDescription,
    PrintJobDescription,
    ProcessDescription,
    TcpConnectionDescription,
    TerminalDescription,
    descriptor_class,
)

ALL_TYPES = [
    FileDescription, ContextDescription, ProcessDescription,
    TerminalDescription, TcpConnectionDescription, PrefixDescription,
    MailboxDescription, PrintJobDescription, PipeDescription,
    NameBindingDescription,
]


class TestEncoding:
    def test_tag_field_leads_the_record(self):
        record = FileDescription(name="naming.mss", size_bytes=100)
        encoded = record.encode()
        assert int.from_bytes(encoded[:2], "big") == int(DescriptorTag.FILE)

    def test_roundtrip_every_type(self):
        for cls in ALL_TYPES:
            record = cls(name="sample")
            decoded, consumed = ObjectDescription.decode(record.encode())
            assert type(decoded) is cls
            assert decoded == record
            assert consumed == len(record.encode())

    def test_full_file_record_roundtrip(self):
        record = FileDescription(name="naming.mss", size_bytes=12345,
                                 owner="cheriton", access=0o600,
                                 created=1.25, modified=2.5, block_size=512)
        decoded, __ = ObjectDescription.decode(record.encode())
        assert decoded == record

    def test_decode_dispatches_on_tag(self):
        terminal = TerminalDescription(name="vt1", terminal_id=1)
        decoded, __ = ObjectDescription.decode(terminal.encode())
        assert isinstance(decoded, TerminalDescription)

    def test_decode_all_concatenated_stream(self):
        records = [FileDescription(name=f"f{i}", size_bytes=i)
                   for i in range(5)]
        stream = b"".join(r.encode() for r in records)
        decoded = ObjectDescription.decode_all(stream)
        assert decoded == records

    def test_unknown_tag_rejected(self):
        with pytest.raises(DescriptorError, match="unknown"):
            ObjectDescription.decode(b"\xff\xff\x00\x00")

    def test_truncated_record_rejected(self):
        encoded = FileDescription(name="f").encode()
        with pytest.raises(DescriptorError, match="truncated"):
            ObjectDescription.decode(encoded[:-3])

    def test_field_overflow_rejected(self):
        record = FileDescription(name="f", access=1 << 20)  # > u16
        with pytest.raises(DescriptorError, match="does not fit"):
            record.encode()

    def test_descriptor_class_lookup(self):
        assert descriptor_class(DescriptorTag.PIPE) is PipeDescription
        with pytest.raises(DescriptorError):
            descriptor_class(999)

    @given(name=st.text(max_size=30), size=st.integers(0, 2**60),
           access=st.integers(0, 0xFFFF),
           created=st.floats(allow_nan=False, allow_infinity=False,
                             width=32))
    def test_file_record_roundtrip_property(self, name, size, access, created):
        record = FileDescription(name=name, size_bytes=size, access=access,
                                 created=float(created))
        decoded, __ = ObjectDescription.decode(record.encode())
        assert decoded == record


class TestModification:
    def test_mutable_fields_applied(self):
        current = FileDescription(name="f", owner="mann", access=0o644,
                                  size_bytes=10)
        replacement = FileDescription(name="f", owner="cheriton",
                                      access=0o600, size_bytes=9999)
        updated = current.apply_modification(replacement)
        assert updated.owner == "cheriton"
        assert updated.access == 0o600

    def test_immutable_fields_silently_ignored(self):
        # "Servers are free to ignore changes to any fields which it makes
        # no sense to change" (Sec. 5.5)
        current = FileDescription(name="f", size_bytes=10, created=1.0)
        replacement = FileDescription(name="f", size_bytes=9999, created=42.0)
        updated = current.apply_modification(replacement)
        assert updated.size_bytes == 10
        assert updated.created == 1.0

    def test_type_mismatch_rejected(self):
        with pytest.raises(DescriptorError, match="modification record"):
            FileDescription(name="f").apply_modification(
                PipeDescription(name="f"))

    def test_modification_does_not_mutate_original(self):
        current = FileDescription(name="f", owner="a")
        current.apply_modification(FileDescription(name="f", owner="b"))
        assert current.owner == "a"

    def test_print_job_state_is_mutable(self):
        job = PrintJobDescription(name="j", state="queued")
        updated = job.apply_modification(
            PrintJobDescription(name="j", state="cancelled"))
        assert updated.state == "cancelled"


class TestRegistry:
    def test_all_tags_registered(self):
        for cls in ALL_TYPES:
            assert descriptor_class(cls.TAG) is cls

    def test_duplicate_tag_rejected(self):
        with pytest.raises(DescriptorError, match="already registered"):
            class Clash(ObjectDescription):  # noqa: F811
                TAG = DescriptorTag.FILE
