"""Tests for contexts and context-id allocation (paper Sec. 5.2)."""

import pytest

from repro.core.context import (
    ORDINARY_CONTEXT_MAX,
    ORDINARY_CONTEXT_MIN,
    ContextIdAllocator,
    ContextPair,
    WellKnownContext,
)
from repro.kernel.pids import Pid


class TestContextPair:
    def test_pair_holds_server_and_id(self):
        pair = ContextPair(Pid.make(2, 7), 5)
        assert pair.server == Pid.make(2, 7)
        assert pair.context_id == 5

    def test_pairs_are_hashable_values(self):
        a = ContextPair(Pid.make(1, 1), 3)
        b = ContextPair(Pid.make(1, 1), 3)
        assert a == b and len({a, b}) == 1

    def test_out_of_range_context_id_rejected(self):
        with pytest.raises(ValueError):
            ContextPair(Pid.make(1, 1), 1 << 16)
        with pytest.raises(ValueError):
            ContextPair(Pid.make(1, 1), -1)

    def test_repr_shows_well_known_names(self):
        pair = ContextPair(Pid.make(1, 1), int(WellKnownContext.HOME))
        assert "HOME" in repr(pair)


class TestWellKnownContexts:
    def test_default_is_zero(self):
        # "a standard default value of 0" (Sec. 5.2)
        assert int(WellKnownContext.DEFAULT) == 0

    def test_well_known_ids_outside_ordinary_range(self):
        for context in WellKnownContext:
            if context is WellKnownContext.DEFAULT:
                continue
            assert context > ORDINARY_CONTEXT_MAX

    def test_well_known_ids_distinct(self):
        values = [int(c) for c in WellKnownContext]
        assert len(values) == len(set(values))


class TestContextIdAllocator:
    def test_allocates_ordinary_ids(self):
        allocator = ContextIdAllocator()
        ids = [allocator.allocate() for __ in range(100)]
        assert len(set(ids)) == 100
        assert all(ORDINARY_CONTEXT_MIN <= i <= ORDINARY_CONTEXT_MAX
                   for i in ids)

    def test_never_allocates_well_known_values(self):
        allocator = ContextIdAllocator(start=ORDINARY_CONTEXT_MAX - 2)
        ids = [allocator.allocate() for __ in range(10)]
        assert all(i <= ORDINARY_CONTEXT_MAX or i >= ORDINARY_CONTEXT_MIN
                   for i in ids)
        assert int(WellKnownContext.HOME) not in ids

    def test_wraps_around_the_ordinary_range(self):
        allocator = ContextIdAllocator(start=ORDINARY_CONTEXT_MAX)
        first = allocator.allocate()
        second = allocator.allocate()
        assert first == ORDINARY_CONTEXT_MAX
        assert second == ORDINARY_CONTEXT_MIN

    def test_released_id_not_soon_reused(self):
        allocator = ContextIdAllocator()
        first = allocator.allocate()
        allocator.release(first)
        assert first not in [allocator.allocate() for __ in range(50)]

    def test_is_live(self):
        allocator = ContextIdAllocator()
        context_id = allocator.allocate()
        assert allocator.is_live(context_id)
        allocator.release(context_id)
        assert not allocator.is_live(context_id)

    def test_bad_start_rejected(self):
        with pytest.raises(ValueError):
            ContextIdAllocator(start=0)
