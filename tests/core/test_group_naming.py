"""Tests for multicast name resolution (paper Sec. 7 future work / E10)."""

import pytest

from repro.core.context import ContextPair, WellKnownContext
from repro.core.group_naming import (
    group_context,
    group_csname_request,
    group_name_to_context,
    group_open,
)
from repro.core.resolver import NameError_
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay
from repro.kernel.messages import ReplyCode, RequestCode
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from tests.helpers import run_on

STORAGE_GROUP = group_context(1)


def group_system(members=3):
    """A context implemented transparently by a group of file servers."""
    domain = Domain()
    ws = setup_workstation(domain, "mann")
    handles = []
    for index in range(members):
        host = domain.create_host(f"vax{index}")
        server = VFileServer(user="mann", group_ids=(STORAGE_GROUP,))
        handles.append(start_server(host, server))
    standard_prefixes(ws, handles[0])
    return domain, ws, handles


class TestGroupResolution:
    def test_owner_of_the_name_answers(self):
        domain, ws, handles = group_system()
        # Place a distinct file on member 1 only.
        handles[1].server.store.make_path("users/mann/only-here.txt",
                                          directory=False)

        def client(session):
            yield Delay(0.05)
            reply = yield from group_open(
                session.env, STORAGE_GROUP, "users/mann/only-here.txt")
            return reply["server_pid"]

        owner = run_on(domain, ws.host, client(ws.session()))
        assert owner == handles[1].pid.value

    def test_group_name_to_context_subsumes_getpid(self):
        domain, ws, handles = group_system()
        handles[2].server.store.make_path("users/mann/special")

        def client(session):
            yield Delay(0.05)
            pair = yield from group_name_to_context(
                session.env, STORAGE_GROUP, "users/mann/special")
            # The pair is directly usable for ordinary operations:
            session.env.current = pair
            yield from files.write_file(session, "inside.txt", b"in")
            return pair

        pair = run_on(domain, ws.host, client(ws.session()))
        assert pair.server == handles[2].pid
        node = handles[2].server.store.resolve_path(
            "users/mann/special/inside.txt")
        assert node is not None

    def test_unknown_name_gets_no_server(self):
        domain, ws, handles = group_system()

        def client(session):
            yield Delay(0.05)
            reply = yield from group_csname_request(
                session.env, STORAGE_GROUP, RequestCode.QUERY_NAME,
                "users/mann/nowhere.txt")
            return reply.reply_code

        assert run_on(domain, ws.host,
                      client(ws.session())) is ReplyCode.NO_SERVER

    def test_ambiguous_name_yields_first_owner(self):
        """All members hold standard directories; exactly one reply wins,
        the rest are dropped as duplicates."""
        domain, ws, handles = group_system()

        def client(session):
            yield Delay(0.05)
            pair = yield from group_name_to_context(
                session.env, STORAGE_GROUP, "users/mann")
            return pair

        pair = run_on(domain, ws.host, client(ws.session()))
        assert pair.server in {h.pid for h in handles}
        assert domain.metrics.count("ipc.duplicate_replies") >= 1

    def test_nonmember_servers_never_see_group_requests(self):
        domain, ws, handles = group_system(members=2)
        outsider_host = domain.create_host("outsider")
        outsider = start_server(outsider_host, VFileServer(user="mann"))
        baseline = domain.metrics.count(
            f"net.delivered_to.{outsider_host.host_id}")

        def client(session):
            yield Delay(0.05)
            reply = yield from group_csname_request(
                session.env, STORAGE_GROUP, RequestCode.QUERY_NAME,
                "users/mann")
            return reply.ok

        assert run_on(domain, ws.host, client(ws.session()))
        delivered = domain.metrics.count(
            f"net.delivered_to.{outsider_host.host_id}") - baseline
        assert delivered == 0
