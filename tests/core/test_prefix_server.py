"""Tests for the context prefix server (paper Sec. 5.8, 6)."""

import pytest

from repro.core.context import ContextPair, WellKnownContext
from repro.core.descriptors import PrefixDescription
from repro.core.prefix_server import ContextPrefixServer, PrefixBinding
from repro.core.resolver import NameError_
from repro.kernel.domain import Domain
from repro.kernel.messages import ReplyCode
from repro.kernel.services import ServiceId
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, TimeServer, start_server
from repro.runtime import files
from tests.helpers import standard_system


class TestBindingTable:
    def test_define_and_lookup(self):
        server = ContextPrefixServer()
        pair = ContextPair.__new__(ContextPair)  # placeholder not needed
        server.define_prefix("home", ContextPair.__new__(ContextPair))
        assert server.binding("home") is not None

    def test_brackets_accepted_at_local_api(self):
        server = ContextPrefixServer()
        from repro.kernel.pids import Pid

        server.define_prefix("[proj]", ContextPair(Pid.make(1, 1), 0))
        assert server.binding("proj") is not None
        assert server.binding("[proj]") is not None

    def test_generic_binding_shape(self):
        server = ContextPrefixServer()
        server.define_generic_prefix("print", ServiceId.PRINT)
        binding = server.binding("print")
        assert binding is not None and binding.is_generic
        assert binding.generic_service == int(ServiceId.PRINT)

    def test_remove_prefix(self):
        server = ContextPrefixServer()
        server.define_generic_prefix("x", 1)
        assert server.remove_prefix("x")
        assert not server.remove_prefix("x")
        assert server.binding("x") is None

    def test_prefix_names_sorted(self):
        server = ContextPrefixServer()
        server.define_generic_prefix("zeta", 1)
        server.define_generic_prefix("alpha", 2)
        assert server.prefix_names() == [b"alpha", b"zeta"]

    def test_footprint_reports_size(self):
        server = ContextPrefixServer()
        server.define_generic_prefix("a", 1)
        footprint = server.footprint()
        assert footprint["bindings"] == 1
        assert footprint["table_bytes"] > 0


class TestRouting:
    def test_prefixed_open_reaches_the_right_server(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "[home]doc.txt", b"content")
            return (yield from files.read_file(session, "[home]doc.txt"))

        assert system.run_client(client(system.session())) == b"content"

    def test_undefined_prefix_not_found(self):
        system = standard_system()

        def client(session):
            try:
                yield from files.read_file(session, "[nosuch]x")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.NOT_FOUND

    def test_different_prefixes_reach_different_contexts(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "[home]a.txt", b"home-a")
            yield from files.write_file(session, "[tmp]a.txt", b"tmp-a")
            home = yield from files.read_file(session, "[home]a.txt")
            tmp = yield from files.read_file(session, "[tmp]a.txt")
            return home, tmp

        assert system.run_client(client(system.session())) == (b"home-a",
                                                               b"tmp-a")

    def test_per_user_tables_differ(self):
        """Two users' [home] deliberately resolve differently (Sec. 6)."""
        domain = Domain()
        ws_a = setup_workstation(domain, "mann")
        ws_b = setup_workstation(domain, "cheriton")
        fs_host = domain.create_host("vax")
        fs_a = start_server(fs_host, VFileServer(user="mann"))
        fs_b = start_server(fs_host, VFileServer(user="cheriton"))
        standard_prefixes(ws_a, fs_a)
        standard_prefixes(ws_b, fs_b)

        def client_a(session):
            yield from files.write_file(session, "[home]who.txt", b"mann")

        def client_b(session):
            yield from files.write_file(session, "[home]who.txt", b"cheriton")
            return (yield from files.read_file(session, "[home]who.txt"))

        from tests.helpers import run_on

        run_on(domain, ws_a.host, client_a(ws_a.session()), name="a")
        result = run_on(domain, ws_b.host, client_b(ws_b.session()), name="b")
        assert result == b"cheriton"
        # And mann's file is untouched on his server.
        node = fs_a.server.store.resolve_path("users/mann/who.txt")
        assert bytes(node.data) == b"mann"

    def test_generic_prefix_resolved_by_getpid_each_use(self):
        system = standard_system()
        domain = system.domain
        # [storage] is generic on ServiceId.STORAGE; the file server holds it.
        before = domain.metrics.count("services.getpid_broadcasts")

        def client(session):
            yield from files.write_file(session, "[storage]tmp/g.txt", b"g")
            return (yield from files.read_file(session, "[storage]tmp/g.txt"))

        assert system.run_client(client(system.session())) == b"g"
        # Each use performed a GetPid (broadcast, since the server is remote).
        assert domain.metrics.count("services.getpid_broadcasts") > before

    def test_generic_prefix_without_server_reports_no_server(self):
        system = standard_system()  # no printer server running

        def client(session):
            try:
                yield from files.read_file(session, "[print]queue")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.NO_SERVER

    def test_generic_prefix_tracks_server_restart(self):
        """The Sec. 6 motivation for generic bindings."""
        system = standard_system()
        domain = system.domain
        ts_host = domain.create_host("timehost")
        old = start_server(ts_host, TimeServer())
        session = system.session()

        def phase1(session):
            reply = yield from session.csname_request(
                0x0305, "[terminal]")  # unrelated warmup not needed; use query
            return reply

        # Use the [team]-style generic binding machinery against TIME by
        # defining a fresh generic prefix for it.
        system.workstation.prefix_server.define_generic_prefix(
            "clock", ServiceId.TIME)

        def ask(session):
            reply = yield from session.csname_request(0x0305, "[clock]")
            return reply.reply_code

        # TimeServer has no name space: expect ILLEGAL_REQUEST *from the
        # time server* -- proof the forward reached it.
        assert system.run_client(ask(session)) is ReplyCode.ILLEGAL_REQUEST

        ts_host.crash()
        ts_host.restart()
        start_server(ts_host, TimeServer())

        assert system.run_client(ask(session)) is ReplyCode.ILLEGAL_REQUEST


class TestPrefixManagementProtocol:
    def test_add_and_use_prefix_via_messages(self):
        system = standard_system()
        home = system.home_context()

        def client(session):
            pair = yield from session.name_to_context("[home]")
            yield from session.add_prefix("proj", pair)
            yield from files.write_file(session, "[proj]p.txt", b"p")
            return (yield from files.read_file(session, "[home]p.txt"))

        assert system.run_client(client(system.session())) == b"p"

    def test_add_existing_prefix_needs_replace(self):
        system = standard_system()

        def client(session):
            pair = session.current
            try:
                yield from session.add_prefix("home", pair)
            except NameError_ as err:
                code = err.code
            yield from session.add_prefix("home", pair, replace=True)
            return code

        assert system.run_client(
            client(system.session())) is ReplyCode.NAME_EXISTS

    def test_delete_prefix_via_messages(self):
        system = standard_system()

        def client(session):
            yield from session.delete_prefix("tmp")
            try:
                yield from files.read_file(session, "[tmp]x")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.NOT_FOUND

    def test_delete_unknown_prefix_fails(self):
        system = standard_system()

        def client(session):
            try:
                yield from session.delete_prefix("ghost")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.NOT_FOUND

    def test_list_prefixes_returns_typed_records(self):
        system = standard_system()

        def client(session):
            return (yield from session.list_prefixes())

        records = system.run_client(client(system.session()))
        assert all(isinstance(r, PrefixDescription) for r in records)
        names = {r.name for r in records}
        assert {"home", "bin", "tmp", "public", "root"} <= names
        generic = {r.name for r in records if r.generic}
        assert "print" in generic and "mail" in generic
        fixed = next(r for r in records if r.name == "home")
        assert fixed.server_pid == system.fileserver.pid.value
        assert fixed.context_id == int(WellKnownContext.HOME)


class RecordingCache:
    """A minimal attached cache: records invalidation notices."""

    def __init__(self):
        self.notices = []

    def invalidate_prefix(self, prefix, reason):
        self.notices.append((bytes(prefix), reason))


class TestRebindInvalidationSemantics:
    def test_rebind_via_messages_notifies_attached_caches(self):
        # A replace-rebind invalidates exactly like a delete does: anything
        # cached under the old binding is stale the instant the new one
        # lands.
        system = standard_system()
        cache = RecordingCache()
        system.workstation.prefix_server.attach_cache(cache)

        def client(session):
            pair = yield from session.name_to_context("[home]")
            yield from session.add_prefix("tmp", pair, replace=True)

        system.run_client(client(system.session()))
        assert (b"tmp", "prefix-notice") in cache.notices

    def test_fresh_add_does_not_notify(self):
        system = standard_system()
        cache = RecordingCache()
        system.workstation.prefix_server.attach_cache(cache)

        def client(session):
            pair = yield from session.name_to_context("[home]")
            yield from session.add_prefix("brand-new", pair)

        system.run_client(client(system.session()))
        assert cache.notices == []

    def test_failed_rebind_neither_notifies_nor_changes_the_binding(self):
        # Regression: the old code fired the invalidation notice *before*
        # validating the request, so a malformed replace (no target at
        # all) flushed caches that were still perfectly valid for the
        # binding it then failed to change.
        from repro.core.resolver import send_csname_request
        from repro.kernel.messages import RequestCode

        system = standard_system()
        prefix_server = system.workstation.prefix_server
        cache = RecordingCache()
        prefix_server.attach_cache(cache)
        before = prefix_server.binding("tmp")

        def client(session):
            reply = yield from send_csname_request(
                session.env, RequestCode.ADD_CONTEXT_NAME, "[tmp]",
                replace=True)
            return reply.reply_code

        code = system.run_client(client(system.session()))
        assert code is ReplyCode.BAD_ARGS
        assert cache.notices == []
        assert prefix_server.binding("tmp") is before
