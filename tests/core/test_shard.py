"""Tests for sharded replicated prefix serving (repro.core.shard)."""

import pytest

from repro.core.context import ContextPair, WellKnownContext
from repro.core.resolver import NameError_
from repro.core.shard import DEFAULT_VNODES, ShardCluster, ShardMap
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay
from repro.kernel.messages import ReplyCode
from repro.runtime import files
from repro.runtime.session import Session
from repro.servers import VFileServer, start_server
from tests.helpers import run_on

PAYLOAD = b"shard-payload"


# ---------------------------------------------------------------- the map


class TestShardMap:
    def map_of(self, n, vnodes=DEFAULT_VNODES):
        return ShardMap(version=1,
                        replicas=tuple((rid, 100 + rid) for rid in range(n)),
                        vnodes=vnodes)

    def test_owner_is_deterministic(self):
        # crc32, never the salted builtin hash: two maps built separately
        # must agree on every assignment.
        a, b = self.map_of(5), self.map_of(5)
        for index in range(500):
            prefix = b"p%d" % index
            assert a.owner_of(prefix) == b.owner_of(prefix)

    def test_ownership_spreads_over_replicas(self):
        shard_map = self.map_of(4, vnodes=64)
        counts = shard_map.assignment_counts(
            [b"p%d" % index for index in range(4000)])
        assert set(counts) == {0, 1, 2, 3}
        assert min(counts.values()) > 0
        assert max(counts.values()) / min(counts.values()) < 2.5

    def test_dropping_a_replica_moves_only_its_own_share(self):
        shard_map = self.map_of(4, vnodes=64)
        prefixes = [b"p%d" % index for index in range(4000)]
        dropped = shard_map.without(2)
        moved = [prefix for prefix in prefixes
                 if shard_map.owner_of(prefix) != dropped.owner_of(prefix)]
        # Exactly the prefixes replica 2 owned move, nothing else.
        assert all(shard_map.owner_of(prefix) == 2 for prefix in moved)
        assert 0 < len(moved) / len(prefixes) < 0.5

    def test_replicas_for_starts_at_the_owner(self):
        shard_map = self.map_of(3)
        for index in range(50):
            prefix = b"p%d" % index
            order = shard_map.replicas_for(prefix)
            assert order[0] == shard_map.owner_of(prefix)
            assert sorted(order) == [0, 1, 2]

    def test_membership_changes_bump_the_version(self):
        shard_map = self.map_of(3)
        assert shard_map.without(0).version == 2
        assert shard_map.with_replica(7, 999).version == 2
        assert shard_map.pid_of(1).value == 101
        assert shard_map.without(1).pid_of(1) is None

    def test_wire_codec_round_trips(self):
        shard_map = self.map_of(3, vnodes=32)
        assert ShardMap.decode(shard_map.encode()) == shard_map

    def test_empty_map_has_no_owners(self):
        empty = ShardMap(version=1, replicas=())
        with pytest.raises(ValueError):
            empty.owner_of(b"p")
        assert empty.replicas_for(b"p") == []


# ---------------------------------------------------------- cluster fixture


def sharded_system(n_replicas=3, lease_ttl=0.5, seed=3):
    domain = Domain(seed=seed)
    fs_host = domain.create_host("vax1")
    fileserver = VFileServer(user="mann")
    node = fileserver.store.make_path("data/f0.dat", directory=False)
    node.data[:] = PAYLOAD
    fs_handle = start_server(fs_host, fileserver)
    pair = ContextPair(fs_handle.pid, int(WellKnownContext.DEFAULT))
    hosts = domain.create_hosts(n_replicas, prefix="ns")
    cluster = ShardCluster(domain, hosts, lease_ttl=lease_ttl)
    cluster.seed_binding("data", pair)
    client_host = domain.create_host("client")
    return domain, cluster, pair, client_host, hosts


def session_for(domain, pair, server_pid, cache=None):
    return Session(current=pair, prefix_server=server_pid,
                   latency=domain.latency, cache=cache)


# --------------------------------------------------------- lease discipline


class TestLeaseDiscipline:
    def test_owner_always_serves(self):
        domain, cluster, pair, client_host, __ = sharded_system()
        owner_rid = cluster.map.owner_of(b"data")
        owner_pid = cluster.map.pid_of(owner_rid)
        session = session_for(domain, pair, owner_pid)

        def client(session):
            # Well past every lease: the owner needs no lease on its own
            # bindings.
            yield Delay(10 * cluster.lease_ttl)
            return (yield from files.read_file(session, "[data]data/f0.dat"))

        assert run_on(domain, client_host, client(session)) == PAYLOAD

    def test_nonowner_serves_within_lease(self):
        domain, cluster, pair, client_host, __ = sharded_system()
        owner_rid = cluster.map.owner_of(b"data")
        other = next(rid for rid in cluster.servers if rid != owner_rid)
        session = session_for(domain, pair, cluster.map.pid_of(other))

        def client(session):
            # seed_binding granted a lease from t=0; read inside it.
            return (yield from files.read_file(session, "[data]data/f0.dat"))

        assert run_on(domain, client_host, client(session)) == PAYLOAD

    def test_nonowner_refuses_after_lease_expiry(self):
        # The coherence rule: an expired lease is *refused* with RETRY,
        # never served.  A budget-0 client sees the refusal verbatim.
        domain, cluster, pair, client_host, __ = sharded_system()
        owner_rid = cluster.map.owner_of(b"data")
        other = next(rid for rid in cluster.servers if rid != owner_rid)
        session = session_for(domain, pair, cluster.map.pid_of(other))
        session.env.retry_budget = 0

        def client(session):
            yield Delay(10 * cluster.lease_ttl)
            try:
                yield from files.read_file(session, "[data]data/f0.dat")
            except NameError_ as err:
                return err.code

        assert run_on(domain, client_host,
                      client(session)) is ReplyCode.RETRY
        server = cluster.servers[other]
        assert server.lease_refusals >= 1
        assert server.expired_served == 0

    def test_refused_client_follows_the_owner_redirect(self):
        # With a shard resolver, the RETRY's owner_pid redirect makes the
        # refusal invisible: the retry lands at the authority.
        domain, cluster, pair, client_host, __ = sharded_system()
        owner_rid = cluster.map.owner_of(b"data")
        other = next(rid for rid in cluster.servers if rid != owner_rid)
        resolver = cluster.resolver()
        # Mis-aim the resolver's first attempt at the non-owner replica.
        resolver.map = cluster.map.with_replica(
            owner_rid, cluster.map.pid_of(other).value)
        session = session_for(domain, pair, cluster.primary_pid(),
                              cache=resolver)

        def client(session):
            yield Delay(10 * cluster.lease_ttl)
            return (yield from files.read_file(session, "[data]data/f0.dat"))

        assert run_on(domain, client_host, client(session)) == PAYLOAD
        assert resolver.redirects_followed >= 1

    def test_refusal_kicks_async_refresh(self):
        domain, cluster, pair, client_host, __ = sharded_system()
        owner_rid = cluster.map.owner_of(b"data")
        other = next(rid for rid in cluster.servers if rid != owner_rid)
        session = session_for(domain, pair, cluster.map.pid_of(other))
        session.env.retry_budget = 0

        def client(session):
            yield Delay(10 * cluster.lease_ttl)
            try:
                yield from files.read_file(session, "[data]data/f0.dat")
            except NameError_:
                pass
            # Give the background refresh time to round-trip the owner,
            # then the same non-owner serves under its fresh lease.
            yield Delay(0.2)
            return (yield from files.read_file(session, "[data]data/f0.dat"))

        assert run_on(domain, client_host, client(session)) == PAYLOAD
        assert cluster.servers[other].lease_refreshes >= 1


# ------------------------------------------------------- fan-out and rebinds


class TestBindingFanOut:
    def test_add_prefix_reaches_every_replica(self):
        domain, cluster, pair, client_host, __ = sharded_system()
        session = session_for(domain, pair, cluster.primary_pid())

        def client(session):
            yield from session.add_prefix("proj", pair)
            yield Delay(0.2)    # let the fan-out land

        run_on(domain, client_host, client(session))
        for server in cluster.servers.values():
            assert server.binding("proj") is not None
        # The non-owners learned it via SHARD_SYNC, not shared memory.
        owner_rid = cluster.map.owner_of(b"proj")
        synced = [server for rid, server in cluster.servers.items()
                  if rid != owner_rid]
        assert all(server.syncs_seen >= 1 for server in synced)

    def test_mutations_forward_to_the_owner(self):
        # ADD sent to a non-owner must land at the owner (Sec. 5.4
        # forwarding) and fan out from there.
        domain, cluster, pair, client_host, __ = sharded_system()
        owner_rid = cluster.map.owner_of(b"proj")
        other = next(rid for rid in cluster.servers if rid != owner_rid)
        session = session_for(domain, pair, cluster.map.pid_of(other))

        def client(session):
            yield from session.add_prefix("proj", pair)
            yield Delay(0.2)

        run_on(domain, client_host, client(session))
        assert cluster.servers[owner_rid].binding("proj") is not None

    def test_delete_prefix_invalidates_every_replica(self):
        domain, cluster, pair, client_host, __ = sharded_system()
        session = session_for(domain, pair, cluster.primary_pid())

        def client(session):
            yield from session.delete_prefix("data")
            yield Delay(0.2)

        run_on(domain, client_host, client(session))
        for server in cluster.servers.values():
            assert server.binding("data") is None


# ----------------------------------------------------------- the resolver


class TestShardResolver:
    def test_positive_cache_skips_the_replica_hop(self):
        domain, cluster, pair, client_host, __ = sharded_system()
        resolver = cluster.resolver()
        session = session_for(domain, pair, cluster.primary_pid(),
                              cache=resolver)

        def client(session):
            yield from files.read_file(session, "[data]data/f0.dat")
            return (yield from files.read_file(session, "[data]data/f0.dat"))

        assert run_on(domain, client_host, client(session)) == PAYLOAD
        assert resolver.stats.hits_by_source.get("shard", 0) >= 1

    def test_negative_cache_answers_hot_missing_names_locally(self):
        domain, cluster, pair, client_host, __ = sharded_system()
        resolver = cluster.resolver()
        session = session_for(domain, pair, cluster.primary_pid(),
                              cache=resolver)

        def client(session):
            codes = []
            for __ in range(3):
                try:
                    yield from files.read_file(session, "[ghost]x")
                except NameError_ as err:
                    codes.append(err.code)
            return codes

        codes = run_on(domain, client_host, client(session))
        assert codes == [ReplyCode.NOT_FOUND] * 3
        assert resolver.negative_stores == 1
        assert resolver.negative_hits == 2

    def test_negative_entry_expires(self):
        domain, cluster, pair, client_host, __ = sharded_system()
        resolver = cluster.resolver(negative_ttl=0.1)
        session = session_for(domain, pair, cluster.primary_pid(),
                              cache=resolver)

        def client(session):
            try:
                yield from files.read_file(session, "[ghost]x")
            except NameError_:
                pass
            yield Delay(0.2)
            try:
                yield from files.read_file(session, "[ghost]x")
            except NameError_:
                pass

        run_on(domain, client_host, client(session))
        assert resolver.negative_stores == 2
        assert resolver.negative_hits == 0

    def test_cache_accounting_invariant_holds(self):
        from repro.faults.chaos import check_cache_accounting

        domain, cluster, pair, client_host, __ = sharded_system()
        resolver = cluster.resolver()
        session = session_for(domain, pair, cluster.primary_pid(),
                              cache=resolver)

        def client(session):
            for __ in range(5):
                yield from files.read_file(session, "[data]data/f0.dat")
                yield Delay(0.3)

        run_on(domain, client_host, client(session))
        assert check_cache_accounting(resolver) == []


# ------------------------------------------------------ failover and rejoin


class TestFailoverAndRejoin:
    def test_crash_promotes_and_reads_keep_resolving(self):
        domain, cluster, pair, client_host, hosts = sharded_system(
            lease_ttl=0.5)
        owner_rid = cluster.map.owner_of(b"data")
        owner_host = cluster.servers[owner_rid].host
        resolver = cluster.resolver()
        session = session_for(domain, pair, cluster.primary_pid(),
                              cache=resolver)
        session.env.retry_budget = 4
        version_before = cluster.map.version

        def client(session):
            yield from files.read_file(session, "[data]data/f0.dat")
            yield Delay(1.0)    # outlive the client-side binding TTL
            return (yield from files.read_file(session, "[data]data/f0.dat"))

        domain.engine.schedule_at(0.5, owner_host.crash)
        assert run_on(domain, client_host, client(session)) == PAYLOAD
        assert cluster.promotions == 1
        assert cluster.map.version == version_before + 1
        assert owner_rid not in cluster.servers
        # The resolver caught up over the wire, not via shared memory.
        assert resolver.map.version == cluster.map.version

    def test_restart_rejoins_with_a_pulled_table(self):
        domain, cluster, pair, client_host, hosts = sharded_system()
        owner_rid = cluster.map.owner_of(b"data")
        owner_host = cluster.servers[owner_rid].host

        domain.engine.schedule_at(0.5, owner_host.crash)
        domain.engine.schedule_at(1.0, owner_host.restart)
        domain.run()
        domain.check_healthy()

        assert cluster.promotions == 1
        assert cluster.rejoins == 1
        rejoined = cluster.servers[owner_rid]
        # The table came back over SHARD_PULL, including the seeded binding.
        assert rejoined.binding("data") is not None
        assert rejoined.shard_map.version == cluster.map.version
        assert cluster.map.pid_of(owner_rid) == rejoined.pid


# ------------------------------------------- negative-cache reconciliation


class TestNegativeCacheInvalidation:
    """A create must kill cached NOT_FOUNDs for names under its prefix.

    ADD_CONTEXT_NAME bypasses the resolver cache on the way out, so
    without ``note_mutation`` a client that just bound ``[extra]`` would
    keep answering NOT_FOUND for ``[extra]...`` names from its own
    negative cache until the TTL lapsed -- self-inflicted staleness the
    coherence auditor classifies as a stale negative entry.
    """

    def test_create_kills_negative_entries_under_the_prefix(self):
        domain, cluster, pair, client_host, __ = sharded_system()
        # Negative TTL far longer than the test: only invalidation (never
        # expiry) can explain the post-ADD read succeeding.
        resolver = cluster.resolver(negative_ttl=30.0)
        session = session_for(domain, pair, cluster.primary_pid(),
                              cache=resolver)
        outcome = {}

        def client(session):
            for attempt in ("first", "second"):
                try:
                    yield from files.read_file(session, "[extra]data/f0.dat")
                except NameError_:
                    outcome[attempt] = "not-found"
                else:
                    outcome[attempt] = "ok"
            outcome["negcache_len"] = resolver.footprint()["negative"]
            yield from session.add_prefix("extra", pair)
            outcome["negcache_after_add"] = resolver.footprint()["negative"]
            outcome["after_add"] = (
                yield from files.read_file(session, "[extra]data/f0.dat"))

        run_on(domain, client_host, client(session))
        # The unbound prefix NOT_FOUND was negative-cached and the repeat
        # was answered locally...
        assert outcome["first"] == "not-found"
        assert outcome["second"] == "not-found"
        assert outcome["negcache_len"] == 1
        assert resolver.negative_hits == 1
        # ...and the ADD reconciled it: entry gone, read serves, well
        # inside the 30s negative TTL.
        assert outcome["negcache_after_add"] == 0
        assert outcome["after_add"] == PAYLOAD

    def test_delete_under_a_different_prefix_leaves_negatives_alone(self):
        domain, cluster, pair, client_host, __ = sharded_system()
        resolver = cluster.resolver(negative_ttl=30.0)
        session = session_for(domain, pair, cluster.primary_pid(),
                              cache=resolver)
        held = {}

        def client(session):
            try:
                yield from files.read_file(session, "[extra]data/f0.dat")
            except NameError_:
                pass
            # An unrelated mutation must not disturb [extra]'s entry.
            yield from session.add_prefix("other", pair)
            held["negcache_len"] = resolver.footprint()["negative"]

        run_on(domain, client_host, client(session))
        assert held["negcache_len"] == 1
