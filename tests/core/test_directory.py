"""Unit tests for context directories, including pattern matching (Sec. 5.6)."""

import pytest

from repro.core.descriptors import FileDescription, ObjectDescription
from repro.core.directory import ContextDirectoryInstance, encode_directory
from repro.kernel.messages import ReplyCode
from repro.kernel.pids import Pid
from repro.runtime import files
from tests.helpers import standard_system

OWNER = Pid.make(1, 1)


def drive(gen):
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("unexpected effect from directory instance")


class _StubServer:
    """Just enough server for a ContextDirectoryInstance."""

    def __init__(self):
        self.modified = []

    def modify_record(self, context_ref, record):
        self.modified.append((context_ref, record))
        return ReplyCode.OK


class TestEncodeDirectory:
    def test_image_is_concatenated_records(self):
        records = [FileDescription(name=f"f{i}") for i in range(3)]
        image = encode_directory(records)
        assert ObjectDescription.decode_all(image) == records

    def test_empty_context_empty_image(self):
        assert encode_directory([]) == b""


class TestDirectoryInstance:
    def test_reads_serve_the_snapshot(self):
        records = [FileDescription(name="a", size_bytes=1),
                   FileDescription(name="b", size_bytes=2)]
        instance = ContextDirectoryInstance(OWNER, _StubServer(), "ctx",
                                            records)
        code, data = drive(instance.read_block(0))
        assert code is ReplyCode.OK
        assert ObjectDescription.decode_all(data)[:2] == records
        assert instance.record_count == 2

    def test_record_write_invokes_modify(self):
        server = _StubServer()
        instance = ContextDirectoryInstance(OWNER, server, "ctx", [])
        record = FileDescription(name="t", owner="x")
        code, written = drive(instance.write_block(0, record.encode()))
        assert code is ReplyCode.OK
        assert written == len(record.encode())
        assert server.modified == [("ctx", record)]

    def test_garbage_write_rejected(self):
        instance = ContextDirectoryInstance(OWNER, _StubServer(), "ctx", [])
        code, __ = drive(instance.write_block(0, b"\xff\xff\x00"))
        assert code is ReplyCode.BAD_ARGS

    def test_partial_record_write_rejected(self):
        record = FileDescription(name="t").encode()
        instance = ContextDirectoryInstance(OWNER, _StubServer(), "ctx", [])
        code, __ = drive(instance.write_block(0, record + b"extra"))
        assert code is ReplyCode.BAD_ARGS

    def test_query_reports_entry_count(self):
        records = [FileDescription(name=f"f{i}") for i in range(5)]
        instance = ContextDirectoryInstance(OWNER, _StubServer(), "ctx",
                                            records)
        assert instance.query_fields()["entry_count"] == 5


class TestPatternMatching:
    """The Sec. 5.6 extension: server-side glob filtering."""

    def build(self):
        system = standard_system()

        def seed(session):
            yield from session.mkdir("src")
            for name in ("main.py", "util.py", "notes.txt", "Makefile",
                         "test_main.py"):
                yield from session.create(f"src/{name}")

        system.run_client(seed(system.session()), name="seed")
        return system

    def test_glob_filters_records(self):
        system = self.build()

        def client(session):
            return (yield from session.list_directory("src",
                                                      pattern="*.py"))

        records = system.run_client(client(system.session()))
        assert [r.name for r in records] == ["main.py", "test_main.py",
                                             "util.py"]

    def test_question_mark_and_exact_patterns(self):
        system = self.build()

        def client(session):
            single = yield from session.list_directory("src",
                                                       pattern="Makefile")
            question = yield from session.list_directory("src",
                                                         pattern="?til.py")
            return single, question

        single, question = system.run_client(client(system.session()))
        assert [r.name for r in single] == ["Makefile"]
        assert [r.name for r in question] == ["util.py"]

    def test_no_match_yields_empty_directory(self):
        system = self.build()

        def client(session):
            return (yield from session.list_directory("src",
                                                      pattern="*.rs"))

        assert system.run_client(client(system.session())) == []

    def test_pattern_reduces_bytes_on_the_wire(self):
        """The point of the extension: less collation and transmission."""
        system = self.build()
        domain = system.domain

        def client(session):
            before = domain.metrics.count("net.bytes")
            yield from session.list_directory("src")
            middle = domain.metrics.count("net.bytes")
            yield from session.list_directory("src", pattern="Makefile")
            after = domain.metrics.count("net.bytes")
            return middle - before, after - middle

        unfiltered, filtered = system.run_client(client(system.session()))
        assert filtered < unfiltered

    def test_pattern_works_on_prefix_table_too(self):
        """The extension lands in the base class: every CSNH server has it."""
        system = standard_system()

        def client(session):
            from repro.core.query import read_prefix_records

            # list_prefixes has no pattern parameter; go through the env
            # helper's machinery by filtering at the [home]-style server
            # instead -- the prefix server's own directory also honours the
            # field when sent directly.
            from repro.core.context import WellKnownContext
            from repro.core.directory import read_directory_records
            from repro.core.protocol import make_csname_request
            from repro.kernel.ipc import Send
            from repro.kernel.messages import RequestCode
            from repro.kernel.pids import Pid
            from repro.vio.client import release_instance

            request = make_csname_request(
                RequestCode.OPEN_DIRECTORY, b"",
                int(WellKnownContext.DEFAULT), pattern="t*")
            reply = yield Send(session.prefix_server, request)
            assert reply.ok
            server = Pid(int(reply["server_pid"]))
            instance = int(reply["instance"])
            records = yield from read_directory_records(server, instance)
            yield from release_instance(server, instance)
            return [r.name for r in records]

        names = system.run_client(client(system.session()))
        assert names == ["tcp", "team", "terminal", "tmp"]
