"""Protocol-level properties of CSNH servers (paper Sec. 5.3-5.4).

The load-bearing one: "a CSNH server can perform some processing on any
CSname request, even if it does not understand the operation code" --
intermediaries forward operations they have never heard of, and only the
server that owns the name decides whether the operation exists.
"""

import pytest

from repro.core.context import ContextPair, WellKnownContext
from repro.core.csnh import ContextTable
from repro.core.protocol import make_csname_request, register_csname_request
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, Send
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from tests.helpers import run_on, standard_system

#: A CSname operation invented *after* every server in this test was built.
FUTURE_OP = register_csname_request(0x0999)


class TestForwardingUnknownOps:
    def test_prefix_server_forwards_an_op_it_does_not_know(self):
        """The prefix server has no handler for FUTURE_OP, yet routes it."""
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "[home]target.txt", b"x")
            reply = yield from session.csname_request(FUTURE_OP,
                                                      "[home]target.txt")
            return reply.reply_code

        # The request crossed the prefix server and reached the file
        # server, which owns the name but not the operation:
        assert system.run_client(
            client(system.session())) is ReplyCode.ILLEGAL_REQUEST

    def test_file_server_forwards_unknown_op_across_links(self):
        """Even a chain of intermediaries needs no knowledge of the op."""
        domain = Domain()
        ws = setup_workstation(domain, "mann")
        fs_a = start_server(domain.create_host("vax1"),
                            VFileServer(user="mann"))
        fs_b = start_server(domain.create_host("vax2"),
                            VFileServer(user="mann"))
        standard_prefixes(ws, fs_a)
        fs_a.server.store.link_remote(
            fs_a.server.home, b"far",
            ContextPair(fs_b.pid, int(WellKnownContext.HOME)))

        def client(session):
            reply = yield from session.csname_request(FUTURE_OP,
                                                      "[home]far/deeper")
            return reply.reply_code

        # NOT_FOUND from fs_b: it interpreted the name (no 'deeper' there)
        # before ever caring about the op code -- name first, op second,
        # exactly Sec. 5.4's ordering.
        assert run_on(domain, ws.host,
                      client(ws.session())) is ReplyCode.NOT_FOUND

    def test_name_mapping_precedes_op_dispatch(self):
        """A bad name beats an unknown op: mapping happens first."""
        system = standard_system()

        def client(session):
            reply = yield from session.csname_request(FUTURE_OP,
                                                      "[ghost]x")
            return reply.reply_code

        assert system.run_client(
            client(system.session())) is ReplyCode.NOT_FOUND


class TestStandardHeaderDiscipline:
    def test_malformed_csname_request_rejected_cleanly(self):
        """A CSname-coded message without the header fields gets BAD_ARGS,
        not a server crash."""
        system = standard_system()

        def client(session):
            broken = Message.request(RequestCode.QUERY_NAME)  # no header
            reply = yield Send(system.fileserver.pid, broken)
            return reply.reply_code

        assert system.run_client(
            client(system.session())) is ReplyCode.BAD_ARGS

    def test_interpretation_resumes_at_the_name_index(self):
        """A pre-advanced name index skips the consumed part -- what a
        forwarding server relies on."""
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "sub.txt", b"z")
            # Craft a request whose index already points past a bogus
            # prefix region of the name bytes.
            name = b"IGNORED/sub.txt"
            request = make_csname_request(
                RequestCode.OPEN_FILE, name,
                int(WellKnownContext.HOME),
                name_index=len(b"IGNORED/"), mode="r")
            reply = yield Send(system.fileserver.pid, request)
            return reply.reply_code

        assert system.run_client(client(system.session())) is ReplyCode.OK

    def test_stale_context_id_rejected(self):
        system = standard_system()

        def client(session):
            request = make_csname_request(RequestCode.OPEN_FILE, "x",
                                          0x7ABC, mode="r")
            reply = yield Send(system.fileserver.pid, request)
            return reply.reply_code

        assert system.run_client(
            client(system.session())) is ReplyCode.INVALID_CONTEXT

    def test_fabricated_context_ids_are_stable(self):
        """NAME_TO_CONTEXT twice for the same directory yields the same id
        (ordinary ids are per-ref, not per-request)."""
        system = standard_system()

        def client(session):
            yield from session.mkdir("stable")
            first = yield from session.name_to_context("stable")
            second = yield from session.name_to_context("stable")
            return first, second

        first, second = system.run_client(client(system.session()))
        assert first == second


class TestContextTable:
    def test_well_known_and_ordinary_coexist(self):
        table = ContextTable()
        root = object()
        table.register_well_known(0, root)
        other = object()
        ordinary = table.id_for(other)
        assert table.resolve(0) is root
        assert table.resolve(ordinary) is other
        assert ordinary != 0

    def test_id_for_is_idempotent(self):
        table = ContextTable()
        ref = object()
        assert table.id_for(ref) == table.id_for(ref)

    def test_drop_ref_invalidates(self):
        table = ContextTable()
        ref = object()
        context_id = table.id_for(ref)
        table.drop_ref(ref)
        assert table.resolve(context_id) is None
        # A new ref gets a different id (time-before-reuse).
        assert table.id_for(object()) != context_id
