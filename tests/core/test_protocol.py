"""Tests for the standard CSname request format (paper Sec. 5.3)."""

import pytest

from repro.core.names import MAX_NAME_BYTES
from repro.core.protocol import (
    CSNameHeader,
    csname_request_codes,
    is_csname_request,
    make_csname_request,
    read_csname_header,
    register_csname_request,
    rewrite_for_forward,
)
from repro.kernel.messages import Message, RequestCode


class TestMakeRequest:
    def test_standard_fields_present(self):
        message = make_csname_request(RequestCode.OPEN_FILE,
                                      "users/mann/naming.mss", 3, mode="r")
        assert message.fields["context_id"] == 3
        assert message.fields["name_index"] == 0
        assert message.fields["name_length"] == len(b"users/mann/naming.mss")
        assert message.fields["mode"] == "r"
        assert message.segment == b"users/mann/naming.mss"

    def test_name_ships_in_the_fixed_buffer(self):
        # The fixed 256-byte buffer is what remote Open timing rests on.
        message = make_csname_request(RequestCode.OPEN_FILE, "short", 0)
        assert message.segment_buffer == MAX_NAME_BYTES
        assert message.segment_wire_bytes == MAX_NAME_BYTES

    def test_variant_fields_cannot_clash_with_header(self):
        with pytest.raises(ValueError, match="clash"):
            make_csname_request(RequestCode.OPEN_FILE, "x", 0, name_length=9)

    def test_bad_name_index_rejected(self):
        with pytest.raises(ValueError):
            make_csname_request(RequestCode.OPEN_FILE, "abc", 0, name_index=9)

    def test_empty_name_is_legal(self):
        message = make_csname_request(RequestCode.OPEN_DIRECTORY, "", 0)
        assert message.fields["name_length"] == 0


class TestHeaderRead:
    def test_roundtrip(self):
        message = make_csname_request(RequestCode.QUERY_NAME, "a/b", 7,
                                      name_index=2)
        header = read_csname_header(message)
        assert header == CSNameHeader(name=b"a/b", name_index=2, context_id=7)
        assert header.remaining == b"b"

    def test_missing_segment_rejected(self):
        message = Message.request(RequestCode.QUERY_NAME, context_id=0,
                                  name_index=0, name_length=0)
        with pytest.raises(ValueError):
            read_csname_header(message)

    def test_length_field_bounds_the_name(self):
        # A stale longer buffer must not leak past name_length.
        message = make_csname_request(RequestCode.QUERY_NAME, "abcdef", 0)
        message.fields["name_length"] = 3
        assert read_csname_header(message).name == b"abc"


class TestForwardRewrite:
    def test_rewrites_only_the_standard_fields(self):
        message = make_csname_request(RequestCode.OPEN_FILE, "[home]x/y", 0,
                                      mode="w")
        rewritten = rewrite_for_forward(message, context_id=0xFFF1,
                                        name_index=6)
        assert rewritten.fields["context_id"] == 0xFFF1
        assert rewritten.fields["name_index"] == 6
        assert rewritten.fields["mode"] == "w"          # variant untouched
        assert rewritten.code == message.code
        assert rewritten.segment == message.segment

    def test_original_message_unmodified(self):
        message = make_csname_request(RequestCode.OPEN_FILE, "x", 5)
        rewrite_for_forward(message, 9, 1)
        assert message.fields["context_id"] == 5
        assert message.fields["name_index"] == 0


class TestCodeRegistry:
    def test_standard_codes_are_csname_requests(self):
        for code in (RequestCode.OPEN_FILE, RequestCode.QUERY_NAME,
                     RequestCode.NAME_TO_CONTEXT, RequestCode.DELETE_NAME):
            assert is_csname_request(Message.request(code))

    def test_instance_ops_are_not(self):
        assert not is_csname_request(Message.request(RequestCode.READ_INSTANCE))
        assert not is_csname_request(Message.request(RequestCode.GET_TIME))

    def test_servers_can_register_new_csname_codes(self):
        # "there is no limit to the number of request message types that
        # may contain CSnames" (Sec. 5.7)
        code = register_csname_request(0x7777)
        assert code == 0x7777
        assert is_csname_request(Message.request(0x7777))
        assert 0x7777 in csname_request_codes()

    def test_mail_codes_registered_on_import(self):
        import repro.servers.mailserver  # noqa: F401

        assert is_csname_request(Message.request(RequestCode.MAIL_DELIVER))
        assert is_csname_request(Message.request(RequestCode.MAIL_CHECK))
