"""Tests for inverse name mapping and its documented failure modes (Sec. 6)."""

import pytest

from repro.core.context import ContextPair, WellKnownContext
from repro.core.inverse import (
    InverseStatus,
    absolute_name,
    context_to_name,
    find_prefix_for,
    instance_to_name,
)
from repro.runtime import files
from tests.helpers import standard_system


class TestFindPrefixFor:
    def test_finds_matching_fixed_prefix(self):
        system = standard_system()
        target = ContextPair(system.fileserver.pid,
                             int(WellKnownContext.HOME))

        def client(session):
            return (yield from find_prefix_for(session.env, target))

        assert system.run_client(client(system.session())) == b"home"

    def test_no_match_returns_none(self):
        system = standard_system()
        from repro.kernel.pids import Pid

        target = ContextPair(Pid.make(42, 42), 0)

        def client(session):
            return (yield from find_prefix_for(session.env, target))

        assert system.run_client(client(system.session())) is None

    def test_generic_bindings_are_skipped(self):
        system = standard_system()
        # [print] is generic; even if a print server existed, generic
        # bindings cannot be matched without re-resolution.
        target = ContextPair(system.fileserver.pid, 0)

        def client(session):
            prefix = yield from find_prefix_for(session.env, target)
            return prefix

        assert system.run_client(client(system.session())) == b"root"


class TestAbsoluteName:
    def test_exact_when_prefix_names_the_server_root(self):
        system = standard_system()

        def client(session):
            yield from session.mkdir("proj")
            pair = yield from session.name_to_context("proj")
            result = yield from absolute_name(session.env, pair.server,
                                              pair.context_id)
            return result

        result = system.run_client(client(system.session()))
        assert result.status is InverseStatus.EXACT
        assert result.name == b"[root]users/mann/proj"
        assert "many-to-one" in result.caveat

    def test_server_relative_when_no_prefix_matches(self):
        system = standard_system()
        # Remove the [root] prefix so the server root cannot be named.
        system.workstation.prefix_server.remove_prefix("root")

        def client(session):
            result = yield from absolute_name(
                session.env, session.current.server,
                session.current.context_id)
            return result

        result = system.run_client(client(system.session()))
        assert result.status is InverseStatus.SERVER_RELATIVE
        assert result.name == b"users/mann"
        assert "may not be the one the user originally typed" in result.caveat

    def test_no_mapping_for_deleted_open_file(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "gone.txt", b"x")
            stream = yield from session.open("gone.txt", "r")
            yield from session.remove("gone.txt")
            result = yield from absolute_name(
                session.env, stream.server, 0, instance_id=stream.instance)
            return result

        result = system.run_client(client(system.session()))
        assert result.status is InverseStatus.NO_MAPPING
        assert result.name is None
        assert "no guarantee" in result.caveat

    def test_inverse_may_not_be_the_name_used(self):
        """Many-to-one: resolution via one name, inverse produces another."""
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "[tmp]shared.txt", b"x")
            # Open via the [tmp] prefix...
            stream = yield from session.open("[tmp]shared.txt", "r")
            name = yield from instance_to_name(stream.server, stream.instance)
            return name

        # ...but the server's inverse is the root-relative path, which is
        # NOT the "[tmp]shared.txt" the client typed.
        assert system.run_client(
            client(system.session())) == b"tmp/shared.txt"

    def test_context_to_name_for_unknown_context(self):
        system = standard_system()

        def client(session):
            return (yield from context_to_name(session.current.server,
                                               0x7777))

        assert system.run_client(client(system.session())) is None
