"""Unit tests for the semantic model itself (paper Sec. 7, built)."""

import pytest

from repro.core.context import ContextPair
from repro.core.semantics import (
    AbstractNamingSystem,
    AbstractObject,
    Denotation,
    Undefined,
)
from repro.kernel.pids import Pid

A = ContextPair(Pid.make(1, 1), 0)
B = ContextPair(Pid.make(2, 1), 0)
SUB = ContextPair(Pid.make(1, 1), 5)

FILE1 = AbstractObject("file", 101)
FILE2 = AbstractObject("file", 102)


@pytest.fixture
def system():
    model = AbstractNamingSystem()
    model.define_context(A, {b"doc.txt": FILE1, b"sub": SUB, b"other": B})
    model.define_context(SUB, {b"inner.txt": FILE2})
    model.define_context(B, {b"remote.txt": FILE2, b"back": A})
    return model


class TestInterpretation:
    def test_object_denotation(self, system):
        meaning = system.interpret(A, b"doc.txt")
        assert meaning == Denotation(FILE1)
        assert not meaning.is_context

    def test_context_denotation(self, system):
        meaning = system.interpret(A, b"sub")
        assert meaning == Denotation(SUB)
        assert meaning.is_context

    def test_empty_name_denotes_the_context(self, system):
        assert system.interpret(A, b"") == Denotation(A)

    def test_same_server_descent(self, system):
        assert system.interpret(A, b"sub/inner.txt") == Denotation(FILE2)

    def test_cross_server_descent_is_semantically_invisible(self, system):
        # Remote hop behaves exactly like a local one -- forwarding is an
        # operational device, not a semantic one.
        assert system.interpret(A, b"other/remote.txt") == Denotation(FILE2)

    def test_round_trip_through_two_servers(self, system):
        assert system.interpret(A, b"other/back/doc.txt") == Denotation(FILE1)

    def test_unbound_component_undefined(self, system):
        meaning = system.interpret(A, b"ghost")
        assert isinstance(meaning, Undefined)

    def test_object_mid_name_undefined(self, system):
        meaning = system.interpret(A, b"doc.txt/deeper")
        assert isinstance(meaning, Undefined)
        assert "continues" in meaning.reason

    def test_unknown_context_undefined(self, system):
        unknown = ContextPair(Pid.make(9, 9), 0)
        assert isinstance(system.interpret(unknown, b"x"), Undefined)

    def test_cycles_are_undefined_not_divergent(self, system):
        system.bind(A, b"loop", B)
        system.bind(B, b"loop", A)
        meaning = system.interpret(A, b"loop/" * 200 + b"x")
        assert isinstance(meaning, Undefined)


class TestUserNames:
    def test_prefixed_name(self, system):
        prefix_ctx = ContextPair(Pid.make(3, 1), 0)
        system.define_context(prefix_ctx, {b"home": A})
        meaning = system.interpret_user_name(prefix_ctx, b"[home]doc.txt")
        assert meaning == Denotation(FILE1)

    def test_two_users_same_string_different_denotation(self, system):
        """Per-user prefix servers, formally (Sec. 6)."""
        mann = ContextPair(Pid.make(3, 1), 0)
        cheriton = ContextPair(Pid.make(4, 1), 0)
        system.define_context(mann, {b"home": A})
        system.define_context(cheriton, {b"home": B})
        at_mann = system.interpret_user_name(mann, b"[home]")
        at_cheriton = system.interpret_user_name(cheriton, b"[home]")
        assert at_mann != at_cheriton

    def test_undefined_prefix(self, system):
        prefix_ctx = ContextPair(Pid.make(3, 1), 0)
        system.define_context(prefix_ctx, {})
        meaning = system.interpret_user_name(prefix_ctx, b"[nope]x")
        assert isinstance(meaning, Undefined)

    def test_unbracketed_name_is_not_a_user_name(self, system):
        prefix_ctx = ContextPair(Pid.make(3, 1), 0)
        system.define_context(prefix_ctx, {b"home": A})
        meaning = system.interpret_user_name(prefix_ctx, b"plain")
        assert isinstance(meaning, Undefined)


class TestInverse:
    def test_names_of_is_set_valued(self, system):
        system.bind(A, b"alias.txt", FILE1)
        names = system.names_of(FILE1)
        assert set(names) >= {b"doc.txt", b"alias.txt",
                              b"other/back/doc.txt"}

    def test_unnamed_object_has_no_names(self, system):
        assert system.names_of(AbstractObject("file", 999)) == []

    def test_objects_enumeration(self, system):
        assert system.objects() == {FILE1, FILE2}
