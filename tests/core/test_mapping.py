"""Tests for the name mapping procedure (paper Sec. 5.4)."""

import pytest

from repro.core.context import ContextPair
from repro.core.mapping import (
    ForwardName,
    Leaf,
    MappingFault,
    RemoteLink,
    ResolvedObject,
    ResolvedParent,
    SubContext,
    map_name,
)
from repro.kernel.messages import ReplyCode
from repro.kernel.pids import Pid


class DictSpace:
    """A toy hierarchical name space: nested dicts, leaves are strings,
    RemoteLink values are cross-server pointers."""

    def __init__(self, tree, contexts=None):
        self.tree = tree
        self.contexts = contexts or {0: tree}

    def root(self, context_id):
        return self.contexts.get(context_id)

    def lookup(self, context_ref, component):
        if not isinstance(context_ref, dict):
            return None
        entry = context_ref.get(component)
        if entry is None:
            return None
        if isinstance(entry, dict):
            return SubContext(entry)
        if isinstance(entry, RemoteLink):
            return entry
        return Leaf(entry)


REMOTE = ContextPair(Pid.make(9, 9), 0x42)


@pytest.fixture
def space():
    return DictSpace({
        b"users": {
            b"mann": {
                b"naming.mss": "file:naming",
                b"papers": {b"v.tex": "file:v"},
            },
            b"cheriton": RemoteLink(REMOTE),
        },
        b"readme": "file:readme",
    })


class TestResolution:
    def test_resolves_nested_leaf(self, space):
        outcome = map_name(space, 0, b"users/mann/naming.mss", 0)
        assert isinstance(outcome, ResolvedObject)
        assert outcome.ref == "file:naming"
        assert not outcome.is_context
        assert outcome.component == b"naming.mss"

    def test_resolves_context(self, space):
        outcome = map_name(space, 0, b"users/mann", 0)
        assert isinstance(outcome, ResolvedObject)
        assert outcome.is_context
        assert outcome.ref is space.tree[b"users"][b"mann"]

    def test_empty_name_denotes_the_context_itself(self, space):
        outcome = map_name(space, 0, b"", 0)
        assert isinstance(outcome, ResolvedObject)
        assert outcome.is_context and outcome.ref is space.tree

    def test_starts_at_the_given_index(self, space):
        name = b"[home]users/mann"
        outcome = map_name(space, 0, name, 6)
        assert isinstance(outcome, ResolvedObject)
        assert outcome.is_context

    def test_interpretation_starts_in_the_named_context(self):
        inner = {b"x": "leaf"}
        space = DictSpace({b"a": inner}, contexts={0: {b"a": inner}, 5: inner})
        outcome = map_name(space, 5, b"x", 0)
        assert isinstance(outcome, ResolvedObject)
        assert outcome.ref == "leaf"

    def test_trailing_separators_ignored(self, space):
        outcome = map_name(space, 0, b"users/mann/", 0)
        assert isinstance(outcome, ResolvedObject)
        assert outcome.is_context


class TestForwarding:
    def test_remote_link_forwards_with_updated_index(self, space):
        name = b"users/cheriton/naming.mss"
        outcome = map_name(space, 0, name, 0)
        assert isinstance(outcome, ForwardName)
        assert outcome.pair == REMOTE
        # "the name index field ... updated to point to the first character
        # of the name not yet parsed"
        assert name[outcome.index:] == b"/naming.mss"

    def test_final_component_link_also_forwards(self, space):
        outcome = map_name(space, 0, b"users/cheriton", 0)
        assert isinstance(outcome, ForwardName)
        assert outcome.pair == REMOTE
        assert outcome.index == len(b"users/cheriton")


class TestFaults:
    def test_unknown_component_not_found(self, space):
        outcome = map_name(space, 0, b"users/nobody/x", 0)
        assert isinstance(outcome, MappingFault)
        assert outcome.code is ReplyCode.NOT_FOUND
        assert outcome.not_found

    def test_invalid_context_id(self, space):
        outcome = map_name(space, 0x77, b"anything", 0)
        assert isinstance(outcome, MappingFault)
        assert outcome.code is ReplyCode.INVALID_CONTEXT

    def test_leaf_in_the_middle_is_not_a_context(self, space):
        outcome = map_name(space, 0, b"readme/inside", 0)
        assert isinstance(outcome, MappingFault)
        assert outcome.code is ReplyCode.NOT_A_CONTEXT


class TestParentResolution:
    def test_unbound_final_component_yields_parent(self, space):
        outcome = map_name(space, 0, b"users/mann/new.txt", 0,
                           want_parent=True)
        assert isinstance(outcome, ResolvedParent)
        assert outcome.parent_ref is space.tree[b"users"][b"mann"]
        assert outcome.component == b"new.txt"

    def test_bound_final_component_still_yields_parent(self, space):
        outcome = map_name(space, 0, b"users/mann/naming.mss", 0,
                           want_parent=True)
        assert isinstance(outcome, ResolvedParent)
        assert outcome.component == b"naming.mss"

    def test_parent_walk_still_forwards_across_links(self, space):
        outcome = map_name(space, 0, b"users/cheriton/sub/new.txt", 0,
                           want_parent=True)
        assert isinstance(outcome, ForwardName)
        assert outcome.pair == REMOTE

    def test_missing_intermediate_still_faults(self, space):
        outcome = map_name(space, 0, b"nope/deeper/new.txt", 0,
                           want_parent=True)
        assert isinstance(outcome, MappingFault)
        assert outcome.code is ReplyCode.NOT_FOUND

    def test_empty_name_cannot_be_created(self, space):
        outcome = map_name(space, 0, b"", 0, want_parent=True)
        assert isinstance(outcome, MappingFault)
        assert outcome.code is ReplyCode.BAD_NAME

    def test_single_component_parent_is_the_root(self, space):
        outcome = map_name(space, 0, b"newfile", 0, want_parent=True)
        assert isinstance(outcome, ResolvedParent)
        assert outcome.parent_ref is space.tree
