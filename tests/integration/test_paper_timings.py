"""End-to-end reproduction of the paper's measured numbers (E1-E4).

Each test builds the full system and measures through the client runtime,
asserting the paper's figure within a small tolerance.  These are the
canaries for the whole reproduction: if an extra hop or a missing CPU charge
creeps into any layer, they fail.
"""

import pytest

from repro.core.context import ContextPair, WellKnownContext
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, Now
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from repro.servers.fileserver.disk import DiskModel
from tests.helpers import run_on, standard_system


def open_timing_system():
    """Sec. 6's configuration: workstation + local and remote file servers."""
    domain = Domain()
    ws = setup_workstation(domain, "mann")
    remote = start_server(domain.create_host("vax1"), VFileServer(user="mann"))
    local = start_server(ws.host, VFileServer(user="mann"))
    standard_prefixes(ws, remote)
    ws.prefix_server.define_prefix(
        "local", ContextPair(local.pid, int(WellKnownContext.HOME)))
    return domain, ws, remote, local


def measure_open(session, name):
    t0 = yield Now()
    stream = yield from session.open(name, "r")
    t1 = yield Now()
    yield from stream.close()
    return t1 - t0


class TestE4OpenLatencies:
    """Paper Sec. 6: 1.21 / 3.70 / 5.14 / 7.69 ms."""

    def setup_method(self):
        self.domain, self.ws, self.remote, self.local = open_timing_system()

        def seed(session):
            yield from files.write_file(session, "[home]naming.mss", b"x" * 64)
            yield from files.write_file(session, "[local]naming.mss", b"y" * 64)

        run_on(self.domain, self.ws.host, seed(self.ws.session()), name="seed")

    def _measure(self, name, session=None):
        session = session or self.ws.session()
        return run_on(self.domain, self.ws.host,
                      measure_open(session, name), name="timer")

    def test_local_direct_open_1_21ms(self):
        session = self.ws.session(
            ContextPair(self.local.pid, int(WellKnownContext.HOME)))
        elapsed = self._measure("naming.mss", session)
        assert elapsed * 1e3 == pytest.approx(1.21, rel=0.01)

    def test_remote_direct_open_3_70ms(self):
        elapsed = self._measure("naming.mss")
        assert elapsed * 1e3 == pytest.approx(3.70, rel=0.01)

    def test_local_via_prefix_5_14ms(self):
        elapsed = self._measure("[local]naming.mss")
        assert elapsed * 1e3 == pytest.approx(5.14, rel=0.01)

    def test_remote_via_prefix_7_69ms(self):
        elapsed = self._measure("[home]naming.mss")
        assert elapsed * 1e3 == pytest.approx(7.69, rel=0.015)

    def test_prefix_delta_is_target_independent(self):
        """'The difference is identical within the limits of experimental
        error in both cases (3.94 vs. 3.99 ms)' -- Sec. 6."""
        local_session = self.ws.session(
            ContextPair(self.local.pid, int(WellKnownContext.HOME)))
        local_direct = self._measure("naming.mss", local_session)
        remote_direct = self._measure("naming.mss")
        local_prefix = self._measure("[local]naming.mss")
        remote_prefix = self._measure("[home]naming.mss")
        delta_local = local_prefix - local_direct
        delta_remote = remote_prefix - remote_direct
        assert delta_local == pytest.approx(delta_remote, rel=0.02)
        assert delta_local * 1e3 == pytest.approx(3.94, rel=0.02)


class TestE3SequentialRead:
    """Paper Sec. 3.1: 17.13 ms/page with a 15 ms/page disk."""

    def test_steady_state_page_period(self):
        system = standard_system(disk=DiskModel(page_seconds=15e-3))
        pages = 32
        content = b"d" * (512 * pages)

        def client(session):
            yield from files.write_file(session, "big.dat", content)
            stream = yield from session.open("big.dat", "r")
            from repro.vio.client import read_block

            # Warm-up read of page 0, then time the steady state.
            yield from read_block(stream.server, stream.instance, 0)
            t0 = yield Now()
            for block in range(1, pages):
                code, data = yield from read_block(stream.server,
                                                   stream.instance, block)
                assert data == content[block * 512:(block + 1) * 512]
            t1 = yield Now()
            yield from stream.close()
            return (t1 - t0) / (pages - 1)

        period = system.run_client(client(system.session()))
        assert period * 1e3 == pytest.approx(17.13, rel=0.02)

    def test_random_reads_have_no_readahead_benefit(self):
        system = standard_system(disk=DiskModel(page_seconds=15e-3))
        pages = 8
        content = b"r" * (512 * pages)

        def client(session):
            yield from files.write_file(session, "rand.dat", content)
            stream = yield from session.open("rand.dat", "r")
            from repro.vio.client import read_block

            order = [5, 1, 6, 2, 7, 0]
            t0 = yield Now()
            for block in order:
                yield from read_block(stream.server, stream.instance, block)
            t1 = yield Now()
            return (t1 - t0) / len(order)

        period = system.run_client(client(system.session()))
        # Every read pays the full seek; the prefetched page never matches.
        assert period > 18e-3


class TestE2ProgramLoad:
    """Paper Sec. 3.1: 64 KB program loaded in 338 ms."""

    def test_bulk_portion_is_338ms(self):
        domain = Domain()
        assert domain.latency.bulk_move_remote(64 * 1024) == pytest.approx(
            0.338, rel=0.005)

    def test_end_to_end_load_dominated_by_moveto(self):
        system = standard_system()
        image = b"\x90" * (64 * 1024)

        def client(session):
            yield from files.write_file(session, "[bin]prog", image)
            from repro.runtime.program import load_program

            t0 = yield Now()
            loaded = yield from load_program(session, "[bin]prog")
            t1 = yield Now()
            return len(loaded), t1 - t0

        size, elapsed = system.run_client(client(system.session()))
        assert size == 64 * 1024
        bulk = system.domain.latency.bulk_move_remote(64 * 1024)
        assert bulk < elapsed < bulk * 1.1  # small naming/query overhead


class TestE1Transaction:
    def test_transaction_composes_through_the_real_stack(self):
        """The 2.56 ms figure measured through real server code, not a
        synthetic echo: a QUERY on a 0-length name segment would carry the
        name buffer, so use the time server's GET_TIME (a true short
        message)."""
        from repro.kernel.ipc import GetPid, Send
        from repro.kernel.messages import Message, RequestCode
        from repro.kernel.services import Scope, ServiceId
        from repro.servers import TimeServer

        system = standard_system()
        start_server(system.domain.create_host("timehost"), TimeServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.TIME), Scope.ANY)
            t0 = yield Now()
            yield Send(pid, Message.request(RequestCode.GET_TIME))
            t1 = yield Now()
            return t1 - t0

        elapsed = system.run_client(client(system.session()))
        assert elapsed * 1e3 == pytest.approx(2.56, rel=0.01)
