"""A whole-installation scenario: the paper's Sec. 6 configuration, live.

Multiple diskless workstations, several file servers, printer, mail,
internet, and team servers -- exercising the uniform protocol across every
object kind at once, the way the paper's users did.
"""

import pytest

from repro.core.context import ContextPair, WellKnownContext
from repro.core.descriptors import (
    FileDescription,
    MailboxDescription,
    PrintJobDescription,
    ProcessDescription,
    TcpConnectionDescription,
)
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, Send
from repro.kernel.messages import Message, RequestCode
from repro.kernel.services import Scope, ServiceId
from repro.runtime import files
from repro.runtime.program import run_program
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import (
    InternetServer,
    MailServer,
    PrinterServer,
    TeamServer,
    VFileServer,
    start_server,
)
from tests.helpers import run_on


@pytest.fixture
def installation():
    domain = Domain(seed=99)
    ws_mann = setup_workstation(domain, "mann")
    ws_cheriton = setup_workstation(domain, "cheriton")
    fs1 = start_server(domain.create_host("vax1"), VFileServer(user="mann"))
    fs2 = start_server(domain.create_host("vax2"),
                       VFileServer(user="cheriton"))
    printer = start_server(domain.create_host("printhost"), PrinterServer())
    mail = MailServer(hostname="su-score.ARPA")
    mail.add_mailbox("mann")
    mail.add_mailbox("cheriton")
    start_server(domain.create_host("mailhost"), mail)
    start_server(domain.create_host("nethost"), InternetServer())
    start_server(domain.create_host("teamhost"), TeamServer())
    standard_prefixes(ws_mann, fs1)
    standard_prefixes(ws_cheriton, fs2)
    # Users see each other's servers through extra prefixes.
    ws_mann.prefix_server.define_prefix(
        "cheriton", ContextPair(fs2.pid, int(WellKnownContext.PUBLIC)))
    ws_cheriton.prefix_server.define_prefix(
        "mann", ContextPair(fs1.pid, int(WellKnownContext.PUBLIC)))
    return domain, ws_mann, ws_cheriton, fs1, fs2, mail


def test_a_day_in_the_installation(installation):
    domain, ws_mann, ws_cheriton, fs1, fs2, mail = installation
    observed = {}

    def mann_works(session):
        yield Delay(0.05)
        # Write a paper draft, share a copy via the public context.
        yield from files.write_file(session, "[home]naming.mss",
                                    b"\\section{Naming}" * 40)
        yield from files.copy_file(session, "[home]naming.mss",
                                   "[public]naming.mss")
        # Print it.
        spool = yield from session.open("[print]naming-draft", "w")
        draft = yield from files.read_file(session, "[home]naming.mss")
        yield from spool.write(draft)
        yield from spool.close()
        # Mail a note.
        yield from session.csname_request(
            RequestCode.MAIL_DELIVER, "[mail]cheriton@su-score.ARPA",
            body=b"draft is in [mann]naming.mss", **{"from": "mann"})
        # Start a long-running job.
        team = yield GetPid(int(ServiceId.TEAM), Scope.ANY)
        name, __ = yield from run_program(team, "latex", duration=30.0)
        observed["job"] = name

    def cheriton_works(session):
        yield Delay(1.5)  # after mann's activity
        check = yield from session.csname_request(
            RequestCode.MAIL_CHECK, "[mail]cheriton@su-score.ARPA")
        observed["mail_unread"] = check["unread"]
        draft = yield from files.read_file(session, "[mann]naming.mss")
        observed["draft_bytes"] = len(draft)
        # A uniform list-directory across utterly different contexts:
        listings = {}
        for prefix in ("[mann]", "[print]", "[team]", "[mail]"):
            listings[prefix] = (yield from session.list_directory(prefix))
        observed["listings"] = listings

    run_on(domain, ws_mann.host, mann_works(ws_mann.session()), name="mann",
           check=False)
    result = run_on(domain, ws_cheriton.host,
                    cheriton_works(ws_cheriton.session()), name="cheriton")
    domain.check_healthy()

    assert observed["mail_unread"] == 1
    assert observed["draft_bytes"] == len(b"\\section{Naming}") * 40
    listings = observed["listings"]
    assert any(isinstance(r, FileDescription) for r in listings["[mann]"])
    assert any(isinstance(r, PrintJobDescription)
               for r in listings["[print]"])
    assert any(isinstance(r, ProcessDescription) and r.name == observed["job"]
               for r in listings["[team]"])
    assert any(isinstance(r, MailboxDescription) for r in listings["[mail]"])


def test_uniform_delete_across_object_kinds(installation):
    """Sec. 1's Delete(object_name) promise, demonstrated on three types."""
    domain, ws_mann, *__ = installation

    def client(session):
        yield Delay(0.05)
        # A file.
        yield from files.write_file(session, "[home]junk.txt", b"x")
        yield from session.remove("[home]junk.txt")
        # A running program.
        team = yield GetPid(int(ServiceId.TEAM), Scope.ANY)
        name, __ = yield from run_program(team, "spin", duration=3600.0)
        yield from session.remove(f"[team]{name}")
        # A print job (queued then removed).
        spool = yield from session.open("[print]doomed", "w")
        yield from spool.write(b"z")
        yield from spool.close()
        yield from session.remove("[print]doomed")
        team_list = yield from session.list_directory("[team]")
        print_list = yield from session.list_directory("[print]")
        return team_list, print_list

    team_list, print_list = run_on(domain, ws_mann.host,
                                   client(ws_mann.session()))
    assert team_list == []
    assert print_list == []


def test_query_is_uniform_across_servers(installation):
    domain, ws_mann, *__ = installation

    def client(session):
        yield Delay(0.05)
        yield from files.write_file(session, "[home]q.txt", b"q")
        records = {}
        records["file"] = yield from session.query("[home]q.txt")
        records["mail"] = yield from session.query(
            "[mail]mann@su-score.ARPA")
        nethost = yield GetPid(int(ServiceId.INTERNET), Scope.ANY)
        reply = yield Send(nethost, Message.request(
            RequestCode.TCP_CONNECT, host="mit-ai", port=23))
        records["tcp"] = yield from session.query(
            f"[tcp]{reply['connection']}")
        return records

    records = run_on(domain, ws_mann.host, client(ws_mann.session()))
    assert isinstance(records["file"], FileDescription)
    assert isinstance(records["mail"], MailboxDescription)
    assert isinstance(records["tcp"], TcpConnectionDescription)
