"""The same servers over real UDP sockets (repro.net.asyncio_transport).

These tests prove the protocol stack is a genuine message protocol: the
file server, prefix server, and mail server run *unmodified* over loopback
datagrams with the binary wire encoding.
"""

import asyncio

import pytest

from repro.core.context import ContextPair, WellKnownContext
from repro.core.prefix_server import ContextPrefixServer
from repro.kernel.ipc import Segment, Send
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.net.asyncio_transport import AsyncDomain
from repro.net.latency import STANDARD_3MBIT
from repro.runtime import files
from repro.runtime.session import Session
from repro.servers.fileserver.server import VFileServer
from repro.servers.mailserver import MailServer


def run_async(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=30))


async def run_client(domain, host, gen, name="client"):
    """Spawn a client generator and await its completion."""
    done = asyncio.Event()
    box = {}

    def wrapper():
        box["result"] = yield from gen
        done.set()

    host.spawn(wrapper(), name)
    await done.wait()
    domain.check_healthy()
    return box["result"]


async def base_system():
    domain = AsyncDomain()
    ws = await domain.create_host("ws")
    fs_host = await domain.create_host("fs")
    fileserver = VFileServer(user="mann")
    fs_pid = fs_host.spawn(fileserver.body(), "fileserver")
    prefix = ContextPrefixServer(user="mann")
    prefix_pid = ws.spawn(prefix.body(), "prefix")
    await asyncio.sleep(0.05)  # let both register
    prefix.define_prefix("home",
                         ContextPair(fs_pid, int(WellKnownContext.HOME)))
    session = Session(ContextPair(fs_pid, int(WellKnownContext.HOME)),
                      prefix_pid, STANDARD_3MBIT)
    return domain, ws, fs_host, fileserver, fs_pid, session


class TestFileServiceOverUdp:
    def test_write_read_roundtrip(self):
        async def scenario():
            domain, ws, *__, session = await base_system()
            def client():
                yield from files.write_file(session, "u.txt", b"over udp")
                return (yield from files.read_file(session, "u.txt"))
            result = await run_client(domain, ws, client())
            await domain.shutdown()
            return result

        assert run_async(scenario()) == b"over udp"

    def test_prefix_forwarding_over_sockets(self):
        async def scenario():
            domain, ws, *__, session = await base_system()
            def client():
                yield from files.write_file(session, "[home]p.txt", b"fw")
                return (yield from files.read_file(session, "[home]p.txt"))
            result = await run_client(domain, ws, client())
            await domain.shutdown()
            return result

        assert run_async(scenario()) == b"fw"

    def test_profiled_prefix_server_survives_udp(self):
        # A nonzero parse_cpu makes dispatch() yield ProfileEnter/Exit
        # around its Delay; the socket interpreter must treat them as
        # no-ops (like Annotate), not IllegalEffect.
        async def scenario():
            domain = AsyncDomain()
            ws = await domain.create_host("ws")
            fs_host = await domain.create_host("fs")
            fs_pid = fs_host.spawn(VFileServer(user="mann").body(),
                                   "fileserver")
            prefix = ContextPrefixServer(parse_cpu=0.001, user="mann")
            prefix_pid = ws.spawn(prefix.body(), "prefix")
            await asyncio.sleep(0.05)
            prefix.define_prefix(
                "home", ContextPair(fs_pid, int(WellKnownContext.HOME)))
            session = Session(ContextPair(fs_pid, int(WellKnownContext.HOME)),
                              prefix_pid, STANDARD_3MBIT)

            def client():
                yield from files.write_file(session, "[home]prof.txt", b"ok")
                return (yield from files.read_file(session, "[home]prof.txt"))

            result = await run_client(domain, ws, client())
            await domain.shutdown()
            return result

        assert run_async(scenario()) == b"ok"

    def test_directory_listing_over_sockets(self):
        async def scenario():
            domain, ws, *__, session = await base_system()
            def client():
                yield from files.write_file(session, "a.txt", b"1")
                yield from files.write_file(session, "b.txt", b"22")
                return (yield from session.list_directory("."))
            records = await run_client(domain, ws, client())
            await domain.shutdown()
            return records

        records = run_async(scenario())
        assert [r.name for r in records] == ["a.txt", "b.txt"]
        assert records[1].size_bytes == 2

    def test_moveto_program_load_over_sockets(self):
        async def scenario():
            domain, ws, *__, session = await base_system()
            image = bytes(range(256)) * 64  # 16 KB
            def client():
                yield from files.write_file(session, "[home]img", image)
                from repro.runtime.program import load_program
                return (yield from load_program(session, "[home]img"))
            loaded = await run_client(domain, ws, client())
            await domain.shutdown()
            return loaded == image

        assert run_async(scenario())

    def test_send_to_dead_pid_nacks(self):
        async def scenario():
            domain, ws, fs_host, *__ = await base_system()
            from repro.kernel.pids import Pid
            dead = Pid.make(fs_host.host_id, 0xBEEF)
            def client():
                reply = yield Send(dead, Message.request(1))
                return reply.reply_code
            code = await run_client(domain, ws, client())
            await domain.shutdown()
            return code

        assert run_async(scenario()) is ReplyCode.NONEXISTENT_PROCESS

    def test_mail_forwarding_over_sockets(self):
        async def scenario():
            domain, ws, fs_host, __, fs_pid, session = await base_system()
            mail_host = await domain.create_host("mail")
            stanford = MailServer(hostname="su-score.ARPA")
            mail_pid = mail_host.spawn(stanford.body(), "mail")
            await asyncio.sleep(0.05)
            stanford.add_mailbox("cheriton")

            def client():
                from repro.core.protocol import make_csname_request
                request = make_csname_request(
                    RequestCode.MAIL_DELIVER, "cheriton@su-score.ARPA", 0,
                    body=b"sockets!")
                reply = yield Send(mail_pid, request)
                return reply
            reply = await run_client(domain, ws, client())
            await domain.shutdown()
            return reply, stanford

        reply, stanford = run_async(scenario())
        assert reply.ok
        assert stanford.mailboxes["cheriton"].messages[0].body == b"sockets!"


class TestAsyncExtras:
    def test_group_send_over_udp(self):
        """GroupSend fans out as datagrams; first reply wins."""
        from repro.kernel.ipc import GroupSend, JoinGroup, Receive, Reply

        async def scenario():
            from repro.net.asyncio_transport import AsyncDomain

            domain = AsyncDomain()
            client_host = await domain.create_host("client")
            members = [await domain.create_host(f"m{i}") for i in range(2)]

            def member(key):
                def body():
                    yield JoinGroup(0x5555)
                    while True:
                        delivery = yield Receive()
                        if delivery.message.get("key") == key:
                            yield Reply(delivery.sender,
                                        Message.reply(ReplyCode.OK,
                                                      owner=key))
                return body

            members[0].spawn(member("left")(), "left")
            members[1].spawn(member("right")(), "right")
            await asyncio.sleep(0.05)

            done = asyncio.Event()
            box = {}

            def client():
                reply = yield GroupSend(0x5555, Message.request(1,
                                                                key="right"))
                box["owner"] = reply.get("owner")
                done.set()

            client_host.spawn(client(), "client")
            await asyncio.wait_for(done.wait(), 10)
            await domain.shutdown()
            return box["owner"]

        assert run_async(scenario()) == "right"

    def test_spawn_effect_over_udp(self):
        from repro.kernel.ipc import Delay, Spawn

        async def scenario():
            from repro.net.asyncio_transport import AsyncDomain

            domain = AsyncDomain()
            host = await domain.create_host("solo")
            done = asyncio.Event()
            marks = []

            def child():
                marks.append("child-ran")
                yield Delay(0.001)

            def parent():
                child_pid = yield Spawn(child(), "child")
                marks.append(child_pid.logical_host)
                yield Delay(0.01)
                done.set()

            host.spawn(parent(), "parent")
            await asyncio.wait_for(done.wait(), 10)
            await domain.shutdown()
            return marks, host.host_id

        marks, host_id = run_async(scenario())
        assert "child-ran" in marks
        assert host_id in marks

    def test_getpid_timeout_returns_none_over_udp(self):
        from repro.kernel.ipc import GetPid
        from repro.kernel.services import Scope

        async def scenario():
            from repro.net.asyncio_transport import AsyncDomain

            domain = AsyncDomain()
            host = await domain.create_host("lonely")
            await domain.create_host("other")
            done = asyncio.Event()
            box = {}

            def client():
                box["pid"] = yield GetPid(99, Scope.ANY)
                done.set()

            host.spawn(client(), "client")
            await asyncio.wait_for(done.wait(), 10)
            await domain.shutdown()
            return box["pid"]

        assert run_async(scenario()) is None
