"""Concurrency and contention: many clients, one wire, one server."""

import pytest

from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, MoveFrom, Now, Receive, Reply, Segment, Send, SetPid
from repro.kernel.messages import Message, ReplyCode
from repro.kernel.services import Scope
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from tests.helpers import run_on


class TestServerSerialization:
    def test_concurrent_clients_all_served(self):
        """Ten workstations hammer one file server; every write lands."""
        domain = Domain(seed=13)
        fs = start_server(domain.create_host("vax"), VFileServer(user="mann"))
        workstations = []
        for index in range(10):
            ws = setup_workstation(domain, "mann", name=f"ws{index}")
            standard_prefixes(ws, fs)
            workstations.append(ws)

        def client(session, index):
            yield Delay(0.001 * index)
            yield from files.write_file(session, f"[home]c{index}.txt",
                                        str(index).encode())

        for index, ws in enumerate(workstations):
            ws.host.spawn(client(ws.session(), index), f"client{index}")
        domain.run()
        domain.check_healthy()

        for index in range(10):
            node = fs.server.store.resolve_path(f"users/mann/c{index}.txt")
            assert node is not None
            assert bytes(node.data) == str(index).encode()

    def test_requests_queue_fifo_at_a_busy_server(self):
        """A single-threaded server serves queued requests in order."""
        domain = Domain(seed=4)
        host = domain.create_host("solo")
        served = []

        def server():
            yield SetPid(1, Scope.BOTH)
            while True:
                delivery = yield Receive()
                yield Delay(0.01)  # make a backlog form
                served.append(delivery.message["tag"])
                yield Reply(delivery.sender, Message.reply(ReplyCode.OK))

        host.spawn(server(), "server")

        def client(tag):
            def body():
                yield Delay(0.001 + tag * 1e-6)
                pid = yield GetPid(1, Scope.ANY)
                yield Send(pid, Message.request(1, tag=tag))
            return body

        for tag in range(6):
            host.spawn(client(tag)(), f"c{tag}")
        domain.run()
        domain.check_healthy()
        assert served == sorted(served)


class TestWireContention:
    def test_bulk_transfer_delays_foreground_transactions(self):
        """A 64 KB MoveTo saturating the bus stretches a concurrent
        transaction; after the transfer, latency recovers."""
        domain = Domain(seed=2)
        client_host = domain.create_host("ws")
        mover_host = domain.create_host("mover")
        sink_host = domain.create_host("sink")
        echo_host = domain.create_host("echo")

        def echo():
            yield SetPid(1, Scope.BOTH)
            while True:
                delivery = yield Receive()
                yield Reply(delivery.sender, Message.reply(ReplyCode.OK))

        def sink():
            yield SetPid(2, Scope.BOTH)
            delivery = yield Receive()
            yield MoveFrom(delivery.sender, 0, 64 * 1024)
            yield Reply(delivery.sender, Message.reply(ReplyCode.OK))

        def mover():
            yield Delay(0.05)
            pid = yield GetPid(2, Scope.ANY)
            yield Send(pid, Message.request(1),
                       Segment(b"\x00" * (64 * 1024)))

        echo_host.spawn(echo(), "echo")
        sink_host.spawn(sink(), "sink")
        mover_host.spawn(mover(), "mover")

        def probe():
            yield Delay(0.02)
            pid = yield GetPid(1, Scope.ANY)
            # Quiet wire:
            t0 = yield Now()
            yield Send(pid, Message.request(1))
            quiet = (yield Now()) - t0
            # During the bulk transfer:
            yield Delay(0.1)  # transfer runs 0.05 .. 0.39
            t0 = yield Now()
            yield Send(pid, Message.request(1))
            busy = (yield Now()) - t0
            # After it:
            yield Delay(0.4)
            t0 = yield Now()
            yield Send(pid, Message.request(1))
            after = (yield Now()) - t0
            return quiet, busy, after

        quiet, busy, after = run_on(domain, client_host, probe())
        assert busy > quiet * 1.2      # measurable interference
        assert after == pytest.approx(quiet, rel=0.05)  # full recovery

    def test_bus_bytes_account_for_the_transfer(self):
        domain = Domain(seed=2)
        a = domain.create_host("a")
        b = domain.create_host("b")

        def receiver():
            yield SetPid(2, Scope.BOTH)
            delivery = yield Receive()
            yield MoveFrom(delivery.sender, 0, 8 * 1024)
            yield Reply(delivery.sender, Message.reply(ReplyCode.OK))

        b.spawn(receiver(), "recv")

        def sender():
            yield Delay(0.01)
            pid = yield GetPid(2, Scope.ANY)
            yield Send(pid, Message.request(1), Segment(b"\x00" * (8 * 1024)))

        run_on(domain, a, sender())
        assert domain.metrics.count("net.bytes") >= 8 * 1024
