"""Tests for the binary wire encoding, including property-based roundtrips."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.messages import Message, Packet, PacketKind
from repro.kernel.pids import Pid
from repro.net.wire import WireError, decode_packet, encode_packet


def roundtrip(packet: Packet) -> Packet:
    return decode_packet(encode_packet(packet))


class TestRoundtrips:
    def test_minimal_control_packet(self):
        packet = Packet(PacketKind.PROBE, src_pid=Pid.make(1, 2),
                        dst_pid=Pid.make(3, 4), txn_id=99)
        decoded = roundtrip(packet)
        assert decoded.kind is PacketKind.PROBE
        assert decoded.src_pid == packet.src_pid
        assert decoded.dst_pid == packet.dst_pid
        assert decoded.txn_id == 99
        assert decoded.message is None

    def test_request_with_fields_and_segment(self):
        message = Message.request(0x0301, mode="r", block=7, ratio=0.5,
                                  flag=True, nothing=None,
                                  segment=b"users/mann/naming.mss",
                                  segment_buffer=256)
        packet = Packet(PacketKind.REQUEST, src_pid=Pid.make(1, 1),
                        dst_pid=Pid.make(2, 2), txn_id=5, message=message)
        decoded = roundtrip(packet)
        assert decoded.message is not None
        assert decoded.message.code == 0x0301
        assert decoded.message.fields == message.fields
        assert decoded.message.segment == message.segment
        assert decoded.message.segment_buffer == 256

    def test_pid_valued_info_fields(self):
        packet = Packet(PacketKind.REQUEST, src_pid=Pid.make(1, 1),
                        dst_pid=Pid.make(2, 2), txn_id=5,
                        message=Message.request(1),
                        info={"forwarder": Pid.make(9, 9)})
        decoded = roundtrip(packet)
        assert decoded.info["forwarder"] == Pid.make(9, 9)

    def test_none_dst_pid(self):
        packet = Packet(PacketKind.GETPID_QUERY, src_pid=Pid.make(1, 1),
                        dst_pid=None, txn_id=0, info={"service": 3,
                                                      "waiter": 1,
                                                      "origin": 1})
        assert roundtrip(packet).dst_pid is None

    def test_bytes_field(self):
        message = Message.request(1, new_name=b"raw-bytes")
        packet = Packet(PacketKind.REQUEST, src_pid=Pid(1), dst_pid=Pid(2),
                        txn_id=1, message=message)
        assert roundtrip(packet).message.fields["new_name"] == b"raw-bytes"

    @given(
        fields=st.dictionaries(
            st.text(min_size=1, max_size=12,
                    alphabet=st.characters(min_codepoint=97, max_codepoint=122)),
            st.one_of(
                st.integers(min_value=-(2**62), max_value=2**62),
                st.booleans(),
                st.text(max_size=40),
                st.binary(max_size=40),
                st.none(),
            ),
            max_size=8,
        ),
        segment=st.one_of(st.none(), st.binary(max_size=300)),
        txn=st.integers(min_value=0, max_value=2**63 - 1),
    )
    def test_arbitrary_message_roundtrip_property(self, fields, segment, txn):
        message = Message(code=0x0305, fields=fields, segment=segment)
        packet = Packet(PacketKind.REQUEST, src_pid=Pid.make(4, 5),
                        dst_pid=Pid.make(6, 7), txn_id=txn, message=message)
        decoded = roundtrip(packet)
        assert decoded.message.fields == fields
        assert (decoded.message.segment or None) == (
            bytes(segment) if segment else None)
        assert decoded.txn_id == txn


class TestErrors:
    def test_bad_magic_rejected(self):
        packet = Packet(PacketKind.PROBE, src_pid=Pid(1), dst_pid=Pid(2),
                        txn_id=1)
        data = bytearray(encode_packet(packet))
        data[0] = ord("X")
        with pytest.raises(WireError, match="magic"):
            decode_packet(bytes(data))

    def test_short_packet_rejected(self):
        with pytest.raises(WireError, match="short"):
            decode_packet(b"VK")

    def test_trailing_garbage_rejected(self):
        packet = Packet(PacketKind.PROBE, src_pid=Pid(1), dst_pid=Pid(2),
                        txn_id=1)
        with pytest.raises(WireError, match="trailing"):
            decode_packet(encode_packet(packet) + b"junk")

    def test_unencodable_field_rejected(self):
        message = Message.request(1, body=object())
        packet = Packet(PacketKind.REQUEST, src_pid=Pid(1), dst_pid=Pid(2),
                        txn_id=1, message=message)
        with pytest.raises(WireError, match="not wire-encodable"):
            encode_packet(packet)

    def test_float_fields_roundtrip_exactly(self):
        message = Message.request(1, when=2.56e-3)
        packet = Packet(PacketKind.REQUEST, src_pid=Pid(1), dst_pid=Pid(2),
                        txn_id=1, message=message)
        assert roundtrip(packet).message.fields["when"] == 2.56e-3
