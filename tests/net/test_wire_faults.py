"""Probabilistic wire-fault injection: drop/dup/delay, seeded and metered."""

import pytest

from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, Now, Receive, Reply, Send, SetPid
from repro.kernel.messages import Message, ReplyCode
from repro.kernel.services import Scope
from repro.net.ethernet import Ethernet, NetworkError
from repro.net.latency import LOSSLESS_WIRE, STANDARD_3MBIT, WireFaultModel
from repro.net.packet import Frame
from repro.sim.engine import Engine
from repro.sim.metrics import Metrics
from repro.sim.rng import DeterministicRng
from tests.helpers import run_on


@pytest.fixture
def net():
    engine = Engine()
    ethernet = Ethernet(engine, STANDARD_3MBIT, Metrics())
    return engine, ethernet


def attach_collector(ethernet, host_id):
    received = []
    ethernet.attach(host_id, received.append)
    return received


class TestWireFaultModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            WireFaultModel(drop_rate=1.5)
        with pytest.raises(ValueError):
            WireFaultModel(dup_rate=-0.1)
        with pytest.raises(ValueError):
            WireFaultModel(delay_rate=0.1, delay_min=2e-3, delay_max=1e-3)

    def test_null_detection(self):
        assert LOSSLESS_WIRE.is_null
        assert WireFaultModel().is_null
        assert not WireFaultModel(drop_rate=0.1).is_null

    def test_nonzero_rates_require_rng(self, net):
        __, ethernet = net
        with pytest.raises(NetworkError):
            ethernet.set_fault_model(WireFaultModel(drop_rate=0.5))
        # The null model installs fine without one.
        ethernet.set_fault_model(LOSSLESS_WIRE)
        assert ethernet.fault_model is LOSSLESS_WIRE


class TestInjection:
    def _rng(self, seed=0):
        return DeterministicRng(seed).stream("net.faults")

    def test_drop_everything(self, net):
        engine, ethernet = net
        rx = attach_collector(ethernet, 2)
        ethernet.attach(1, lambda f: None)
        ethernet.set_fault_model(WireFaultModel(drop_rate=1.0), self._rng())
        for __ in range(5):
            ethernet.transmit(Frame(1, 2, "p", 64))
        engine.run()
        assert rx == []
        assert ethernet.metrics.count("net.drops") == 5

    def test_duplicate_everything(self, net):
        engine, ethernet = net
        rx = attach_collector(ethernet, 2)
        ethernet.attach(1, lambda f: None)
        ethernet.set_fault_model(WireFaultModel(dup_rate=1.0), self._rng())
        ethernet.transmit(Frame(1, 2, "p", 64))
        engine.run()
        assert len(rx) == 2
        assert ethernet.metrics.count("net.dups") == 1

    def test_delay_everything(self, net):
        engine, ethernet = net
        arrivals = []
        ethernet.attach(2, lambda f: arrivals.append(engine.now))
        ethernet.attach(1, lambda f: None)
        on_time = ethernet.transmit(Frame(1, 2, "p", 64))
        engine.run()
        ethernet.set_fault_model(
            WireFaultModel(delay_rate=1.0, delay_min=1e-3, delay_max=1e-3),
            self._rng())
        base = engine.now
        ethernet.transmit(Frame(1, 2, "p", 64))
        engine.run()
        assert arrivals[0] == on_time
        # The second frame arrived its wire time *plus* the injected 1 ms.
        assert arrivals[1] == pytest.approx(base + (on_time - 0.0) + 1e-3)
        assert ethernet.metrics.count("net.delayed_frames") == 1

    def test_clearing_the_model_stops_injection(self, net):
        engine, ethernet = net
        rx = attach_collector(ethernet, 2)
        ethernet.attach(1, lambda f: None)
        ethernet.set_fault_model(WireFaultModel(drop_rate=1.0), self._rng())
        ethernet.set_fault_model(None)
        ethernet.transmit(Frame(1, 2, "p", 64))
        engine.run()
        assert len(rx) == 1
        assert ethernet.metrics.count("net.drops") == 0


def _echo_server():
    yield SetPid(1, Scope.BOTH)
    while True:
        delivery = yield Receive()
        yield Reply(delivery.sender, Message.reply(ReplyCode.OK))


def _lossy_run(seed: int) -> tuple[float, dict]:
    """A fixed workload on a 10%-lossy wire; returns (duration, counters)."""
    domain = Domain(seed=seed)
    ws = domain.create_host("ws")
    far = domain.create_host("far")
    far.spawn(_echo_server(), "server")
    domain.set_wire_faults(WireFaultModel(drop_rate=0.10, dup_rate=0.05))

    def client():
        yield Delay(0.01)
        pid = yield GetPid(1, Scope.ANY)
        t0 = yield Now()
        for __ in range(50):
            reply = yield Send(pid, Message.request(0x0101))
            assert reply.ok
        t1 = yield Now()
        return t1 - t0

    duration = run_on(domain, ws, client())
    counters = {key: domain.metrics.count(key)
                for key in ("net.drops", "net.dups", "ipc.retransmits",
                            "ipc.dup_suppressed", "ipc.reply_resends")}
    return duration, counters


class TestDeterminism:
    def test_same_seed_same_fault_pattern(self):
        first = _lossy_run(seed=42)
        second = _lossy_run(seed=42)
        assert first == second

    def test_different_seed_different_pattern(self):
        duration_a, counters_a = _lossy_run(seed=1)
        duration_b, counters_b = _lossy_run(seed=2)
        # Astronomically unlikely to collide on both timing and counters.
        assert (duration_a, counters_a) != (duration_b, counters_b)

    def test_loss_is_survived(self):
        __, counters = _lossy_run(seed=42)
        assert counters["net.drops"] > 0
        assert counters["ipc.retransmits"] > 0
