"""Tests for the shared-bus Ethernet model."""

import pytest

from repro.net.ethernet import Ethernet, NetworkError
from repro.net.latency import STANDARD_3MBIT
from repro.net.packet import BROADCAST, Frame, GroupAddress
from repro.sim.engine import Engine
from repro.sim.metrics import Metrics


@pytest.fixture
def net():
    engine = Engine()
    ethernet = Ethernet(engine, STANDARD_3MBIT, Metrics())
    return engine, ethernet


def attach_collector(ethernet, host_id):
    received = []
    ethernet.attach(host_id, received.append)
    return received


class TestDelivery:
    def test_unicast_reaches_only_destination(self, net):
        engine, ethernet = net
        rx1 = attach_collector(ethernet, 1)
        rx2 = attach_collector(ethernet, 2)
        rx3 = attach_collector(ethernet, 3)
        ethernet.transmit(Frame(1, 2, "payload", 64))
        engine.run()
        assert [f.payload for f in rx2] == ["payload"]
        assert rx1 == [] and rx3 == []

    def test_broadcast_reaches_everyone_but_sender(self, net):
        engine, ethernet = net
        collectors = {h: attach_collector(ethernet, h) for h in (1, 2, 3, 4)}
        ethernet.transmit(Frame(1, BROADCAST, "hello", 64))
        engine.run()
        assert collectors[1] == []
        for host in (2, 3, 4):
            assert len(collectors[host]) == 1

    def test_multicast_reaches_only_members(self, net):
        engine, ethernet = net
        collectors = {h: attach_collector(ethernet, h) for h in (1, 2, 3, 4)}
        group = GroupAddress(7)
        ethernet.join_group(2, group)
        ethernet.join_group(3, group)
        ethernet.transmit(Frame(1, group, "mc", 64))
        engine.run()
        assert len(collectors[2]) == 1 and len(collectors[3]) == 1
        assert collectors[1] == [] and collectors[4] == []

    def test_sender_in_group_does_not_hear_itself(self, net):
        engine, ethernet = net
        rx1 = attach_collector(ethernet, 1)
        group = GroupAddress(7)
        ethernet.join_group(1, group)
        ethernet.transmit(Frame(1, group, "mc", 64))
        engine.run()
        assert rx1 == []

    def test_leave_group_stops_delivery(self, net):
        engine, ethernet = net
        rx2 = attach_collector(ethernet, 2)
        group = GroupAddress(9)
        ethernet.join_group(2, group)
        ethernet.leave_group(2, group)
        ethernet.transmit(Frame(1, group, "mc", 64))
        engine.run()
        assert rx2 == []

    def test_unknown_destination_counts_lost(self, net):
        engine, ethernet = net
        attach_collector(ethernet, 1)
        ethernet.transmit(Frame(1, 99, "void", 64))
        engine.run()
        assert ethernet.metrics.count("net.frames_lost") == 1


class TestTiming:
    def test_arrival_time_is_wire_time(self, net):
        engine, ethernet = net
        attach_collector(ethernet, 2)
        attach_collector(ethernet, 1)
        arrival = ethernet.transmit(Frame(1, 2, "p", 66))
        assert arrival == pytest.approx(STANDARD_3MBIT.wire_time(66))

    def test_bus_serializes_concurrent_transmissions(self, net):
        engine, ethernet = net
        attach_collector(ethernet, 2)
        attach_collector(ethernet, 1)
        first = ethernet.transmit(Frame(1, 2, "a", 1000))
        second = ethernet.transmit(Frame(2, 1, "b", 1000))
        assert second == pytest.approx(2 * STANDARD_3MBIT.wire_time(1000))
        assert second > first

    def test_bus_frees_up_after_transmissions(self, net):
        engine, ethernet = net
        attach_collector(ethernet, 2)
        attach_collector(ethernet, 1)
        ethernet.transmit(Frame(1, 2, "a", 100))
        engine.run()
        later = ethernet.transmit(Frame(1, 2, "b", 100))
        assert later == pytest.approx(
            engine.now + STANDARD_3MBIT.wire_time(100))


class TestFaults:
    def test_down_link_drops_incoming(self, net):
        engine, ethernet = net
        rx2 = attach_collector(ethernet, 2)
        attach_collector(ethernet, 1)
        ethernet.set_link(2, False)
        ethernet.transmit(Frame(1, 2, "p", 64))
        engine.run()
        assert rx2 == []
        assert ethernet.metrics.count("net.frames_lost") == 1

    def test_down_link_drops_outgoing(self, net):
        engine, ethernet = net
        rx2 = attach_collector(ethernet, 2)
        attach_collector(ethernet, 1)
        ethernet.set_link(1, False)
        ethernet.transmit(Frame(1, 2, "p", 64))
        engine.run()
        assert rx2 == []

    def test_link_recovery(self, net):
        engine, ethernet = net
        rx2 = attach_collector(ethernet, 2)
        attach_collector(ethernet, 1)
        ethernet.set_link(2, False)
        ethernet.set_link(2, True)
        ethernet.transmit(Frame(1, 2, "p", 64))
        engine.run()
        assert len(rx2) == 1

    def test_drop_predicate_partitions(self, net):
        engine, ethernet = net
        rx2 = attach_collector(ethernet, 2)
        rx3 = attach_collector(ethernet, 3)
        attach_collector(ethernet, 1)
        ethernet.set_drop_predicate(lambda frame, dst: dst == 2)
        ethernet.transmit(Frame(1, 2, "p", 64))
        ethernet.transmit(Frame(1, 3, "p", 64))
        engine.run()
        assert rx2 == [] and len(rx3) == 1
        assert ethernet.metrics.count("net.frames_dropped") == 1

    def test_detach_forgets_host_and_groups(self, net):
        engine, ethernet = net
        attach_collector(ethernet, 2)
        group = GroupAddress(3)
        ethernet.join_group(2, group)
        ethernet.detach(2)
        assert ethernet.group_members(group) == set()
        assert 2 not in ethernet.attached_hosts()


class TestConfigErrors:
    def test_duplicate_attach_rejected(self, net):
        __, ethernet = net
        ethernet.attach(1, lambda f: None)
        with pytest.raises(NetworkError):
            ethernet.attach(1, lambda f: None)

    def test_set_link_on_unknown_host_rejected(self, net):
        __, ethernet = net
        with pytest.raises(NetworkError):
            ethernet.set_link(5, False)

    def test_join_group_requires_attachment(self, net):
        __, ethernet = net
        with pytest.raises(NetworkError):
            ethernet.join_group(5, GroupAddress(1))

    def test_negative_group_id_rejected(self):
        with pytest.raises(ValueError):
            GroupAddress(-1)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Frame(1, 2, "p", -5)

    def test_frame_kind_predicates(self):
        assert Frame(1, BROADCAST, "p", 1).is_broadcast
        assert Frame(1, GroupAddress(1), "p", 1).is_multicast
        assert Frame(1, 2, "p", 1).is_unicast
