"""Calibration tests: the latency model must compose to the paper's numbers.

Every assertion here cites a measurement from the paper; if one fails, the
reproduction's quantitative claims are broken at the source.
"""

import pytest

from repro.net.latency import (
    DATA_PACKET_BYTES,
    DISK_PAGE_SECONDS,
    NAME_SEGMENT_BYTES,
    SHORT_MESSAGE_BYTES,
    STANDARD_3MBIT,
    STANDARD_10MBIT,
    LatencyModel,
)


class TestPaperCalibration:
    def test_remote_32byte_transaction_is_2_56ms(self):
        """Sec. 3.1: Send-Receive-Reply, 32-byte messages, 2.56 ms."""
        assert STANDARD_3MBIT.remote_transaction() == pytest.approx(
            2.56e-3, rel=0.005)

    def test_local_transaction_is_0_77ms(self):
        """The SOSP'83 local transaction the paper builds on."""
        assert STANDARD_3MBIT.local_transaction() == pytest.approx(770e-6)

    def test_local_open_composition_is_1_21ms(self):
        """Sec. 6: local current-context Open = stub + local transaction."""
        model = STANDARD_3MBIT
        total = (model.stub_pre + model.local_transaction() + model.stub_post)
        assert total == pytest.approx(1.21e-3, rel=0.005)

    def test_remote_open_composition_is_3_70ms(self):
        """Sec. 6: remote Open carries the 256-byte name segment."""
        model = STANDARD_3MBIT
        total = (model.stub_pre
                 + model.remote_transaction(request_segment=NAME_SEGMENT_BYTES)
                 + model.stub_post)
        assert total == pytest.approx(3.70e-3, rel=0.01)

    def test_prefix_delta_is_constant_and_about_3_9ms(self):
        """Sec. 6: the via-prefix delta is ~3.94 ms and target-independent."""
        # Delta = the extra local hop into the prefix server + its CPU; the
        # forward out replaces the client's own send, so nothing else changes.
        model = STANDARD_3MBIT
        delta = model.local_hop + model.prefix_server_cpu
        # paper: 3.93 (local target) vs 3.99 (remote target)
        assert delta == pytest.approx(3.94e-3, rel=0.02)

    def test_via_prefix_open_compositions(self):
        model = STANDARD_3MBIT
        delta = model.local_hop + model.prefix_server_cpu
        local = model.stub_pre + model.local_transaction() + model.stub_post
        remote = (model.stub_pre
                  + model.remote_transaction(request_segment=NAME_SEGMENT_BYTES)
                  + model.stub_post)
        assert local + delta == pytest.approx(5.14e-3, rel=0.01)
        assert remote + delta == pytest.approx(7.69e-3, rel=0.015)

    def test_moveto_64kb_is_338ms(self):
        """Sec. 3.1: 64 KB program load in 338 ms."""
        assert STANDARD_3MBIT.bulk_move_remote(64 * 1024) == pytest.approx(
            0.338, rel=0.005)

    def test_moveto_within_13_percent_of_raw_write_bound(self):
        """Sec. 3.1: 'within 13 percent of the maximum speed'."""
        model = STANDARD_3MBIT
        ratio = (model.bulk_move_remote(64 * 1024)
                 / model.bulk_move_raw(64 * 1024))
        assert ratio == pytest.approx(1.13, rel=0.001)

    def test_sequential_read_period_is_about_17_1ms(self):
        """Sec. 3.1: 17.13 ms/page with a 15 ms/page disk."""
        model = STANDARD_3MBIT
        period = (model.reply_transmit_busy(512) + DISK_PAGE_SECONDS)
        assert period == pytest.approx(17.13e-3, rel=0.005)


class TestModelMechanics:
    def test_wire_time_scales_with_bytes(self):
        model = STANDARD_3MBIT
        assert model.wire_time(100) > model.wire_time(10)
        # 66-byte frame (32B message + 34B overhead) at 3 Mbit/s = 176 us.
        assert model.wire_time(SHORT_MESSAGE_BYTES) == pytest.approx(176e-6)

    def test_10mbit_wire_is_faster_but_cpu_unchanged(self):
        assert (STANDARD_10MBIT.wire_time(1024)
                < STANDARD_3MBIT.wire_time(1024))
        assert (STANDARD_10MBIT.kernel_cpu_per_packet
                == STANDARD_3MBIT.kernel_cpu_per_packet)

    def test_10mbit_transaction_is_cpu_dominated(self):
        """The faster wire helps little: kernel CPU dominates (a conclusion
        the V authors drew repeatedly)."""
        slow = STANDARD_3MBIT.remote_transaction()
        fast = STANDARD_10MBIT.remote_transaction()
        assert fast < slow
        assert (slow - fast) / slow < 0.12

    def test_bulk_packet_count(self):
        model = STANDARD_3MBIT
        assert model.bulk_packets(0) == 0
        assert model.bulk_packets(1) == 1
        assert model.bulk_packets(DATA_PACKET_BYTES) == 1
        assert model.bulk_packets(DATA_PACKET_BYTES + 1) == 2
        assert model.bulk_packets(64 * 1024) == 64

    def test_local_bulk_move_is_linear_and_cheap(self):
        model = STANDARD_3MBIT
        assert model.bulk_move_local(0) == 0
        assert (model.bulk_move_local(64 * 1024)
                < model.bulk_move_remote(64 * 1024) / 10)

    def test_model_is_immutable(self):
        with pytest.raises(AttributeError):
            STANDARD_3MBIT.bandwidth_bps = 1.0  # type: ignore[misc]

    def test_custom_model(self):
        model = LatencyModel(bandwidth_bps=1e6)
        assert model.wire_time(66 - 34) == pytest.approx(66 * 8 / 1e6)
