"""Tests for the continuous-benchmark snapshot machinery and the gate.

The suite itself is exercised by running ``repro.obs.bench`` (slow, so the
benchmark runs live in benchmarks/); here we pin the parts the gate's
correctness rests on: snapshot naming, tolerance classification, and the
pure :func:`repro.obs.regress.compare` semantics -- including the two
acceptance cases (identical snapshots pass; a +20% latency injection
fails naming the metric).
"""

import json

import pytest

from repro.obs import regress
from repro.obs.bench import (
    BENCH_SCHEMA,
    next_snapshot_path,
    repo_root,
    snapshot_paths,
    write_snapshot,
)
from repro.obs.regress import Finding, compare, main, rule_for


def make_snapshot(experiments: dict, quick: bool = False,
                  schema: int = BENCH_SCHEMA) -> dict:
    return {
        "schema": schema,
        "kind": "bench-trajectory",
        "git_sha": "deadbeef",
        "seed": 0,
        "quick": quick,
        "experiments": {
            key: {"metrics": dict(metrics)}
            for key, metrics in experiments.items()},
    }


BASE = {
    "e4": {"remote_via_prefix_ms": 7.6127, "prefix_delta_remote_ms": 3.93},
    "e7": {"hops4_messages": 22, "hops4_open_ms": 18.5},
    "e8c": {"distributed_one_down_reachable_rate": 0.92},
    "e11": {"file_read_kbs": 29.9},
}


class TestSnapshotNaming:
    def test_next_index_counts_up_from_existing(self, tmp_path):
        (tmp_path / "benchmarks").mkdir()
        assert next_snapshot_path(tmp_path).name == "BENCH_0.json"
        write_snapshot(make_snapshot(BASE), tmp_path / "BENCH_0.json")
        write_snapshot(make_snapshot(BASE), tmp_path / "BENCH_4.json")
        (tmp_path / "BENCH_x.json").write_text("{}")  # not a snapshot name
        assert [i for i, __ in snapshot_paths(tmp_path)] == [0, 4]
        assert next_snapshot_path(tmp_path).name == "BENCH_5.json"

    def test_repo_root_walks_up_to_benchmarks_dir(self, tmp_path):
        (tmp_path / "benchmarks").mkdir()
        nested = tmp_path / "src" / "deep"
        nested.mkdir(parents=True)
        assert repo_root(nested) == tmp_path
        with pytest.raises(FileNotFoundError):
            repo_root(tmp_path.parent)

    def test_committed_baseline_matches_schema(self):
        """BENCH_0.json at the real repo root is a valid gate baseline."""
        baseline = json.loads(
            (repo_root() / "BENCH_0.json").read_text())
        assert baseline["schema"] == BENCH_SCHEMA
        assert baseline["quick"] is False
        assert "e7" in baseline["experiments"]
        # A latency and a count: the two tolerance families the gate uses.
        metrics = baseline["experiments"]["e7"]["metrics"]
        assert "hops4_open_ms" in metrics and "hops4_messages" in metrics


class TestToleranceRules:
    def test_suffix_classification(self):
        assert rule_for("e4", "remote_via_prefix_ms") == ("lower", "rel", 0.02)
        assert rule_for("e11", "file_read_kbs") == ("higher", "rel", 0.02)
        assert rule_for("e8c", "x_rate") == ("higher", "abs", 0.005)
        assert rule_for("e9", "advantage64_ratio") == ("both", "rel", 0.02)
        # Counts and bytes: exact.
        assert rule_for("e7", "hops4_messages") == ("both", "abs", 0.0)

    def test_override_beats_suffix(self):
        assert rule_for("e5", "code_bytes") == ("both", "rel", 0.50)


class TestCompare:
    def test_identical_snapshots_have_no_findings(self):
        assert compare(make_snapshot(BASE), make_snapshot(BASE)) == []

    def test_twenty_percent_latency_injection_fails_naming_metric(self):
        candidate = make_snapshot(BASE)
        metric = candidate["experiments"]["e4"]["metrics"]
        metric["remote_via_prefix_ms"] *= 1.20
        findings = compare(make_snapshot(BASE), candidate)
        regressed = [f for f in findings if f.verdict == "regressed"]
        assert [f.name for f in regressed] == ["e4.remote_via_prefix_ms"]
        assert "e4.remote_via_prefix_ms" in regressed[0].describe()
        assert "+20.00%" in regressed[0].describe()

    def test_faster_latency_is_improved_not_regressed(self):
        candidate = make_snapshot(BASE)
        candidate["experiments"]["e4"]["metrics"]["remote_via_prefix_ms"] *= 0.8
        findings = compare(make_snapshot(BASE), candidate)
        assert [f.verdict for f in findings] == ["improved"]

    def test_count_drift_is_exact(self):
        candidate = make_snapshot(BASE)
        candidate["experiments"]["e7"]["metrics"]["hops4_messages"] = 23
        findings = compare(make_snapshot(BASE), candidate)
        assert [f.name for f in findings] == ["e7.hops4_messages"]
        assert findings[0].verdict == "regressed"

    def test_throughput_and_rate_directions(self):
        candidate = make_snapshot(BASE)
        candidate["experiments"]["e11"]["metrics"]["file_read_kbs"] *= 0.9
        candidate["experiments"]["e8c"]["metrics"][
            "distributed_one_down_reachable_rate"] = 0.90
        findings = {f.name: f.verdict
                    for f in compare(make_snapshot(BASE), candidate)}
        assert findings == {"e11.file_read_kbs": "regressed",
                            "e8c.distributed_one_down_reachable_rate":
                                "regressed"}

    def test_quick_candidate_may_omit_metrics_and_experiments(self):
        quick = make_snapshot({"e4": BASE["e4"]}, quick=True)
        del quick["experiments"]["e4"]["metrics"]["prefix_delta_remote_ms"]
        assert compare(make_snapshot(BASE), quick) == []

    def test_full_candidate_missing_experiment_fails(self):
        candidate = make_snapshot(
            {k: v for k, v in BASE.items() if k != "e7"})
        findings = compare(make_snapshot(BASE), candidate)
        assert [(f.name, f.verdict) for f in findings] == [("e7.(all)",
                                                            "missing")]

    def test_full_candidate_missing_metric_fails(self):
        candidate = make_snapshot(BASE)
        del candidate["experiments"]["e7"]["metrics"]["hops4_open_ms"]
        findings = compare(make_snapshot(BASE), candidate)
        assert [f.name for f in findings] == ["e7.hops4_open_ms"]
        assert "missing from" in findings[0].describe()

    def test_schema_mismatch_raises(self):
        with pytest.raises(ValueError, match="schema"):
            compare(make_snapshot(BASE, schema=99), make_snapshot(BASE))

    def test_extra_candidate_metrics_are_ignored(self):
        """New metrics enter the gate only once a new baseline commits."""
        candidate = make_snapshot(BASE)
        candidate["experiments"]["e4"]["metrics"]["new_ms"] = 1.0
        assert compare(make_snapshot(BASE), candidate) == []


class TestFinding:
    def test_name_and_describe(self):
        finding = Finding("e4", "local_ms", 1.0, 1.5, 0.02, "regressed")
        assert finding.name == "e4.local_ms"
        assert "1 -> 1.5" in finding.describe()


class TestMainGate:
    def write_pair(self, tmp_path, baseline, candidate):
        base_path = tmp_path / "BENCH_0.json"
        cand_path = tmp_path / "BENCH_1.json"
        base_path.write_text(json.dumps(baseline))
        cand_path.write_text(json.dumps(candidate))
        return str(base_path), str(cand_path)

    def test_identical_pair_exits_zero(self, tmp_path, capsys):
        base, cand = self.write_pair(tmp_path, make_snapshot(BASE),
                                     make_snapshot(BASE))
        assert main(["--baseline", base, "--candidate", cand]) == 0
        assert "OK: no regressions" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        candidate = make_snapshot(BASE)
        candidate["experiments"]["e4"]["metrics"]["remote_via_prefix_ms"] *= 1.2
        base, cand = self.write_pair(tmp_path, make_snapshot(BASE), candidate)
        assert main(["--baseline", base, "--candidate", cand]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED: e4.remote_via_prefix_ms" in out
        assert "FAIL: 1 metric(s) regressed: e4.remote_via_prefix_ms" in out

    def test_default_pair_needs_two_snapshots(self, tmp_path):
        (tmp_path / "benchmarks").mkdir()
        write_snapshot(make_snapshot(BASE), tmp_path / "BENCH_0.json")
        with pytest.raises(FileNotFoundError):
            regress.default_pair(tmp_path)
        write_snapshot(make_snapshot(BASE), tmp_path / "BENCH_3.json")
        base, cand = regress.default_pair(tmp_path)
        assert (base.name, cand.name) == ("BENCH_0.json", "BENCH_3.json")
