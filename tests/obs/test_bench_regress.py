"""Tests for the continuous-benchmark snapshot machinery and the gate.

The suite itself is exercised by running ``repro.obs.bench`` (slow, so the
benchmark runs live in benchmarks/); here we pin the parts the gate's
correctness rests on: snapshot naming, tolerance classification, and the
pure :func:`repro.obs.regress.compare` semantics -- including the two
acceptance cases (identical snapshots pass; a +20% latency injection
fails naming the metric).
"""

import json

import pytest

from repro.obs import regress
from repro.obs.bench import (
    BENCH_SCHEMA,
    next_snapshot_path,
    pick_rounds,
    repo_root,
    snapshot_paths,
    trajectory_point,
    write_snapshot,
)
from repro.obs.regress import Finding, compare, compare_all, main, rule_for


def make_snapshot(experiments: dict, quick: bool = False,
                  schema: int = BENCH_SCHEMA,
                  wall: dict | None = None) -> dict:
    """``wall`` maps experiment key -> events/sec for its ``wall`` section."""
    document = {
        "schema": schema,
        "kind": "bench-trajectory",
        "git_sha": "deadbeef",
        "seed": 0,
        "quick": quick,
        "experiments": {
            key: {"metrics": dict(metrics)}
            for key, metrics in experiments.items()},
    }
    for key, rate in (wall or {}).items():
        document["experiments"][key]["wall"] = {
            "events": 1000, "seconds": round(1000 / rate, 6),
            "wall_events_per_sec": rate}
    return document


BASE = {
    "e4": {"remote_via_prefix_ms": 7.6127, "prefix_delta_remote_ms": 3.93},
    "e7": {"hops4_messages": 22, "hops4_open_ms": 18.5},
    "e8c": {"distributed_one_down_reachable_rate": 0.92},
    "e11": {"file_read_kbs": 29.9},
}


class TestSnapshotNaming:
    def test_next_index_counts_up_from_existing(self, tmp_path):
        (tmp_path / "benchmarks").mkdir()
        assert next_snapshot_path(tmp_path).name == "BENCH_0.json"
        write_snapshot(make_snapshot(BASE), tmp_path / "BENCH_0.json")
        write_snapshot(make_snapshot(BASE), tmp_path / "BENCH_4.json")
        (tmp_path / "BENCH_x.json").write_text("{}")  # not a snapshot name
        assert [i for i, __ in snapshot_paths(tmp_path)] == [0, 4]
        assert next_snapshot_path(tmp_path).name == "BENCH_5.json"

    def test_repo_root_walks_up_to_benchmarks_dir(self, tmp_path):
        (tmp_path / "benchmarks").mkdir()
        nested = tmp_path / "src" / "deep"
        nested.mkdir(parents=True)
        assert repo_root(nested) == tmp_path
        with pytest.raises(FileNotFoundError):
            repo_root(tmp_path.parent)

    def test_committed_baseline_matches_schema(self):
        """BENCH_0.json at the real repo root is a valid gate baseline."""
        baseline = json.loads(
            (repo_root() / "BENCH_0.json").read_text())
        assert baseline["schema"] == BENCH_SCHEMA
        assert baseline["quick"] is False
        assert "e7" in baseline["experiments"]
        # A latency and a count: the two tolerance families the gate uses.
        metrics = baseline["experiments"]["e7"]["metrics"]
        assert "hops4_open_ms" in metrics and "hops4_messages" in metrics


class TestToleranceRules:
    def test_suffix_classification(self):
        assert rule_for("e4", "remote_via_prefix_ms") == ("lower", "rel", 0.02)
        assert rule_for("e11", "file_read_kbs") == ("higher", "rel", 0.02)
        assert rule_for("e8c", "x_rate") == ("higher", "abs", 0.005)
        assert rule_for("e9", "advantage64_ratio") == ("both", "rel", 0.02)
        # Counts and bytes: exact.
        assert rule_for("e7", "hops4_messages") == ("both", "abs", 0.0)

    def test_override_beats_suffix(self):
        assert rule_for("e5", "table_bytes_12_prefixes") == \
            ("both", "rel", 0.50)


class TestCompare:
    def test_identical_snapshots_have_no_findings(self):
        assert compare(make_snapshot(BASE), make_snapshot(BASE)) == []

    def test_twenty_percent_latency_injection_fails_naming_metric(self):
        candidate = make_snapshot(BASE)
        metric = candidate["experiments"]["e4"]["metrics"]
        metric["remote_via_prefix_ms"] *= 1.20
        findings = compare(make_snapshot(BASE), candidate)
        regressed = [f for f in findings if f.verdict == "regressed"]
        assert [f.name for f in regressed] == ["e4.remote_via_prefix_ms"]
        assert "e4.remote_via_prefix_ms" in regressed[0].describe()
        assert "+20.00%" in regressed[0].describe()

    def test_faster_latency_is_improved_not_regressed(self):
        candidate = make_snapshot(BASE)
        candidate["experiments"]["e4"]["metrics"]["remote_via_prefix_ms"] *= 0.8
        findings = compare(make_snapshot(BASE), candidate)
        assert [f.verdict for f in findings] == ["improved"]

    def test_count_drift_is_exact(self):
        candidate = make_snapshot(BASE)
        candidate["experiments"]["e7"]["metrics"]["hops4_messages"] = 23
        findings = compare(make_snapshot(BASE), candidate)
        assert [f.name for f in findings] == ["e7.hops4_messages"]
        assert findings[0].verdict == "regressed"

    def test_throughput_and_rate_directions(self):
        candidate = make_snapshot(BASE)
        candidate["experiments"]["e11"]["metrics"]["file_read_kbs"] *= 0.9
        candidate["experiments"]["e8c"]["metrics"][
            "distributed_one_down_reachable_rate"] = 0.90
        findings = {f.name: f.verdict
                    for f in compare(make_snapshot(BASE), candidate)}
        assert findings == {"e11.file_read_kbs": "regressed",
                            "e8c.distributed_one_down_reachable_rate":
                                "regressed"}

    def test_quick_candidate_may_omit_metrics_and_experiments(self):
        quick = make_snapshot({"e4": BASE["e4"]}, quick=True)
        del quick["experiments"]["e4"]["metrics"]["prefix_delta_remote_ms"]
        assert compare(make_snapshot(BASE), quick) == []

    def test_full_candidate_missing_experiment_fails(self):
        candidate = make_snapshot(
            {k: v for k, v in BASE.items() if k != "e7"})
        findings = compare(make_snapshot(BASE), candidate)
        assert [(f.name, f.verdict) for f in findings] == [("e7.(all)",
                                                            "missing")]

    def test_full_candidate_missing_metric_fails(self):
        candidate = make_snapshot(BASE)
        del candidate["experiments"]["e7"]["metrics"]["hops4_open_ms"]
        findings = compare(make_snapshot(BASE), candidate)
        assert [f.name for f in findings] == ["e7.hops4_open_ms"]
        assert "missing from" in findings[0].describe()

    def test_schema_mismatch_raises(self):
        with pytest.raises(ValueError, match="schema"):
            compare(make_snapshot(BASE, schema=99), make_snapshot(BASE))

    def test_extra_candidate_metrics_are_ignored(self):
        """New metrics enter the gate only once a new baseline commits."""
        candidate = make_snapshot(BASE)
        candidate["experiments"]["e4"]["metrics"]["new_ms"] = 1.0
        assert compare(make_snapshot(BASE), candidate) == []


class TestWallGate:
    """The wall-clock dimension: loose, higher-is-better, opt-in."""

    def test_identical_wall_sections_pass(self):
        base = make_snapshot(BASE, wall={"e4": 50000.0})
        assert compare(base, make_snapshot(BASE, wall={"e4": 50000.0})) == []

    def test_throughput_collapse_fails_at_the_default_tolerance(self):
        # Default tolerance is 0.5: losing more than half the baseline
        # rate is an engine-speed collapse, anything less is machine noise.
        base = make_snapshot(BASE, wall={"e4": 50000.0})
        slower = make_snapshot(BASE, wall={"e4": 24000.0})
        findings = compare(base, slower)
        assert [(f.name, f.verdict) for f in findings] == \
            [("e4.wall_events_per_sec", "regressed")]
        barely = make_snapshot(BASE, wall={"e4": 26000.0})
        assert compare(base, barely) == []

    def test_wall_tolerance_is_adjustable(self):
        base = make_snapshot(BASE, wall={"e4": 50000.0})
        slower = make_snapshot(BASE, wall={"e4": 40000.0})
        assert compare(base, slower) == []
        findings = compare(base, slower, wall_tolerance=0.1)
        assert [f.verdict for f in findings] == ["regressed"]
        assert findings[0].allowed == pytest.approx(5000.0)

    def test_faster_wall_is_improved(self):
        base = make_snapshot(BASE, wall={"e4": 10000.0})
        faster = make_snapshot(BASE, wall={"e4": 60000.0})
        assert [f.verdict for f in compare(base, faster)] == ["improved"]

    def test_missing_wall_on_either_side_skips_the_comparison(self):
        # Pre-telemetry baselines carry no wall section; its absence is
        # not a failure on either side (unlike a missing metric).
        with_wall = make_snapshot(BASE, wall={"e4": 50000.0})
        without = make_snapshot(BASE)
        assert compare(with_wall, without) == []
        assert compare(without, with_wall) == []


class TestCompareAll:
    def test_every_metric_gets_a_verdict(self):
        base = make_snapshot(BASE, wall={"e4": 50000.0})
        findings = compare_all(base, make_snapshot(BASE,
                                                   wall={"e4": 50000.0}))
        metric_count = sum(len(metrics) for metrics in BASE.values())
        assert len(findings) == metric_count + 1      # + the wall verdict
        assert all(f.verdict == "ok" and f.passes for f in findings)

    def test_compare_is_compare_all_minus_ok(self):
        candidate = make_snapshot(BASE)
        candidate["experiments"]["e4"]["metrics"]["remote_via_prefix_ms"] *= 1.2
        all_findings = compare_all(make_snapshot(BASE), candidate)
        assert compare(make_snapshot(BASE), candidate) == \
            [f for f in all_findings if f.verdict != "ok"]


class TestFinding:
    def test_name_and_describe(self):
        finding = Finding("e4", "local_ms", 1.0, 1.5, 0.02, "regressed")
        assert finding.name == "e4.local_ms"
        assert "1 -> 1.5" in finding.describe()

    def test_to_record_round_trips_the_verdict(self):
        finding = Finding("e4", "local_ms", 1.0, 1.5, 0.02, "regressed")
        assert finding.to_record() == {
            "experiment": "e4", "metric": "local_ms",
            "name": "e4.local_ms", "baseline": 1.0, "candidate": 1.5,
            "delta": pytest.approx(0.5), "allowed": 0.02,
            "verdict": "regressed", "pass": False}

    def test_to_record_maps_missing_nan_to_null(self):
        finding = Finding("e7", "hops4_open_ms", 18.5, float("nan"), 0.0,
                          "missing")
        record = finding.to_record()
        assert record["candidate"] is None
        assert record["delta"] is None
        assert record["pass"] is False


class TestMainGate:
    def write_pair(self, tmp_path, baseline, candidate):
        base_path = tmp_path / "BENCH_0.json"
        cand_path = tmp_path / "BENCH_1.json"
        base_path.write_text(json.dumps(baseline))
        cand_path.write_text(json.dumps(candidate))
        return str(base_path), str(cand_path)

    def test_identical_pair_exits_zero(self, tmp_path, capsys):
        base, cand = self.write_pair(tmp_path, make_snapshot(BASE),
                                     make_snapshot(BASE))
        assert main(["--baseline", base, "--candidate", cand]) == 0
        assert "OK: no regressions" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        candidate = make_snapshot(BASE)
        candidate["experiments"]["e4"]["metrics"]["remote_via_prefix_ms"] *= 1.2
        base, cand = self.write_pair(tmp_path, make_snapshot(BASE), candidate)
        assert main(["--baseline", base, "--candidate", cand]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED: e4.remote_via_prefix_ms" in out
        assert "FAIL: 1 metric(s) regressed: e4.remote_via_prefix_ms" in out

    def test_default_pair_needs_two_snapshots(self, tmp_path):
        (tmp_path / "benchmarks").mkdir()
        write_snapshot(make_snapshot(BASE), tmp_path / "BENCH_0.json")
        with pytest.raises(FileNotFoundError):
            regress.default_pair(tmp_path)
        write_snapshot(make_snapshot(BASE), tmp_path / "BENCH_3.json")
        base, cand = regress.default_pair(tmp_path)
        assert (base.name, cand.name) == ("BENCH_0.json", "BENCH_3.json")

    def test_json_verdict_document(self, tmp_path, capsys):
        candidate = make_snapshot(BASE, wall={"e4": 50000.0})
        candidate["experiments"]["e4"]["metrics"]["remote_via_prefix_ms"] *= 1.2
        base, cand = self.write_pair(
            tmp_path, make_snapshot(BASE, wall={"e4": 50000.0}), candidate)
        code = main(["--baseline", base, "--candidate", cand, "--json"])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["kind"] == "bench-regress"
        assert document["pass"] is False
        assert document["wall_tolerance"] == regress.DEFAULT_WALL_TOLERANCE
        metric_count = sum(len(metrics) for metrics in BASE.values())
        assert document["counts"] == {"compared": metric_count + 1,
                                      "regressed": 1, "improved": 0,
                                      "exempt": 0}
        by_name = {record["name"]: record for record in document["metrics"]}
        assert len(by_name) == metric_count + 1       # every verdict present
        assert by_name["e4.remote_via_prefix_ms"]["verdict"] == "regressed"
        assert by_name["e4.wall_events_per_sec"]["pass"] is True

    def test_json_pass_exits_zero(self, tmp_path, capsys):
        base, cand = self.write_pair(tmp_path, make_snapshot(BASE),
                                     make_snapshot(BASE))
        assert main(["--baseline", base, "--candidate", cand, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["pass"] is True

    def test_wall_tolerance_flag_reaches_the_gate(self, tmp_path, capsys):
        base, cand = self.write_pair(
            tmp_path, make_snapshot(BASE, wall={"e4": 50000.0}),
            make_snapshot(BASE, wall={"e4": 40000.0}))
        args = ["--baseline", base, "--candidate", cand]
        assert main(args) == 0                        # default 0.5: passes
        assert main(args + ["--wall-tolerance", "0.1"]) == 1
        assert "e4.wall_events_per_sec" in capsys.readouterr().out


class TestTrajectoryHelpers:
    """The shared quick-mode contract the bench modules lean on."""

    def test_quick_skips_secondary_without_measuring_it(self):
        calls = []

        def expensive():
            calls.append(True)
            return {"secondary_ms": 9.0}

        assert trajectory_point(True, {"primary_ms": 1.0}, expensive) == \
            {"primary_ms": 1.0}
        assert not calls                              # never even ran
        assert trajectory_point(False, {"primary_ms": 1.0}, expensive) == \
            {"primary_ms": 1.0, "secondary_ms": 9.0}

    def test_secondary_accepts_a_plain_mapping(self):
        assert trajectory_point(False, {"a": 1.0}, {"b": 2.0}) == \
            {"a": 1.0, "b": 2.0}
        assert trajectory_point(True, {"a": 1.0}, {"b": 2.0}) == {"a": 1.0}
        assert trajectory_point(False, {"a": 1.0}) == {"a": 1.0}

    def test_pick_rounds(self):
        assert pick_rounds(False, 400, 10) == 400
        assert pick_rounds(True, 400, 10) == 10


class TestExemptions:
    def test_exempt_metric_never_fails_however_far_it_moves(self):
        base = make_snapshot({"e5": {"code_bytes": 1000.0,
                                     "table_bytes_12_prefixes": 500.0}})
        cand = make_snapshot({"e5": {"code_bytes": 9000.0,
                                     "table_bytes_12_prefixes": 500.0}})
        findings = compare_all(base, cand)
        [finding] = [f for f in findings if f.metric == "code_bytes"]
        assert finding.verdict == "exempt"
        assert finding.passes
        # The report still shows the movement and the written rationale.
        assert "1000 -> 9000" in finding.describe()
        assert "exempt:" in finding.describe()
        assert all(f.passes for f in findings)

    def test_exempt_metric_missing_from_candidate_is_not_flagged(self):
        # An exempt metric is outside the gate entirely: its absence must
        # not produce a "missing" failure either.
        base = make_snapshot({"e5": {"code_bytes": 1000.0}})
        cand = make_snapshot({"e5": {}})
        assert compare_all(base, cand) == []

    def test_every_exemption_carries_a_rationale(self):
        for name, rationale in regress.EXEMPTIONS.items():
            assert "." in name          # experiment.metric form
            assert len(rationale) > 10  # a real sentence, not a stub

    def test_non_exempt_metrics_still_gate(self):
        base = make_snapshot({"e5": {"table_bytes_12_prefixes": 500.0}})
        cand = make_snapshot({"e5": {"table_bytes_12_prefixes": 5000.0}})
        [finding] = compare_all(base, cand)
        assert finding.verdict == "regressed"
        assert not finding.passes
