"""The monitoring CLI: sparklines, the monitor document, and exit status."""

import json

from repro.obs import monitor
from repro.obs.monitor import run_monitored, sparkline
from repro.obs.telemetry import SERIES_METRICS

DURATION = 2.0


class TestSparkline:
    def test_empty_and_flat(self):
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_ramp_uses_the_full_range(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_long_series_buckets_to_width(self):
        line = sparkline([float(index) for index in range(400)], width=40)
        assert len(line) == 40
        assert line[0] == "▁" and line[-1] == "█"


class TestRunMonitored:
    def test_document_shape_and_delivery(self):
        document = run_monitored(duration=DURATION)
        assert document["kind"] == "obs-monitor"
        assert document["schema"] == monitor.MONITOR_SCHEMA
        assert set(document["hosts"]) == {"ws-mann", "vax1"}
        for metrics in document["hosts"].values():
            assert set(metrics) == set(SERIES_METRICS)
        # Every summarised number came back through [obs]; the workload
        # host must have sampled activity.
        resolutions = document["hosts"]["ws-mann"]["resolutions"]
        assert resolutions["samples"] > 0
        assert resolutions["max"] >= 1
        assert document["reads"]["ok"] > 0
        assert document["delivery"]["match"] is True
        assert document["delivery"]["read_through_obs"] == \
            document["delivery"]["emitted"]

    def test_same_seed_same_document(self):
        first = run_monitored(duration=DURATION)
        second = run_monitored(duration=DURATION)
        assert first == second

    def test_alert_tail_sees_fire_before_resolve(self):
        tailed = []
        document = run_monitored(duration=5.0,
                                 on_alert=lambda event: tailed.append(event))
        assert document["alerts"]["fired"] >= 1
        assert [event.to_record() for event in tailed] == \
            document["alerts"]["events"]
        assert tailed[0].event == "fire"


class TestCli:
    def test_json_mode_emits_the_document(self, capsys):
        code = monitor.main(["--json", "--duration", str(DURATION)])
        out = capsys.readouterr().out
        document = json.loads(out)
        assert code == 0
        assert document["kind"] == "obs-monitor"
        # The JSON document carries summaries, not raw sample arrays.
        for metrics in document["hosts"].values():
            assert all("values" not in summary
                       for summary in metrics.values())

    def test_text_mode_renders_tables_and_tail(self, capsys):
        code = monitor.main(["--duration", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FIRE" in out                       # the live tail
        assert "[obs]/hosts/ws-mann/timeseries/*" in out
        assert any(char in out for char in "▂▃▄▅▆▇█")
        assert "-- match" in out


class TestShardedMonitoring:
    def test_document_carries_every_hosts_shard_map_version(self):
        document = run_monitored(duration=DURATION, shards=2)
        assert document["scenario"]["shards"] == 2
        maps = document["shard_maps"]
        # Replica hosts report their installed map; the workstation's
        # registered resolver reports the map it routes by.
        assert set(maps) >= {"ns1", "ns2", "ws-mann"}
        assert all(isinstance(version, int) and version >= 1
                   for version in maps.values())
        # A fresh cluster with no membership changes stays at version 1.
        assert maps["ns1"] == maps["ns2"] == 1
        # The sharded workload flowed: hosts still carry the full metric
        # set, now with the ns hosts sampled alongside vax1.
        assert {"ns1", "ns2"} <= set(document["hosts"])
        assert document["reads"]["ok"] > 0

    def test_default_mode_has_no_shard_section(self):
        document = run_monitored(duration=DURATION)
        assert document["scenario"]["shards"] == 0
        assert document["shard_maps"] == {}

    def test_sharded_run_is_deterministic(self):
        first = run_monitored(duration=DURATION, shards=2)
        second = run_monitored(duration=DURATION, shards=2)
        assert first == second

    def test_cli_shards_flag_renders_map_line(self, capsys):
        code = monitor.main(["--duration", str(DURATION), "--shards", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "shard maps:" in out
        assert "ns1=v1" in out
