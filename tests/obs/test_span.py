"""Unit tests for spans, span contexts, and trace-tree reconstruction."""

import pytest

from repro.obs.span import Span, SpanContext, TraceCollector, build_tree


class TestSpanBasics:
    def test_root_span_starts_a_new_trace(self):
        collector = TraceCollector()
        a = collector.start("resolve:OPEN_FILE", 0.0)
        b = collector.start("resolve:OPEN_FILE", 1.0)
        assert a.parent_id is None
        assert b.parent_id is None
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_child_joins_parent_trace(self):
        collector = TraceCollector()
        root = collector.start("resolve:OPEN_FILE", 0.0)
        child = collector.start("ipc.txn", 0.1, parent=root.context)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_ids_are_deterministic_across_collectors(self):
        def run():
            collector = TraceCollector()
            root = collector.start("a", 0.0)
            child = collector.start("b", 0.1, parent=root.context)
            return (root.trace_id, root.span_id,
                    child.trace_id, child.span_id, child.parent_id)

        assert run() == run()

    def test_finish_sets_end_and_merges_attrs(self):
        collector = TraceCollector()
        span = collector.start("op", 1.0, colour="blue")
        assert not span.finished
        assert span.duration == 0.0
        collector.finish(span, 1.5, reply_code="OK")
        assert span.finished
        assert span.duration == 0.5
        assert span.attrs == {"colour": "blue", "reply_code": "OK"}

    def test_annotate_and_append_attr(self):
        span = Span("op", SpanContext(1, 1), start=0.0)
        span.annotate(mode="r")
        span.append_attr("walk", "bin=context")
        span.append_attr("walk", "ls=leaf")
        assert span.attrs["mode"] == "r"
        assert span.attrs["walk"] == ["bin=context", "ls=leaf"]

    def test_emit_records_completed_span(self):
        collector = TraceCollector()
        span = collector.emit("net.wire", 0.2, 0.3, bytes=64)
        assert span.finished
        assert span.duration == pytest.approx(0.1)
        assert span.attrs["bytes"] == 64
        assert collector.spans == [span]


class TestCollectorQueries:
    def _populate(self):
        collector = TraceCollector()
        root = collector.start("resolve:OPEN_FILE", 0.0)
        hop = collector.start("server:prefix", 0.2, parent=root.context)
        late = collector.start("server:fileserver", 0.5, parent=hop.context)
        collector.finish(late, 0.7)
        collector.finish(hop, 0.8)
        collector.finish(root, 1.0)
        other = collector.start("resolve:DELETE_NAME", 2.0)
        return collector, root, hop, late, other

    def test_trace_returns_spans_in_start_order(self):
        collector, root, hop, late, __ = self._populate()
        assert collector.trace(root.trace_id) == [root, hop, late]

    def test_trace_ids_deduplicated_in_first_seen_order(self):
        collector, root, __, __, other = self._populate()
        assert collector.trace_ids() == [root.trace_id, other.trace_id]

    def test_unfinished_lists_open_spans(self):
        collector, __, __, __, other = self._populate()
        assert collector.unfinished() == [other]

    def test_find_by_prefix_and_trace(self):
        collector, root, hop, late, other = self._populate()
        assert collector.find("server:") == [hop, late]
        assert collector.find("resolve:", trace_id=other.trace_id) == [other]
        assert len(collector) == 4


class TestTreeBuilding:
    def test_tree_links_parents_and_orders_children_by_start(self):
        collector = TraceCollector()
        root = collector.start("root", 0.0)
        second = collector.start("second", 0.6, parent=root.context)
        first = collector.start("first", 0.1, parent=root.context)
        for span in (second, first, root):
            collector.finish(span, 1.0)
        roots = collector.tree(root.trace_id)
        assert len(roots) == 1
        assert roots[0].span is root
        assert [node.span for node in roots[0].children] == [first, second]

    def test_orphaned_span_becomes_a_root(self):
        # A truncated export may lack the parent; the child must still render.
        orphan = Span("hop", SpanContext(trace_id=7, span_id=3, parent_id=99),
                      start=0.5, end=0.6)
        roots = build_tree([orphan])
        assert len(roots) == 1
        assert roots[0].span is orphan

    def test_walk_is_depth_first_with_depths(self):
        collector = TraceCollector()
        root = collector.start("root", 0.0)
        mid = collector.start("mid", 0.1, parent=root.context)
        leaf = collector.start("leaf", 0.2, parent=mid.context)
        sibling = collector.start("sibling", 0.3, parent=root.context)
        for span in (leaf, mid, sibling, root):
            collector.finish(span, 1.0)
        (tree,) = collector.tree(root.trace_id)
        visited = [(depth, node.span.name) for depth, node in tree.walk()]
        assert visited == [(0, "root"), (1, "mid"), (2, "leaf"),
                           (1, "sibling")]
