"""Tests for the JSONL exporters, readers, and the report renderers."""

import json

import pytest

from repro.obs.export import (
    read_spans_jsonl,
    write_metrics_jsonl,
    write_spans_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.report import (
    REPORT_SCHEMA,
    critical_path,
    main,
    render_critical_path,
    render_metrics,
    render_slowest_table,
    render_timeline,
    render_trace,
    report_document,
    slowest_traces,
    trace_document,
)
from repro.obs.span import TraceCollector, build_tree


def sample_collector() -> TraceCollector:
    """Two traces: a forwarded two-hop resolution and a quick local one."""
    collector = TraceCollector()
    root = collector.start("resolve:OPEN_FILE", 0.0, actor="client-stub",
                           csname="[bin]ls")
    txn = collector.start("ipc.txn:OPEN_FILE", 0.0005, parent=root.context,
                          actor="kernel")
    prefix = collector.start("server:prefix", 0.001, parent=txn.context,
                             actor="prefix")
    fs = collector.start("server:fileserver", 0.003, parent=prefix.context,
                         actor="fileserver")
    collector.finish(fs, 0.006, reply_code="OK")
    collector.finish(prefix, 0.004, forwarded_to="pid:9")
    collector.finish(txn, 0.007)
    collector.finish(root, 0.008, reply_code="OK", ok=True)
    quick = collector.start("resolve:DELETE_NAME", 1.0, actor="client-stub",
                            csname="tmp.txt")
    collector.finish(quick, 1.002, reply_code="NOT_FOUND", ok=False)
    return collector


class TestExportRoundTrip:
    def test_write_then_read_preserves_spans(self, tmp_path):
        collector = sample_collector()
        path = tmp_path / "trace.jsonl"
        written = write_spans_jsonl(collector, path, actors={3: "fileserver"})
        assert written == len(collector.spans)
        parsed = read_spans_jsonl(path)
        assert parsed.actors == {3: "fileserver"}
        assert len(parsed.spans) == len(collector.spans)
        for original, loaded in zip(collector.spans, parsed.spans):
            assert loaded.name == original.name
            assert loaded.trace_id == original.trace_id
            assert loaded.span_id == original.span_id
            assert loaded.parent_id == original.parent_id
            assert loaded.start == original.start
            assert loaded.end == original.end
            assert loaded.attrs == original.attrs

    def test_unfinished_span_exports_with_null_end(self, tmp_path):
        collector = TraceCollector()
        collector.start("ipc.txn", 0.5)
        path = tmp_path / "open.jsonl"
        write_spans_jsonl(collector, path)
        record = json.loads(path.read_text().strip())
        assert record["end"] is None
        parsed = read_spans_jsonl(path)
        assert not parsed.spans[0].finished

    def test_meta_record_round_trips(self, tmp_path):
        """The leading meta record (seed, event count) survives a re-read."""
        collector = sample_collector()
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(collector, path,
                          meta={"seed": 7, "events_processed": 4242,
                                "dropped_events": 3})
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "meta"
        parsed = read_spans_jsonl(path)
        assert parsed.meta == {"seed": 7, "events_processed": 4242,
                               "dropped_events": 3}
        assert parsed.dropped_events == 3
        assert len(parsed.spans) == len(collector.spans)

    def test_empty_meta_writes_no_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(sample_collector(), path, meta={})
        kinds = [json.loads(line)["kind"]
                 for line in path.read_text().splitlines()]
        assert "meta" not in kinds

    def test_metrics_jsonl_uses_kind_discriminator(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("ipc.sends").incr(12)
        registry.gauge("servers").set(3)
        registry.histogram("lat").observe(0.002)
        path = tmp_path / "metrics.jsonl"
        written = write_metrics_jsonl(registry, path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert written == len(records) == 3
        kinds = {record["kind"] for record in records}
        assert kinds == {"counter", "gauge", "histogram"}


class TestRenderers:
    def test_timeline_lists_every_span_with_indentation(self):
        collector = sample_collector()
        roots = collector.tree(collector.spans[0].trace_id)
        text = render_timeline(roots)
        assert "resolve:OPEN_FILE" in text
        assert "    server:prefix" in text
        assert "      server:fileserver" in text
        assert "[client-stub]" in text

    def test_timeline_of_nothing(self):
        assert render_timeline([]) == "(empty trace)"

    def test_critical_path_is_exclusive_time(self):
        collector = sample_collector()
        roots = collector.tree(collector.spans[0].trace_id)
        totals = dict(critical_path(roots))
        # The prefix hop ran 1ms..4ms with a 3ms..6ms child: its overlap is
        # subtracted whole, so the exclusive time never double-counts.
        assert totals["fileserver"] == pytest.approx(0.003)
        assert totals["prefix"] == pytest.approx(0.0, abs=1e-12)
        text = render_critical_path(roots)
        assert "total" in text and "100.0%" in text

    def test_slowest_table_orders_by_total(self, tmp_path):
        collector = sample_collector()
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(collector, path)
        tracefile = read_spans_jsonl(path)
        rows = slowest_traces(tracefile, top=10)
        assert [row["hops"] for row in rows] == [2, 0]
        assert rows[0]["forwards"] == 1
        assert rows[1]["reply"] == "NOT_FOUND"
        table = render_slowest_table(tracefile, top=10)
        assert "'[bin]ls'" in table
        assert "NOT_FOUND" in table

    def test_render_trace_includes_sections_and_handles_missing(self, tmp_path):
        collector = sample_collector()
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(collector, path)
        tracefile = read_spans_jsonl(path)
        text = render_trace(tracefile, tracefile.spans[0].trace_id)
        assert "hop timeline:" in text
        assert "critical path" in text
        assert render_trace(tracefile, 999) == "trace 999 not found"

    def test_render_metrics_summary(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("ipc.sends").incr(2)
        registry.histogram("lat").observe(0.001)
        path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(registry, path)
        text = render_metrics(path)
        assert "ipc.sends" in text
        assert "lat" in text
        assert "name cache" not in text  # no namecache counters exported

    def test_render_metrics_cache_scoreboard(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("namecache.hits", source="hint").incr(7)
        registry.counter("namecache.hits", source="prefix").incr(2)
        registry.counter("namecache.misses").incr(1)
        registry.counter("namecache.fallbacks").incr(1)
        registry.counter("namecache.invalidations",
                         reason="stale-reply").incr(3)
        path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(registry, path)
        text = render_metrics(path)
        assert "name cache" in text
        assert "hits{source=hint}" in text
        assert "invalidations{reason=stale-reply}" in text
        # (7 + 2 hits - 1 stale fallback) / 10 lookups = 80%
        assert "80.0%" in text


class TestCli:
    def test_main_renders_slowest_and_one_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(sample_collector(), path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "slowest resolutions" in out
        assert "hop timeline:" in out

    def test_main_with_explicit_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        collector = sample_collector()
        write_spans_jsonl(collector, trace_path)
        registry = MetricsRegistry()
        registry.counter("ipc.sends").incr(1)
        metrics_path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(registry, metrics_path)
        target = collector.spans[-1].trace_id
        assert main([str(trace_path), "--trace", str(target),
                     "--metrics", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert f"trace {target}:" in out
        assert "ipc.sends" in out

    def test_main_reports_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 2
        assert "no spans" in capsys.readouterr().err


class TestJsonReport:
    def test_report_document_shape(self, tmp_path):
        collector = sample_collector()
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(collector, path,
                          meta={"seed": 0, "events_processed": 99})
        tracefile = read_spans_jsonl(path)
        document = report_document(tracefile)
        assert document["schema"] == REPORT_SCHEMA
        assert document["meta"] == {"seed": 0, "events_processed": 99}
        assert document["span_count"] == len(collector.spans)
        assert document["trace_count"] == 2
        # Slowest table: the forwarded trace outranks the quick local one.
        assert [row["hops"] for row in document["slowest"]] == [2, 0]
        assert document["slowest"][0]["csname"] == "[bin]ls"
        # Default trace selection: the single slowest, with full timeline.
        assert len(document["traces"]) == 1
        trace = document["traces"][0]
        assert trace["span_count"] == 4
        assert [r["depth"] for r in trace["timeline"]] == [0, 1, 2, 3]
        assert trace["unfinished_spans"] == []
        path_ms = {row["actor"]: row["exclusive_ms"]
                   for row in trace["critical_path"]}
        assert path_ms["fileserver"] == pytest.approx(3.0)

    def test_trace_document_missing_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(sample_collector(), path)
        assert trace_document(read_spans_jsonl(path), 999) is None

    def test_main_json_emits_parseable_document(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        write_spans_jsonl(sample_collector(), trace_path)
        registry = MetricsRegistry()
        registry.counter("ipc.sends").incr(5)
        metrics_path = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(registry, metrics_path)
        assert main([str(trace_path), "--json", "--all",
                     "--metrics", str(metrics_path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == REPORT_SCHEMA
        assert len(document["traces"]) == 2  # --all: every trace expanded
        assert document["metrics"][0] == {"kind": "counter",
                                          "name": "ipc.sends", "tags": {},
                                          "value": 5}

    def test_main_json_rejects_live_mode(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--live", "--json"])
