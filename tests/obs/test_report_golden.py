"""Golden-output tests for the report renderers and the CLI failure paths.

The renderers are pure functions, so their full output is pinned here
character-for-character against a deterministic five-hop fixture (the
``[obs]`` introspection chain: client stub -> kernel txn -> prefix server
-> root obs server -> remote stat server).  Formatting drift -- column
widths, bar scaling, percentage rounding -- fails loudly instead of
silently degrading every downstream report.
"""

import json
from types import SimpleNamespace

from repro.obs import Observability
from repro.obs.export import read_spans_jsonl, write_spans_jsonl
from repro.obs.report import (
    main,
    render_cache_summary,
    render_critical_path,
    render_dropped_warning,
    render_metrics_records,
    render_timeline,
)
from repro.obs.span import TraceCollector


def obs_chain_collector() -> TraceCollector:
    """A forwarded ``[obs]`` read: five spans, fixed timestamps."""
    collector = TraceCollector()
    root = collector.start("resolve:OPEN_FILE", 0.0, actor="ws1/client",
                           csname="[obs]/hosts/vax1/metrics")
    txn = collector.start("ipc.txn:OPEN_FILE", 0.0005, parent=root.context,
                          actor="ws1/kernel")
    prefix = collector.start("server:prefix-server", 0.001,
                             parent=txn.context, actor="ws1/prefix-server")
    obsroot = collector.start("server:obsserver", 0.002,
                              parent=prefix.context, actor="ws1/obsserver")
    stat = collector.start("server:statserver", 0.004,
                           parent=obsroot.context, actor="vax1/statserver")
    collector.finish(stat, 0.006, reply_code="OK")
    collector.finish(obsroot, 0.003, forwarded_to="pid:12")
    collector.finish(prefix, 0.0015, forwarded_to="pid:11")
    collector.finish(txn, 0.007)
    collector.finish(root, 0.0075, reply_code="OK", ok=True)
    return collector


GOLDEN_TIMELINE = """\
offset ms    dur ms  |                          |  span
    0.000     7.500  ############################  resolve:OPEN_FILE '[obs]/hosts/vax1/metrics'  [ws1/client]
    0.500     6.500  .########################...    ipc.txn:OPEN_FILE  [ws1/kernel]
    1.000     0.500  ...##.......................      server:prefix-server  [ws1/prefix-server]
    2.000     1.000  .......####.................        server:obsserver  [ws1/obsserver]
    4.000     2.000  ..............#######.......          server:statserver  [vax1/statserver]"""

GOLDEN_CRITICAL_PATH = """\
actor                        exclusive ms   share
ws1/kernel                          6.000   66.7%
vax1/statserver                     2.000   22.2%
ws1/client                          1.000   11.1%
ws1/prefix-server                   0.000    0.0%
ws1/obsserver                       0.000    0.0%
total                               9.000  100.0%"""

GOLDEN_CACHE_SUMMARY = """\
name cache                          value
lookups                                11
hits{source=hint}                       6
hits{source=prefix}                     3
misses                                  2
fallbacks (stale hits)                  1
invalidations{reason=crash}             1
effective hit rate                 72.7%"""


class TestGoldenRenderers:
    def test_timeline_golden(self):
        collector = obs_chain_collector()
        roots = collector.tree(collector.spans[0].trace_id)
        assert render_timeline(roots) == GOLDEN_TIMELINE

    def test_timeline_empty_golden(self):
        assert render_timeline([]) == "(empty trace)"

    def test_critical_path_golden(self):
        collector = obs_chain_collector()
        roots = collector.tree(collector.spans[0].trace_id)
        assert render_critical_path(roots) == GOLDEN_CRITICAL_PATH

    def test_critical_path_empty_is_total_only(self):
        text = render_critical_path([])
        lines = text.splitlines()
        assert len(lines) == 2  # header + zero total
        assert lines[1].startswith("total")
        assert "0.000" in lines[1] and "100.0%" in lines[1]

    def test_cache_summary_golden(self):
        counters = [
            {"kind": "counter", "name": "namecache.hits",
             "tags": {"source": "hint"}, "value": 6},
            {"kind": "counter", "name": "namecache.hits",
             "tags": {"source": "prefix"}, "value": 3},
            {"kind": "counter", "name": "namecache.misses",
             "tags": {}, "value": 2},
            {"kind": "counter", "name": "namecache.fallbacks",
             "tags": {}, "value": 1},
            {"kind": "counter", "name": "namecache.invalidations",
             "tags": {"reason": "crash"}, "value": 1},
        ]
        assert render_cache_summary(counters) == GOLDEN_CACHE_SUMMARY

    def test_cache_summary_without_cache_counters_is_empty(self):
        assert render_cache_summary(
            [{"kind": "counter", "name": "ipc.sends", "value": 3}]) == ""

    def test_metrics_records_renderer_handles_no_records(self):
        assert render_metrics_records([]) == "(no metrics)"


class TestDroppedEvents:
    """Satellite: ``Tracer.dropped`` must survive export and reach readers."""

    def test_export_meta_carries_tracer_drops(self):
        obs = Observability()
        obs.tracer = SimpleNamespace(dropped=5, limit=100)
        assert obs.export_meta() == {"dropped_events": 5, "event_limit": 100}

    def test_meta_round_trips_through_jsonl(self, tmp_path):
        collector = obs_chain_collector()
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(collector, path,
                          meta={"dropped_events": 7, "event_limit": 64})
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "meta"
        tracefile = read_spans_jsonl(path)
        assert tracefile.dropped_events == 7
        assert tracefile.meta["event_limit"] == 64
        assert len(tracefile.spans) == len(collector.spans)

    def test_clean_trace_has_no_warning(self, tmp_path):
        collector = obs_chain_collector()
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(collector, path)
        tracefile = read_spans_jsonl(path)
        assert tracefile.dropped_events == 0
        assert render_dropped_warning(tracefile) == ""

    def test_dropped_warning_golden(self, tmp_path):
        collector = obs_chain_collector()
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(collector, path,
                          meta={"dropped_events": 7, "event_limit": 64})
        tracefile = read_spans_jsonl(path)
        assert render_dropped_warning(tracefile) == (
            "warning: 7 trace event(s) dropped before export "
            "(ring buffer limit 64) -- this trace is incomplete")

    def test_cli_prints_the_warning(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(obs_chain_collector(), path,
                          meta={"dropped_events": 3})
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "warning: 3 trace event(s) dropped before export" in out
        assert "this trace is incomplete" in out


class TestCliFailurePaths:
    """Satellite: missing/empty traces fail clearly with exit code 2."""

    def test_missing_trace_file_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main([str(missing)]) == 2
        err = capsys.readouterr().err
        assert "cannot read trace file" in err
        assert str(missing) in err

    def test_empty_trace_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 2
        err = capsys.readouterr().err
        assert "contains no spans" in err
        assert "was the run traced?" in err

    def test_missing_metrics_file_exits_2(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        write_spans_jsonl(obs_chain_collector(), trace)
        assert main([str(trace), "--metrics",
                     str(tmp_path / "no-metrics.jsonl")]) == 2
        assert "cannot read metrics file" in capsys.readouterr().err
