"""Coherence auditor unit + protocol tests (repro.obs.audit).

The probe's bookkeeping and the classifier's taxonomy are pinned directly
on hand-built documents (every branch of the fresh/stale/incoherent/
expired/unverifiable lattice, ownership drift, map drift); the two walkers
are then exercised on a live sharded fleet -- ``audit_direct`` by memory
reads, ``audit_via_obs`` through the full ``[obs]`` forwarding chain --
and must agree.  E19 pins the costs; correctness lives here.
"""

import json

import pytest

from repro.core.context import ContextPair, WellKnownContext
from repro.core.shard import ShardCluster
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay
from repro.obs import audit
from repro.obs.audit import (
    CoherenceProbe,
    audit_direct,
    audit_via_obs,
    classify_fleet,
    collect_documents,
    enable_coherence,
    host_coherence_document,
    percentile,
)
from repro.runtime import files
from repro.runtime.session import Session
from repro.servers import VFileServer, start_server
from tests.helpers import run_on

PAYLOAD = b"audit-payload"


def sharded_system(n_replicas=3, n_prefixes=4, lease_ttl=0.5, seed=3,
                   armed=True):
    """vax1 file server + an ns* shard cluster, coherence probe armed."""
    domain = Domain(seed=seed)
    if armed:
        enable_coherence(domain)
    fs_host = domain.create_host("vax1")
    fileserver = VFileServer(user="mann")
    node = fileserver.store.make_path("data/f0.dat", directory=False)
    node.data[:] = PAYLOAD
    fs_handle = start_server(fs_host, fileserver)
    pair = ContextPair(fs_handle.pid, int(WellKnownContext.DEFAULT))
    cluster = ShardCluster(domain, domain.create_hosts(n_replicas,
                                                       prefix="ns"),
                           lease_ttl=lease_ttl)
    for index in range(n_prefixes):
        cluster.seed_binding(f"p{index}", pair)
    return domain, cluster, pair, fs_host, fs_handle


def session_for(domain, pair, server_pid, cache=None):
    return Session(current=pair, prefix_server=server_pid,
                   latency=domain.latency, cache=cache)


# ----------------------------------------------------------------- the probe


class TestCoherenceProbe:
    def test_notice_lag_is_apply_minus_send(self):
        probe = CoherenceProbe()
        probe.notice_sent(b"p0", 101, t=1.0)
        probe.notice_sent(b"p0", 102, t=1.0)
        probe.notice_applied(b"p0", 101, "ns2", t=1.005)
        assert probe.in_flight() == 1
        probe.notice_applied(b"p0", 102, "ns3", t=1.020)
        assert probe.in_flight() == 0
        assert probe.lags == [pytest.approx(0.005), pytest.approx(0.020)]
        digest = probe.summary()
        assert digest["notices_sent"] == 2
        assert digest["notices_applied"] == 2
        assert digest["invalidation_lag_ms"]["samples"] == 2
        assert digest["invalidation_lag_ms"]["max"] == pytest.approx(20.0)

    def test_per_peer_fifo_two_notices_one_prefix(self):
        # Two mutations of one prefix in flight to the same peer: lags must
        # pair FIFO, not collapse onto the latest send.
        probe = CoherenceProbe()
        probe.notice_sent(b"p0", 101, t=1.0)
        probe.notice_sent(b"p0", 101, t=2.0)
        probe.notice_applied(b"p0", 101, "ns2", t=2.5)
        probe.notice_applied(b"p0", 101, "ns2", t=2.6)
        assert probe.lags == [pytest.approx(1.5), pytest.approx(0.6)]

    def test_apply_without_send_counts_unmatched(self):
        probe = CoherenceProbe()
        probe.notice_applied(b"p0", 101, "ns2", t=1.0)
        assert probe.notices_unmatched == 1
        assert probe.lags == []

    def test_drain_tick_pops_all_five_series_keys(self):
        probe = CoherenceProbe()
        probe.lease_event("ns1", "grant")
        probe.negcache_hit("ns1")
        probe.shard_lookup("ns1", 0)
        probe.stale_hit("ns1", 0.25)
        bucket = probe.drain_tick("ns1")
        assert bucket == {
            "coherence.invalidation_lag": 0.0,
            "coherence.staleness_at_hit": pytest.approx(250.0),
            "coherence.lease_churn": 1.0,
            "coherence.negcache_hits": 1.0,
            "coherence.shard_hotness": 1.0,
        }
        # A quiet tick is dense zeros, never missing keys.
        quiet = probe.drain_tick("ns1")
        assert set(quiet) == set(bucket)
        assert all(value == 0.0 for value in quiet.values())

    def test_hooks_mirror_into_the_registry(self):
        domain = Domain(seed=1)
        probe = enable_coherence(domain)
        assert enable_coherence(domain) is probe      # idempotent
        probe.lease_event("ns1", "grant")
        probe.lease_event("ns1", "grant")
        probe.negcache_hit("c1")
        probe.notice_sent(b"p", 9, t=0.0)
        probe.notice_applied(b"p", 9, "ns2", t=0.1)
        registry = domain.metrics.registry
        assert registry.counter_value("coherence.lease_events",
                                      kind="grant") == 2
        assert registry.counter_value("coherence.negcache_hits",
                                      host="c1") == 1
        assert registry.counter_value("coherence.notices", phase="sent") == 1
        assert registry.counter_value("coherence.notices",
                                      phase="applied") == 1

    def test_percentile_is_nearest_rank(self):
        assert percentile([], 0.99) == 0.0
        values = [float(n) for n in range(1, 101)]
        assert percentile(values, 0.50) == 51.0   # round(0.5 * 99) == 50
        assert percentile(values, 0.99) == 99.0   # round(0.99 * 99) == 98
        assert percentile(values, 1.00) == 100.0
        assert percentile([3.0, 1.0, 2.0], 0.0) == 1.0  # sorts first


# --------------------------------------------------------------- provenance


class TestProvenanceEpochs:
    def test_seeded_bindings_carry_setup_stamps(self):
        __, cluster, __, __, __ = sharded_system(n_prefixes=3)
        for server in cluster.servers.values():
            for prefix in (b"p0", b"p1", b"p2"):
                binding = server.table.bindings[prefix]
                # Setup-time installs: distinct nonzero epochs, source 0.
                assert binding.epoch > 0
                assert binding.source == 0
            epochs = {server.table.bindings[p].epoch
                      for p in (b"p0", b"p1", b"p2")}
            assert len(epochs) == 3

    def test_mutation_stamps_owner_pid_and_bumps_epoch(self):
        domain, cluster, pair, __, __ = sharded_system(n_prefixes=2)
        owner = cluster.servers[cluster.map.owner_of(b"p0")]
        seeded = owner.table.bindings[b"p0"]
        before = (seeded.epoch, seeded.source)
        session = session_for(domain, pair, cluster.primary_pid())

        def client(session):
            yield from session.add_prefix("p0", pair, replace=True)
            yield from session.add_prefix("p0", pair, replace=True)

        run_on(domain, domain.create_host("mutator"), client(session))
        stamped = owner.table.bindings[b"p0"]
        # A runtime mutation's stamp names the authoring server: new
        # identity, source == the owner's pid.  Epochs are only monotonic
        # *per source* (the second rebind outranks the first); against the
        # setup-time stamp only inequality holds.
        assert (stamped.epoch, stamped.source) != before
        assert stamped.source == int(owner.pid.value)
        assert stamped.epoch == 2                 # two mutations, one owner
        # The SYNC fan-out copied the owner's stamp to every replica: one
        # authoritative mutation, one fleet-wide identity.
        for server in cluster.servers.values():
            binding = server.table.bindings[b"p0"]
            assert (binding.epoch, binding.source) == \
                (stamped.epoch, stamped.source)


# ---------------------------------------------------------------- documents


class TestHostCoherenceDocument:
    def test_host_without_name_state_is_a_disabled_stub(self):
        domain = Domain(seed=1)
        host = domain.create_host("plain")
        document = host_coherence_document(host)
        assert document == {"kind": "coherence", "host": "plain",
                            "t": domain.now, "enabled": False,
                            "replica": None, "resolver": None}

    def test_replica_host_exports_stamped_entries(self):
        domain, cluster, __, __, __ = sharded_system(n_prefixes=2)
        host = cluster.servers[0].host
        document = host_coherence_document(host)
        assert document["enabled"] is True
        replica = document["replica"]
        assert replica["replica_id"] == 0
        assert replica["map_version"] == cluster.map.version
        assert replica["lease_ttl"] == cluster.lease_ttl
        entries = {entry["prefix"]: entry for entry in replica["entries"]}
        assert set(entries) == {"p0", "p1"}
        for entry in entries.values():
            assert set(entry) >= {"prefix", "epoch", "source", "is_owner",
                                  "lease_expiry", "lease_fresh"}
            assert entry["epoch"] > 0

    def test_resolver_host_exports_bindings_and_negatives(self):
        domain, cluster, pair, __, __ = sharded_system(n_prefixes=2)
        client_host = domain.create_host("client")
        resolver = cluster.resolver(host=client_host, negative_ttl=5.0)
        session = session_for(domain, pair, cluster.primary_pid(),
                              cache=resolver)

        def client(session):
            yield from files.read_file(session, "[p0]data/f0.dat")
            try:
                yield from files.read_file(session, "[p1]data/missing.dat")
            except Exception:
                pass

        run_on(domain, client_host, client(session))
        document = host_coherence_document(client_host)
        assert document["enabled"] is True and document["replica"] is None
        resolver_doc = document["resolver"]
        assert resolver_doc["map_version"] == resolver.map.version
        bound = {entry["prefix"] for entry in resolver_doc["bindings"]}
        assert "p0" in bound
        assert [entry["name"] for entry in resolver_doc["negative"]] == \
            ["[p1]data/missing.dat"]

    def test_collect_documents_skips_crashed_hosts(self):
        domain, cluster, __, __, __ = sharded_system(n_replicas=3)
        cluster.servers[1].host.crash()
        names = [doc["host"] for doc in collect_documents(domain)]
        assert "ns2" not in names
        assert names == ["vax1", "ns1", "ns3"]  # host-id order, live only


# ----------------------------------------------------------- classification


def replica_doc(host, replica_id, map_version, entries, lease_ttl=0.5):
    return {"kind": "coherence", "host": host, "t": 1.0, "enabled": True,
            "resolver": None,
            "replica": {"replica_id": replica_id,
                        "map_version": map_version,
                        "lease_ttl": lease_ttl, "entries": entries}}


def replica_entry(prefix, epoch, source, is_owner=False, lease_fresh=True):
    return {"prefix": prefix, "epoch": epoch, "source": source,
            "is_owner": is_owner, "lease_expiry": 2.0,
            "lease_fresh": lease_fresh}


def resolver_doc(host, map_version, bindings=(), negative=()):
    return {"kind": "coherence", "host": host, "t": 1.0, "enabled": True,
            "replica": None,
            "resolver": {"map_version": map_version, "binding_ttl": 1.0,
                         "negative_ttl": 0.25,
                         "bindings": list(bindings),
                         "negative": list(negative)}}


def resolver_binding(prefix, epoch, source, expired=False, age=0.1):
    return {"prefix": prefix, "server_pid": 100, "context_id": 1,
            "installed_at": 0.9, "age": age, "epoch": epoch,
            "source": source, "expired": expired}


class TestClassifyFleet:
    OWNER = replica_doc("ns1", 0, 3, [replica_entry("data", 7, 41,
                                                    is_owner=True)])

    def classify(self, *documents):
        return classify_fleet(list(documents), t=1.0)

    def test_agreeing_replica_is_fresh(self):
        report = self.classify(
            self.OWNER, replica_doc("ns2", 1, 3, [replica_entry("data",
                                                                7, 41)]))
        assert report["ok"] is True
        assert report["tiers"]["replica"] == {
            "fresh": 2, "stale": 0, "incoherent": 0, "unverifiable": 0,
            "entries": 2}

    def test_disagreement_under_fresh_lease_is_incoherent(self):
        report = self.classify(
            self.OWNER,
            replica_doc("ns2", 1, 3, [replica_entry("data", 5, 41,
                                                    lease_fresh=True)]))
        assert report["ok"] is False
        assert report["tiers"]["replica"]["incoherent"] == 1
        [finding] = report["findings"]["incoherent"]
        assert finding["host"] == "ns2" and finding["prefix"] == "data"
        assert finding["owner"] == {"host": "ns1", "epoch": 7, "source": 41}

    def test_disagreement_with_expired_lease_is_only_stale(self):
        # The refusal path gates an expired lease: held wrongness a client
        # can never be served classifies stale, not incoherent.
        report = self.classify(
            self.OWNER,
            replica_doc("ns2", 1, 3, [replica_entry("data", 5, 41,
                                                    lease_fresh=False)]))
        assert report["ok"] is True
        assert report["tiers"]["replica"]["stale"] == 1
        assert report["findings"]["incoherent"] == []

    def test_unstamped_entry_audits_unverifiable(self):
        report = self.classify(
            self.OWNER, replica_doc("ns2", 1, 3, [replica_entry("data",
                                                                0, 0)]))
        assert report["tiers"]["replica"]["unverifiable"] == 1
        assert report["ok"] is True

    def test_resolver_tier_is_never_incoherent(self):
        report = self.classify(
            self.OWNER,
            resolver_doc("client", 3, bindings=[
                resolver_binding("data", 7, 41),            # fresh
                resolver_binding("data", 5, 41),            # stale
                resolver_binding("data", 5, 41, expired=True),
            ]))
        assert report["tiers"]["resolver"] == {
            "fresh": 1, "stale": 1, "expired": 1, "unverifiable": 0,
            "entries": 3}
        # Within-TTL staleness is the resolver's contract: ok stays True.
        assert report["ok"] is True
        [finding] = [f for f in report["findings"]["stale"]
                     if f["tier"] == "resolver"]
        assert finding["host"] == "client"

    def test_negative_entry_for_a_bound_prefix_is_stale(self):
        report = self.classify(
            self.OWNER,
            resolver_doc("client", 3, negative=[
                {"name": "[data]now/bound.dat", "installed_at": 0.9,
                 "age": 0.1, "expired": False},
                {"name": "[data]old.dat", "installed_at": 0.1,
                 "age": 0.9, "expired": True},
                {"name": "[nowhere]x.dat", "installed_at": 0.9,
                 "age": 0.1, "expired": False},
            ]))
        assert report["tiers"]["negative"] == {
            "fresh": 1, "stale": 1, "expired": 1, "entries": 3}
        [finding] = [f for f in report["findings"]["stale"]
                     if f["tier"] == "negative"]
        assert finding["name"] == "[data]now/bound.dat"

    def test_ownership_drift_higher_map_version_wins(self):
        report = self.classify(
            self.OWNER,                                      # claims at v3
            replica_doc("ns2", 1, 4, [replica_entry("data", 9, 52,
                                                    is_owner=True)]),
            replica_doc("ns3", 2, 4, [replica_entry("data", 9, 52)]))
        [drift] = report["findings"]["ownership_drift"]
        assert drift["prefix"] == "data"
        assert [claim["host"] for claim in drift["claims"]] == ["ns1", "ns2"]
        # ns2's v4 claim became the authority: ns3's copy agrees with it.
        assert report["tiers"]["replica"]["fresh"] == 3
        assert report["ok"] is True

    def test_map_drift_lists_every_laggard_tier(self):
        report = self.classify(
            self.OWNER,                                      # replica at v3
            resolver_doc("client", 2))                       # resolver at v2
        assert report["map_versions"]["fleet_max"] == 3
        [drift] = report["findings"]["map_drift"]
        assert drift == {"host": "client", "tier": "resolver",
                         "version": 2, "fleet_max": 3}


# ------------------------------------------------------------- the walkers


class TestWalkers:
    def test_audit_direct_on_a_quiesced_fleet_is_coherent(self):
        domain, cluster, pair, __, __ = sharded_system(n_replicas=3,
                                                       n_prefixes=4)
        session = session_for(domain, pair, cluster.primary_pid())

        def client(session):
            yield from session.add_prefix("p0", pair, replace=True)
            yield from session.delete_prefix("p3")
            yield Delay(2.0)                     # past every lease

        run_on(domain, domain.create_host("mutator"), client(session))
        report = audit_direct(domain)
        assert report["ok"] is True
        assert report["via"] == "direct"
        assert report["findings"]["incoherent"] == []
        # 3 replicas x 3 surviving prefixes, and p3 is gone everywhere.
        assert report["tiers"]["replica"]["entries"] == 9
        assert report["probe"]["notices_sent"] > 0

    def test_audit_direct_costs_zero_simulated_time(self):
        domain, __, __, __, __ = sharded_system()
        t = domain.now
        audit_direct(domain)
        assert domain.now == t

    def test_obs_walk_matches_the_direct_classification(self):
        from repro.runtime.workstation import (
            setup_workstation,
            standard_prefixes,
        )
        from repro.servers.statserver import enable_obs_namespace

        domain, cluster, pair, fs_host, fs_handle = sharded_system(
            n_replicas=3, n_prefixes=4)
        watcher = setup_workstation(domain, "watch")
        standard_prefixes(watcher, fs_handle)
        enable_obs_namespace(domain, fs_host)
        cluster.resolver(host=watcher.host)
        direct = audit_direct(domain)
        walked = audit_via_obs(watcher)
        assert walked["via"] == "obs"
        assert walked["unreachable"] == []
        assert walked["ok"] is True
        assert walked["tiers"]["replica"] == direct["tiers"]["replica"]
        # Walk order differs (name-sorted vs host-id), coverage must not.
        assert set(walked["hosts"]) == set(direct["hosts"])
        # The walk is charged traffic: simulated time moved.
        assert walked["t"] > direct["t"]


# ------------------------------------------------------------------ the CLI


class TestCli:
    ARGS = ["--duration", "2", "--prefixes", "8", "--seed", "11"]

    def test_json_mode_emits_the_audit_document(self, capsys):
        code = audit.main(["--json", "--no-crash", *self.ARGS])
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert document["kind"] == "coherence-audit"
        assert document["ok"] is True
        assert document["via"] == "obs"
        assert document["probe"]["shard_lookups"] > 0

    def test_text_mode_renders_tables_and_verdict(self, capsys):
        code = audit.main(["--no-crash", *self.ARGS])
        out = capsys.readouterr().out
        assert code == 0
        assert "coherence audit @" in out
        assert "verdict: COHERENT" in out

    def test_watch_mode_sweeps_during_the_run(self, capsys):
        code = audit.main(["--json", "--no-crash", "--watch", "0.5",
                           *self.ARGS])
        document = json.loads(capsys.readouterr().out)
        assert code == 0
        assert len(document["sweeps"]) >= 2
        assert all(sweep["t"] > 0 for sweep in document["sweeps"])

    def test_render_reports_incoherence_and_exit_code_shape(self, capsys):
        # render() on a hand-built failing report names the entry; main's
        # exit-2 contract is pinned against the same document shape.
        report = classify_fleet([
            replica_doc("ns1", 0, 3, [replica_entry("data", 7, 41,
                                                    is_owner=True)]),
            replica_doc("ns2", 1, 3, [replica_entry("data", 5, 41)]),
        ], t=1.0)
        audit.render(report)
        out = capsys.readouterr().out
        assert "INCOHERENT replica ns2 [data]" in out
        assert "verdict: INCOHERENT (1 entries)" in out
        assert report["ok"] is False
