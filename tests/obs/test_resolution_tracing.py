"""End-to-end tracing: span trees across CSNH forwarding hops.

The acceptance scenario for the observability work: a forwarded resolution
(``[home]naming.mss`` crossing prefix server -> file server) must produce a
single trace id whose span tree shows every hop with correct parent/child
links -- and a failed resolution must close its spans with the reply code
that killed it.
"""

import pytest

from repro.core.context import ContextPair, WellKnownContext
from repro.core.mapping import MappingFault
from repro.core.csnh import CSNHServer
from repro.core.resolver import NameError_
from repro.kernel.domain import Domain
from repro.kernel.messages import ReplyCode
from repro.obs import Observability
from repro.obs.export import read_spans_jsonl
from repro.obs.report import render_trace
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from tests.helpers import run_on


def obs_system(seed: int = 0):
    """The Sec. 6 arrangement with an Observability bundle attached."""
    domain = Domain(seed=seed, obs=Observability())
    workstation = setup_workstation(domain, "mann")
    handle = start_server(domain.create_host("vax1"), VFileServer(user="mann"))
    standard_prefixes(workstation, handle)
    return domain, workstation, handle


def last_resolve(obs: Observability, op: str, csname: str):
    """The most recent root span for ``op`` on ``csname``."""
    matches = [span for span in obs.spans.find(f"resolve:{op}")
               if span.attrs.get("csname") == csname]
    assert matches, f"no resolve:{op} span for {csname!r}"
    return matches[-1]


class TestForwardedResolution:
    def run_forwarded_open(self):
        domain, workstation, handle = obs_system()

        def client(session):
            yield from files.write_file(session, "[home]naming.mss", b"x" * 64)
            stream = yield from session.open("[home]naming.mss", "r")
            yield from stream.close()

        run_on(domain, workstation.host, client(workstation.session()))
        return domain, workstation, handle

    def test_single_trace_with_linked_hops(self):
        domain, __, handle = self.run_forwarded_open()
        obs = domain.obs
        root = last_resolve(obs, "OPEN_FILE", "[home]naming.mss")
        spans = obs.spans.trace(root.trace_id)

        # One trace id covers the whole walk, and every span closed.
        assert {span.trace_id for span in spans} == {root.trace_id}
        assert all(span.finished for span in spans)
        assert root.attrs["ok"] is True
        assert root.attrs["reply_code"] == "OK"

        # Tree shape: resolve -> ipc.txn -> prefix hop -> fileserver hop,
        # each hop the child of the hop that forwarded to it.
        (tree,) = obs.spans.tree(root.trace_id)
        assert tree.span is root
        (txn,) = tree.children
        assert txn.span.name.startswith("ipc.txn")
        by_name = {span.name: span for span in spans}
        prefix_hop = by_name["server:prefix-server"]
        fs_hop = by_name["server:fileserver"]
        assert prefix_hop.parent_id == txn.span.span_id
        assert fs_hop.parent_id == prefix_hop.span_id

        # The prefix hop records what it matched and where it forwarded.
        assert prefix_hop.attrs["prefix"] == "home"
        assert prefix_hop.attrs["binding"] == "fixed"
        assert prefix_hop.attrs["forwarded_to"] == str(handle.pid)
        (prefix_step,) = prefix_hop.attrs["mapping"]
        assert prefix_step["outcome"] == "forward"
        assert prefix_step["consumed"] == len("[home]")

        # The file server hop finished the walk and replied OK.
        assert fs_hop.attrs["reply_code"] == "OK"
        (fs_step,) = fs_hop.attrs["mapping"]
        assert fs_step["outcome"] == "resolved"
        assert "naming.mss=leaf" in fs_hop.attrs["walk"]

        # The forwarded request and the direct reply each crossed the wire.
        wires = obs.spans.find("net.wire", trace_id=root.trace_id)
        assert len(wires) == 2
        assert {span.parent_id for span in wires} == {
            prefix_hop.span_id, fs_hop.span_id}

    def test_registry_sees_the_resolution(self):
        domain, __, __ = self.run_forwarded_open()
        registry = domain.obs.registry
        histogram = registry.histogram("csname.resolve_seconds",
                                       op="OPEN_FILE")
        assert histogram.count >= 1
        assert histogram.minimum > 0
        assert registry.histogram("net.frame_bytes").count > 0

    def test_export_read_report_round_trip(self, tmp_path):
        domain, __, __ = self.run_forwarded_open()
        obs = domain.obs
        root = last_resolve(obs, "OPEN_FILE", "[home]naming.mss")
        path = tmp_path / "trace.jsonl"
        obs.export_spans(path)
        tracefile = read_spans_jsonl(path)
        assert "prefix" in tracefile.actors.values()
        assert "fileserver" in tracefile.actors.values()
        text = render_trace(tracefile, root.trace_id)
        assert "server:prefix-server" in text
        assert "server:fileserver" in text
        assert "critical path" in text
        assert "never finished" not in text


class DenyingServer(CSNHServer):
    """A server whose name space refuses everyone (the failing fixture)."""

    server_name = "denying"

    def map_request(self, delivery, header):
        yield from ()
        return MappingFault(ReplyCode.NO_PERMISSION, "owner only")


def failing_open(domain, workstation, session, name: str):
    """Open ``name``; return the NameError_ code the stub raised."""

    def client():
        try:
            yield from session.open(name, "r")
        except NameError_ as err:
            return err.code
        return None

    return run_on(domain, workstation.host, client())


class TestFailureReplies:
    """Every NameError_ branch, and the span evidence it leaves behind."""

    def test_not_found_from_the_forwarded_server(self):
        domain, workstation, __ = obs_system()
        code = failing_open(domain, workstation, workstation.session(),
                            "[home]missing.txt")
        assert code is ReplyCode.NOT_FOUND
        root = last_resolve(domain.obs, "OPEN_FILE", "[home]missing.txt")
        assert root.attrs["reply_code"] == "NOT_FOUND"
        assert root.attrs["ok"] is False
        fs_hop = domain.obs.spans.find("server:fileserver",
                                       trace_id=root.trace_id)[-1]
        (step,) = fs_hop.attrs["mapping"]
        assert step == {"server": "fileserver",
                        "context_id": int(WellKnownContext.HOME),
                        "name_index": len("[home]"),
                        "outcome": "fault", "fault": "NOT_FOUND"}

    def test_invalid_context_from_a_bad_context_id(self):
        domain, workstation, handle = obs_system()
        session = workstation.session(ContextPair(handle.pid, 0x4242))
        code = failing_open(domain, workstation, session, "naming.mss")
        assert code is ReplyCode.INVALID_CONTEXT
        root = last_resolve(domain.obs, "OPEN_FILE", "naming.mss")
        assert root.attrs["reply_code"] == "INVALID_CONTEXT"

    def test_bad_name_from_an_unterminated_prefix(self):
        domain, workstation, __ = obs_system()
        code = failing_open(domain, workstation, workstation.session(),
                            "[unclosed")
        assert code is ReplyCode.BAD_NAME
        root = last_resolve(domain.obs, "OPEN_FILE", "[unclosed")
        assert root.attrs["reply_code"] == "BAD_NAME"
        hop = domain.obs.spans.find("server:prefix",
                                    trace_id=root.trace_id)[-1]
        (step,) = hop.attrs["mapping"]
        assert step["fault"] == "BAD_NAME"

    def test_no_permission_from_a_denying_server(self):
        domain, workstation, __ = obs_system()
        deny = start_server(domain.create_host("vault"), DenyingServer())
        session = workstation.session(
            ContextPair(deny.pid, int(WellKnownContext.DEFAULT)))
        code = failing_open(domain, workstation, session, "secret.txt")
        assert code is ReplyCode.NO_PERMISSION
        root = last_resolve(domain.obs, "OPEN_FILE", "secret.txt")
        assert root.attrs["reply_code"] == "NO_PERMISSION"
        hop = domain.obs.spans.find("server:denying",
                                    trace_id=root.trace_id)[-1]
        (step,) = hop.attrs["mapping"]
        assert step["outcome"] == "fault"
        assert step["fault"] == "NO_PERMISSION"

    def test_no_server_when_no_prefix_server_exists(self):
        domain, workstation, __ = obs_system()
        session = workstation.session()
        session.env.prefix_server = None
        code = failing_open(domain, workstation, session, "[home]x")
        assert code is ReplyCode.NO_SERVER

    def test_failures_leave_no_dangling_spans(self):
        domain, workstation, handle = obs_system()
        failing_open(domain, workstation, workstation.session(),
                     "[home]missing.txt")
        failing_open(domain, workstation, workstation.session(), "[unclosed")
        failing_open(domain, workstation,
                     workstation.session(ContextPair(handle.pid, 0x7777)),
                     "nope")
        assert domain.obs.spans.unfinished() == []
