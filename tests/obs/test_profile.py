"""Tests for the attribution profiler (repro.obs.profile).

The profiler's core guarantee is *partition accounting*: clock advances
are charged to exactly one attribution stack, so frame totals sum to
end-to-end simulated time -- checked here on the pinned E7 forwarding
scenario, along with a golden collapsed-stack flamegraph of that run
(any drift in how the kernel attributes work fails loudly).
"""

import json

import pytest

from repro.kernel.domain import Domain
from repro.sim.engine import Engine
from repro.obs.profile import (
    PROFILE_SCHEMA,
    UNATTRIBUTED,
    Profiler,
    forwarding_profile,
    main,
)


class TestProfilerUnit:
    def test_account_partitions_into_stacks(self):
        prof = Profiler()
        prof.account(("host:a", "proc:x"), 0.002)
        prof.account(("host:a", "proc:x"), 0.001)
        prof.account(("host:b",), 0.004)
        prof.account((), 0.0005)  # empty stack -> unattributed bucket
        assert prof.total_seconds == pytest.approx(0.0075)
        assert prof.stats[("host:a", "proc:x")].events == 2
        assert prof.stats[UNATTRIBUTED].seconds == pytest.approx(0.0005)

    def test_count_message_accumulates_bytes(self):
        prof = Profiler()
        prof.count_message(("host:a",), 256)
        prof.count_message(("host:a",), 96)
        assert prof.total_messages == 2
        assert prof.total_bytes == 352
        # Messages alone charge no time.
        assert prof.stats[("host:a",)].seconds == 0.0

    def test_root_filter_scopes_reporting_not_accounting(self):
        prof = Profiler()
        prof.account(("host:a", "proc:x"), 0.002)
        prof.account(("host:b", "proc:y"), 0.003)
        prof.root = "host:a"
        assert prof.total_seconds == pytest.approx(0.002)
        document = prof.profile()
        assert document["schema"] == PROFILE_SCHEMA
        assert [f["stack"] for f in document["frames"]] == [
            ["host:a", "proc:x"]]
        # The other host's charge is still in the raw stats.
        assert prof.stats[("host:b", "proc:y")].seconds == pytest.approx(0.003)

    def test_collapsed_is_folded_format(self):
        prof = Profiler()
        prof.account(("host:a", "proc:x", "phase:wire"), 0.0015)
        prof.account(("host:a",), 2e-9)  # rounds to 0 us -> dropped
        assert prof.collapsed() == ["host:a;proc:x;phase:wire 1500"]


# Regenerate with:
#   PYTHONPATH=src python -m repro.obs.profile --flame
GOLDEN_E7_FLAME = """\
host:ws-mann;proc:client;phase:send;phase:wire 24984
host:vax4;proc:fileserver;phase:reply;phase:wire 17472
host:vax0;proc:fileserver;phase:forward_hop;phase:wire 15517
host:vax1;proc:fileserver;phase:forward_hop;phase:wire 15517
host:vax2;proc:fileserver;phase:forward_hop;phase:wire 15517
host:vax3;proc:fileserver;phase:forward_hop;phase:wire 15517
host:ws-mann;proc:client;phase:send 13248
host:vax4;proc:fileserver;phase:reply 13248
host:vax0;proc:fileserver;phase:forward_hop 6072
host:vax1;proc:fileserver;phase:forward_hop 6072
host:vax2;proc:fileserver;phase:forward_hop 6072
host:vax3;proc:fileserver;phase:forward_hop 6072
host:ws-mann;proc:client 4840"""


class TestForwardingProfile:
    def test_attribution_sums_to_elapsed_within_one_percent(self):
        """The E7 acceptance check: no simulated time goes missing."""
        prof, elapsed, mean_open_ms = forwarding_profile(hops=4, rounds=10,
                                                         seed=0)
        assert elapsed > 0
        assert prof.total_seconds == pytest.approx(elapsed, rel=0.01)
        # The four-hop open is well above the direct-open baseline.
        assert mean_open_ms > 10.0
        assert prof.total_messages > 0
        assert prof.total_bytes > prof.total_messages  # frames carry payload

    def test_golden_collapsed_stacks(self):
        """Pinned folded output: same stacks, same charges.

        Equal-cost forward hops tie only after ~1e-18 s float-accumulation
        noise, so their relative order is not meaningful; the *content* is
        pinned exactly (sorted), which is what flamegraph tools consume.
        """
        prof, __, __ = forwarding_profile(hops=4, rounds=10, seed=0)
        golden = sorted(GOLDEN_E7_FLAME.splitlines())
        flame = sorted(prof.render_flame().splitlines())
        assert len(flame) == len(golden)
        for got, expected in zip(flame, golden):
            assert got == expected
        # Folded-format sanity: "frame;frame;... <int>" per line.
        for line in flame:
            stack, __, value = line.rpartition(" ")
            assert stack and int(value) > 0


class TestCli:
    def test_flame_output(self, capsys):
        assert main(["--flame", "--hops", "1", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "phase:wire" in out
        for line in out.strip().splitlines():
            stack, __, value = line.rpartition(" ")
            assert int(value) > 0

    def test_json_output_carries_scenario(self, capsys):
        assert main(["--hops", "1", "--rounds", "1"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == PROFILE_SCHEMA
        assert document["scenario"]["hops"] == 1
        assert document["frames"]
        charged = sum(f["seconds"] for f in document["frames"])
        assert charged == pytest.approx(document["total_seconds"])


class TestDomainIntegration:
    def test_scoped_profile_composes_with_domain_profiler(self):
        """A `with domain.profile()` window nests inside enable_profiler()."""
        domain = Domain(seed=0)
        domain.enable_profiler()
        host = domain.create_host("m1")

        def worker():
            from repro.kernel.ipc import Delay
            yield Delay(0.010)

        host.spawn(worker(), name="w")
        domain.run()
        before = domain.profiler.total_seconds
        assert before == pytest.approx(domain.now)

        host.spawn(worker(), name="w2")
        with domain.profile() as scoped:
            start = domain.now
            domain.run()
            window = domain.now - start
        assert scoped.total_seconds == pytest.approx(window)
        # The long-lived profiler kept accumulating through the window.
        assert domain.profiler.total_seconds == pytest.approx(domain.now)


class TestPushPopBalance:
    """profile_push deduplicates; profile_pop must stay depth-balanced.

    Regression test: a push of a label equal to the innermost frame is a
    counted no-op, and the matching pop must consume that count instead of
    removing the frame somebody else pushed.
    """

    def test_deduplicated_push_pop_leaves_outer_frame(self):
        engine = Engine()
        engine.profile_push("phase:wire")
        engine.profile_push("phase:wire")   # dedup: counted, not stacked
        assert engine._attr_stack == ("phase:wire",)
        engine.profile_pop("phase:wire")    # consumes the dup count
        assert engine._attr_stack == ("phase:wire",)
        engine.profile_pop("phase:wire")    # now removes the real frame
        assert engine._attr_stack == ()

    def test_nested_dedup_depths_balance(self):
        engine = Engine()
        engine.profile_push("a")
        engine.profile_push("b")
        engine.profile_push("b")
        engine.profile_push("b")
        engine.profile_pop("b")
        engine.profile_pop("b")
        assert engine._attr_stack == ("a", "b")
        engine.profile_pop("b")
        engine.profile_pop("a")
        assert engine._attr_stack == ()

    def test_scope_token_preserves_dup_counts(self):
        engine = Engine()
        engine.profile_push("a")
        engine.profile_push("a")            # one outstanding dup
        token = engine.profile_scope(("other",))
        engine.profile_push("other")        # dedup inside the scope
        engine.profile_pop("other")
        assert engine._attr_stack == ("other",)
        engine.profile_restore(token)
        engine.profile_pop("a")             # the dup, restored with the token
        assert engine._attr_stack == ("a",)
        engine.profile_pop("a")
        assert engine._attr_stack == ()
