"""Telemetry collector unit tests: series, rules, alerts, sampling.

The protocol-level behaviour (reading series through ``[obs]``) lives in
tests/servers/test_statserver.py and tests/faults/test_obs_under_chaos.py;
here the collector machinery is pinned directly: ring bounds, delta
sampling (including the restart clamp), watchdog hysteresis, parking, and
the per-transaction latency window.
"""

import pytest

from repro.kernel.domain import Domain
from repro.obs.telemetry import (
    FLEET,
    AlertEvent,
    AlertLog,
    SloRule,
    TelemetryCollector,
    TimeSeries,
    default_watchdogs,
)


class TestTimeSeries:
    def test_ring_drops_oldest_beyond_capacity(self):
        series = TimeSeries("h", "m", capacity=3)
        for index in range(5):
            series.record(float(index), float(index * 10))
        assert len(series) == 3
        assert series.samples() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert series.last() == 40.0

    def test_records_are_export_shaped(self):
        series = TimeSeries("h", "m")
        series.record(0.5, 7.0)
        assert series.to_records() == [
            {"kind": "sample", "t": 0.5, "value": 7.0}]


class TestSloRule:
    def test_unknown_kind_and_op_are_rejected(self):
        with pytest.raises(ValueError):
            SloRule("r", "m", kind="gradient")
        with pytest.raises(ValueError):
            SloRule("r", "m", op=">=")

    def test_invariants_are_promoted_to_critical(self):
        rule = SloRule("r", "m", kind="invariant", severity="warning")
        assert rule.severity == "critical"
        # An explicit severity on the other kinds is left alone.
        assert SloRule("r", "m", severity="warning").severity == "warning"

    def test_threshold_breaches(self):
        above = SloRule("r", "m", op=">", limit=5.0)
        assert above.breaches(5.1, None)
        assert not above.breaches(5.0, None)
        below = SloRule("r", "m", op="<", limit=5.0)
        assert below.breaches(4.9, None)
        assert not below.breaches(5.0, None)

    def test_rate_of_change_needs_a_previous_sample(self):
        rule = SloRule("r", "m", kind="rate_of_change", limit=3.0)
        assert not rule.breaches(100.0, None)
        assert not rule.breaches(7.0, 4.0)      # |delta| == limit: ok
        assert rule.breaches(7.1, 4.0)
        assert rule.breaches(0.0, 4.0)          # a spike down counts too
        assert rule.breaches(-0.1, 3.0)

    def test_invariant_predicate_wins_over_the_comparison(self):
        rule = SloRule("r", "m", kind="invariant",
                       predicate=lambda value: value % 2 == 0)
        assert not rule.breaches(4.0, None)
        assert rule.breaches(3.0, None)


class TestAlertLog:
    def _event(self, t, event, rule="r", host="h"):
        return AlertEvent(t=t, event=event, rule=rule, kind="threshold",
                          severity="warning", host=host, metric="m",
                          value=1.0, limit=0.5)

    def test_fire_resolve_counts_and_active_set(self):
        log = AlertLog()
        log.emit(self._event(1.0, "fire"))
        assert log.fired == 1 and log.resolved == 0
        assert ("r", "h") in log.active
        log.emit(self._event(2.0, "resolve"))
        assert log.resolved == 1
        assert not log.active

    def test_bounded_history(self):
        log = AlertLog(capacity=2)
        for t in (1.0, 2.0, 3.0):
            log.emit(self._event(t, "fire", rule=f"r{t}"))
        assert [event.t for event in log.events()] == [2.0, 3.0]
        assert log.fired == 3                   # counters keep the truth

    def test_subscribers_see_every_emission(self):
        log = AlertLog()
        seen = []
        log.subscribe(seen.append)
        log.subscribe(seen.append)              # duplicate: registered once
        log.emit(self._event(1.0, "fire"))
        assert [event.t for event in seen] == [1.0]


class TestSampling:
    def _collector(self, rules=None, **kwargs):
        domain = Domain()
        host = domain.create_host("h1")
        collector = TelemetryCollector(domain, rules=rules or [], **kwargs)
        return domain, host, collector

    def test_deltas_not_cumulative_counts(self):
        __, host, collector = self._collector()
        host.counters["ipc.transactions"] = 3
        collector._tick()
        host.counters["ipc.transactions"] = 10
        collector._tick()
        assert collector.series_for("h1", "resolutions").values() == \
            [3.0, 7.0]

    def test_counter_reset_clamps_to_zero(self):
        # A host restart clears its counters; the next delta must not go
        # negative (it reads as "this much since the restart").
        __, host, collector = self._collector()
        host.counters["ipc.retransmits"] = 8
        collector._tick()
        host.counters["ipc.retransmits"] = 2    # reset + 2 new
        collector._tick()
        assert collector.series_for("h1", "retransmits").values() == \
            [8.0, 2.0]

    def test_crashed_hosts_leave_a_gap(self):
        domain, host, collector = self._collector()
        domain.create_host("h2")                # stays up throughout
        collector._tick()
        host.crashed = True
        collector._tick()
        host.crashed = False
        collector._tick()
        assert len(collector.series_for("h1", "resolutions")) == 2
        # The fleet series keeps ticking on the surviving host.
        assert len(collector.series_for(FLEET, "resolutions")) == 3

    def test_fleet_aggregates_sum_hosts(self):
        domain, host, collector = self._collector()
        other = domain.create_host("h2")
        host.counters["ipc.transactions"] = 4
        other.counters["ipc.transactions"] = 6
        collector._tick()
        assert collector.series_for(FLEET, "resolutions").values() == [10.0]
        assert collector.hosts_sampled() == ["h1", "h2"]

    def test_latency_window_feeds_p99_and_clears(self):
        __, host, collector = self._collector()
        for ms in range(1, 101):
            collector.observe_txn(host, ms / 1000.0)
        collector._tick()
        series = collector.series_for("h1", "p99_ms")
        assert series.values() == [pytest.approx(99.0)]
        # Window consumed: an idle tick records no p99 sample.
        collector._tick()
        assert len(series) == 1

    def test_summary_shape(self):
        __, host, collector = self._collector()
        host.counters["ipc.transactions"] = 2
        collector._tick()
        host.counters["ipc.transactions"] = 8
        collector._tick()
        summary = collector.summary("h1", "resolutions")
        assert summary == {"host": "h1", "metric": "resolutions",
                           "samples": 2, "min": 2.0, "mean": 4.0,
                           "max": 6.0, "last": 6.0}
        assert collector.summary("h1", "nope") is None


class TestHysteresis:
    def _collector(self, rule):
        domain = Domain()
        host = domain.create_host("h1")
        return host, TelemetryCollector(domain, rules=[rule])

    def test_for_ticks_then_clear_ticks(self):
        rule = SloRule("retx", "retransmits", op=">", limit=0.5,
                       for_ticks=2, clear_ticks=2)
        host, collector = self._collector(rule)
        bump = 0

        def tick(retransmits):
            nonlocal bump
            bump += retransmits
            host.counters["ipc.retransmits"] = bump
            collector._tick()

        tick(1)                                 # breach 1: below for_ticks
        assert collector.alerts.fired == 0
        tick(1)                                 # breach 2: fires
        assert collector.alerts.fired == 1
        assert ("retx", "h1") in collector.alerts.active
        tick(2)                                 # still breaching: no re-fire
        assert collector.alerts.fired == 1
        tick(0)                                 # healthy 1: still active
        assert collector.alerts.resolved == 0
        tick(0)                                 # healthy 2: resolves
        assert collector.alerts.resolved == 1
        assert not collector.alerts.active
        tick(1)
        tick(1)                                 # a fresh breach re-fires
        assert collector.alerts.fired == 2

    def test_invariant_fires_on_first_breach(self):
        rule = SloRule("backlog", "queue_depth", kind="invariant",
                       op=">", limit=2.0)
        host, collector = self._collector(rule)
        collector._tick()
        assert collector.alerts.fired == 0
        host._outstanding = {index: object() for index in range(3)}
        collector._tick()
        (event,) = collector.alerts.events()
        assert event.event == "fire"
        assert event.severity == "critical"
        assert event.value == 3.0

    def test_fleet_scoped_rules_see_only_the_aggregate(self):
        rule = SloRule("fleet-retx", "retransmits", op=">", limit=2.5,
                       scope="fleet")
        host, collector = self._collector(rule)
        other = host.domain.create_host("h2")
        host.counters["ipc.retransmits"] = 2    # each host under the limit
        other.counters["ipc.retransmits"] = 2
        collector._tick()
        (event,) = collector.alerts.events()    # the sum is over it
        assert event.host == FLEET
        assert event.value == 4.0


class TestLifecycle:
    def test_collector_parks_when_the_domain_quiesces(self):
        domain = Domain()
        domain.create_host("h1")
        collector = domain.enable_telemetry(interval=0.1)
        domain.engine.schedule(0.35, lambda: None)
        domain.run()
        assert collector.parked
        assert collector.ticks >= 3
        # start() re-arms a parked collector for the next run.
        ticks = collector.ticks
        collector.start()
        assert not collector.parked
        domain.engine.schedule(0.15, lambda: None)
        domain.run()
        assert collector.ticks > ticks

    def test_enable_telemetry_is_idempotent_and_armed_with_defaults(self):
        domain = Domain()
        collector = domain.enable_telemetry()
        assert domain.enable_telemetry() is collector
        assert domain.telemetry is collector
        assert [rule.name for rule in collector.rules] == \
            [rule.name for rule in default_watchdogs()]

    def test_bad_interval_is_rejected(self):
        with pytest.raises(ValueError):
            TelemetryCollector(Domain(), interval=0.0)


class TestCoherenceSeries:
    """The probe-fed coherence.* series and their fleet aggregation."""

    def _armed_collector(self):
        from repro.obs.audit import enable_coherence

        domain = Domain()
        probe = enable_coherence(domain)
        ns1 = domain.create_host("ns1")
        ns2 = domain.create_host("ns2")
        collector = TelemetryCollector(domain, rules=[])
        return domain, probe, collector, ns1, ns2

    def test_probe_buckets_land_in_the_series(self):
        __, probe, collector, __, __ = self._armed_collector()
        probe.lease_event("ns1", "grant")
        probe.shard_lookup("ns1", 0)
        probe.shard_lookup("ns1", 0)
        probe.negcache_hit("ns2")
        collector._tick()
        assert collector.series_for("ns1", "coherence.lease_churn") \
            .values() == [1.0]
        assert collector.series_for("ns1", "coherence.shard_hotness") \
            .values() == [2.0]
        assert collector.series_for("ns2", "coherence.negcache_hits") \
            .values() == [1.0]
        # Drained: the next tick samples dense zeros, not repeats.
        collector._tick()
        assert collector.series_for("ns1", "coherence.shard_hotness") \
            .values() == [2.0, 0.0]

    def test_unarmed_domain_has_no_coherence_series(self):
        domain = Domain()
        domain.create_host("h1")
        collector = TelemetryCollector(domain, rules=[])
        collector._tick()
        assert collector.series_for("h1", "coherence.lease_churn") is None
        assert collector.series_for("h1", "resolutions") is not None

    def test_fleet_takes_the_max_of_lag_and_staleness(self):
        # Worst-case metrics must not sum across hosts: a fleet of two
        # 40ms laggards is a 40ms fleet, not an 80ms one.  Count-like
        # coherence metrics still sum.
        __, probe, collector, __, __ = self._armed_collector()
        probe.notice_sent(b"p", 7, t=0.00)
        probe.notice_applied(b"p", 7, "ns1", t=0.04)
        probe.notice_sent(b"p", 8, t=0.01)
        probe.notice_applied(b"p", 8, "ns2", t=0.04)
        probe.stale_hit("ns1", 0.5)
        probe.stale_hit("ns2", 0.2)
        probe.lease_event("ns1", "grant")
        probe.lease_event("ns2", "refresh")
        collector._tick()
        assert collector.series_for(
            FLEET, "coherence.invalidation_lag").values() == \
            [pytest.approx(40.0)]
        assert collector.series_for(
            FLEET, "coherence.staleness_at_hit").values() == \
            [pytest.approx(500.0)]
        assert collector.series_for(
            FLEET, "coherence.lease_churn").values() == [2.0]

    def test_coherence_watchdog_fires_on_slow_propagation(self):
        from repro.obs.telemetry import coherence_watchdogs

        from repro.obs.audit import enable_coherence

        domain = Domain()
        probe = enable_coherence(domain)
        domain.create_host("ns1")
        collector = TelemetryCollector(domain, rules=coherence_watchdogs())
        # The rule has for_ticks=2 hysteresis: two consecutive breaching
        # ticks before the fire.
        for tick in range(2):
            base = float(tick)
            probe.notice_sent(b"p", 7, t=base)
            probe.notice_applied(b"p", 7, "ns1", t=base + 0.3)  # 300ms > SLO
            collector._tick()
        fired = [e for e in collector.alerts.events() if e.event == "fire"]
        assert [e.rule for e in fired] == ["invalidation-propagation-p99"]
        assert fired[0].severity == "critical"
