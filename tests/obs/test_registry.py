"""Unit tests for the tagged metrics registry."""

import math

import pytest

from repro.obs.registry import (
    DEFAULT_BYTES_BUCKETS,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NoSamplesError,
)


class TestCounters:
    def test_incr_and_read_back(self):
        registry = MetricsRegistry()
        registry.counter("net.frames").incr()
        registry.counter("net.frames").incr(4)
        assert registry.counter_value("net.frames") == 5
        assert registry.counter_value("absent") == 0

    def test_tags_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("requests", server="fileserver").incr(2)
        registry.counter("requests", server="prefix").incr(3)
        assert registry.counter_value("requests", server="fileserver") == 2
        assert registry.counter_value("requests", server="prefix") == 3
        assert registry.counter_value("requests") == 0

    def test_instruments_are_cached_by_name_and_tags(self):
        registry = MetricsRegistry()
        a = registry.counter("x", k="v")
        b = registry.counter("x", k="v")
        assert a is b
        assert registry.counter("x") is not a

    def test_counter_values_legacy_view_skips_tagged(self):
        registry = MetricsRegistry()
        registry.counter("plain").incr(1)
        registry.counter("split", shard="a").incr(10)
        assert registry.counter_values() == {"plain": 1}
        combined = registry.counter_values(untagged_only=False)
        assert combined == {"plain": 1, "split": 10}


class TestGauges:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue.depth")
        gauge.set(4)
        gauge.add(2)
        gauge.add(-1)
        assert registry.gauge("queue.depth").value == 5.0


class TestHistogram:
    def test_moments_are_exact(self):
        histogram = Histogram("lat")
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.minimum == 0.001
        assert histogram.maximum == 0.003
        summary = histogram.summary()
        assert summary.mean == pytest.approx(0.002)
        assert summary.stddev == pytest.approx(
            math.sqrt(2 / 3) * 0.001, rel=1e-9)

    def test_quantiles_clamped_to_observed_range(self):
        histogram = Histogram("lat")
        histogram.observe(0.0021)
        assert histogram.quantile(0.0) == 0.0021
        assert histogram.quantile(0.99) == 0.0021

    def test_quantile_orders_buckets(self):
        histogram = Histogram("bytes", buckets=DEFAULT_BYTES_BUCKETS)
        for value in (10, 20, 30, 1000):
            histogram.observe(value)
        assert histogram.quantile(0.50) <= histogram.quantile(0.99)
        assert histogram.quantile(0.99) <= 1000

    def test_negative_observation_rejected(self):
        with pytest.raises(MetricsError):
            Histogram("lat").observe(-0.1)
        # Backward compatibility: MetricsError is still a ValueError.
        with pytest.raises(ValueError):
            Histogram("lat").observe(-0.1)

    def test_empty_summary_raises_no_samples(self):
        histogram = Histogram("lat")
        with pytest.raises(NoSamplesError):
            histogram.summary()
        with pytest.raises(NoSamplesError):
            histogram.quantile(0.5)
        with pytest.raises(NoSamplesError):
            histogram.stddev()

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(MetricsError):
            Histogram("lat", buckets=())

    def test_bucket_rows_include_overflow(self):
        histogram = Histogram("bytes", buckets=(10, 100))
        histogram.observe(5)
        histogram.observe(1_000_000)
        rows = histogram.bucket_rows()
        assert rows[0] == (10, 1)
        assert rows[-1][0] == math.inf
        assert rows[-1][1] == 1


class TestSnapshot:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", kind="x").incr(7)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.004)
        registry.histogram("empty")
        snap = registry.snapshot()
        assert snap["counters"] == [
            {"name": "c", "tags": {"kind": "x"}, "value": 7}]
        assert snap["gauges"] == [{"name": "g", "tags": {}, "value": 1.5}]
        by_name = {record["name"]: record for record in snap["histograms"]}
        assert by_name["h"]["count"] == 1
        assert by_name["h"]["p99"] == pytest.approx(0.004)
        # The +Inf bucket serializes as the string "inf" (JSON has no Inf).
        assert by_name["h"]["buckets"][-1]["le"] == "inf"
        # A histogram with no observations exports its count but no summary.
        assert by_name["empty"]["count"] == 0
        assert "buckets" not in by_name["empty"]
