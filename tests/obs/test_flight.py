"""Flight recorder: lanes, digest chains, postmortems, replay, bisection.

The determinism properties (same seed -> bit-identical chains, different
seed -> localized fork) live in tests/property/test_engine_equivalence.py;
here the machinery is pinned directly: ring/window accounting, the engine's
recording dispatch swap, kernel record sites, crash freezing, the
``[obs]/hosts/<host>/flightlog`` leaf, divergence verdicts, and the
``python -m repro.obs.replay`` CLI.
"""

import json

import pytest

from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, Receive, Reply, Send, SetPid
from repro.kernel.messages import Message, ReplyCode
from repro.kernel.services import Scope
from repro.obs import Observability
from repro.obs.flight import (
    KIND_NAMES,
    KIND_SEND,
    PACKET_BASE,
    FlightRecorder,
    chain_divergence,
    compare,
    disable_flight_recorder,
    dump_postmortems,
    enable_flight_recorder,
    export_dump,
    load_postmortem,
    record_divergence,
    record_dict,
    write_postmortem,
)
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, enable_obs_namespace, start_server
from repro.sim.engine import Engine, SimulationError
from tests.helpers import run_on


class _FakeEngine:
    """Just enough engine for direct FlightRecorder feeding."""

    def __init__(self):
        self._fire_seq = 0
        self._now = 0.0
        self.now = 0.0


class _FakeHost:
    def __init__(self, name="h1"):
        self.name = name
        self.engine = _FakeEngine()


def _feed(recorder, host, count, start_seq=0):
    for index in range(count):
        host.engine._fire_seq = start_seq + index
        host.engine._now = float(start_seq + index)
        recorder.record(host, "send", 1, 2, index + 1, "phase:send")


class TestLaneAccounting:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(window=0)

    def test_ring_bounds_and_dropped(self):
        recorder = FlightRecorder(capacity=4, window=2)
        host = _FakeHost()
        _feed(recorder, host, 11)
        snap = recorder.snapshot("h1")
        assert snap["records_seen"] == 11
        # 5 sealed windows of 2 went through the ring (cap 4) and one
        # record sits in the open tail: 11 - 4 - 1 dropped.
        assert snap["dropped"] == 6
        assert len(snap["records"]) == 5
        assert len(snap["chain"]) == 5
        # Retained records are the newest ones, in order.
        assert [r["seq"] for r in snap["records"]] == [6, 7, 8, 9, 10]

    def test_unknown_host_snapshot_is_empty(self):
        recorder = FlightRecorder()
        snap = recorder.snapshot("ghost")
        assert snap["records_seen"] == 0
        assert snap["records"] == [] and snap["chain"] == []
        assert recorder.records("ghost") == []
        assert recorder.chain("ghost") == []

    def test_digest_chain_is_deterministic_and_chained(self):
        first = FlightRecorder(window=3)
        second = FlightRecorder(window=3)
        for recorder in (first, second):
            _feed(recorder, _FakeHost(), 9)
        assert first.chain("h1") == second.chain("h1")
        digests = [entry[3] for entry in first.chain("h1")]
        assert len(digests) == 3 and len(set(digests)) == 3
        # Chaining: a different first window changes every later digest.
        forked = FlightRecorder(window=3)
        host = _FakeHost()
        host.engine._fire_seq = 999
        forked.record(host, "send", 1, 2, 1, "phase:send")
        _feed(forked, host, 8, start_seq=1)
        unforked = [entry[3] for entry in first.chain("h1")]
        assert all(a != b for a, b in
                   zip(unforked, (e[3] for e in forked.chain("h1"))))

    def test_finalize_seals_tails_idempotently(self):
        recorder = FlightRecorder(window=4)
        _feed(recorder, _FakeHost(), 6)
        assert len(recorder.chain("h1")) == 1
        recorder.finalize()
        assert len(recorder.chain("h1")) == 2
        chain = recorder.chain("h1")
        recorder.finalize()             # empty tails: nothing changes
        assert recorder.chain("h1") == chain

    def test_record_and_chain_dicts(self):
        assert record_dict((3, 0.5, KIND_SEND, 1, 2, 7)) == {
            "seq": 3, "t": 0.5, "kind": "send", "src": 1, "dst": 2,
            "txn": 7, "phase": "phase:send"}
        recorder = FlightRecorder(window=1)
        _feed(recorder, _FakeHost(), 1)
        entry = recorder.snapshot("h1")["chain"][0]
        assert entry["window"] == 0 and entry["end_seq"] == 0
        int(entry["digest"], 16)        # 16-hex-digit digest

    def test_packet_kind_codes_match_the_wire_enum(self):
        # flight.py keeps a static copy of the PacketKind vocabulary so it
        # never needs a kernel import; pin it against the real enum.
        from repro.kernel.messages import PacketKind

        assert KIND_NAMES[PACKET_BASE:] == tuple(
            kind.name.lower() for kind in PacketKind)


class TestEngineDispatch:
    def test_attach_installs_only_step_and_run(self):
        engine = Engine()
        sink = object()
        engine.attach_recorder(sink)
        assert engine.recording
        assert "step" in engine.__dict__ and "run" in engine.__dict__
        # Scheduling stays on the class fast path: zero cost at post time.
        for name in ("schedule", "schedule_at", "schedule_many",
                     "post", "post_at"):
            assert name not in engine.__dict__
        engine.detach_recorder(sink)
        assert not engine.recording
        assert "step" not in engine.__dict__ and "run" not in engine.__dict__
        assert engine._fire_seq == -1

    def test_second_recorder_rejected_same_sink_idempotent(self):
        engine = Engine()
        sink = object()
        engine.attach_recorder(sink)
        engine.attach_recorder(sink)    # no-op
        with pytest.raises(SimulationError):
            engine.attach_recorder(object())
        # Detaching a sink that is not attached is a no-op.
        engine.detach_recorder(object())
        assert engine.recording

    def test_fire_seq_stamps_the_firing_event(self):
        engine = Engine()
        engine.attach_recorder(FlightRecorder())
        seen = []
        engine.schedule(0.1, lambda: seen.append(engine._fire_seq))
        engine.schedule(0.2, lambda: seen.append(engine._fire_seq))
        engine.run()
        assert seen == [0, 1]

    def test_fire_seq_in_bounded_run(self):
        engine = Engine()
        engine.attach_recorder(FlightRecorder())
        seen = []
        engine.schedule(0.1, lambda: seen.append(engine._fire_seq))
        engine.schedule(5.0, lambda: seen.append(engine._fire_seq))
        engine.run(until=1.0)
        assert seen == [0] and engine.now == 1.0
        engine.run(until=10.0)
        assert seen == [0, 1]
        assert engine.events_processed == 2

    def test_profiler_wins_and_recorder_rides_along(self):
        from repro.obs.profile import Profiler

        domain = Domain(seed=0)
        engine = domain.engine
        enable_flight_recorder(domain)
        profiler = Profiler(engine)
        engine.attach_profiler(profiler)
        # The instrumented set (which also maintains _fire_seq) took over.
        assert engine.__dict__["step"].__func__ is \
            Engine._step_instrumented
        engine.detach_profiler(profiler)
        # Back to the recording pair, not the bare fast path.
        assert engine.__dict__["step"].__func__ is Engine._step_recording
        disable_flight_recorder(domain)
        assert "step" not in engine.__dict__


def _echo_server():
    yield SetPid(1, Scope.BOTH)
    while True:
        delivery = yield Receive()
        yield Reply(delivery.sender, Message.reply(ReplyCode.OK))


def _small_flight_domain(seed=0):
    """Two hosts, an echo server, a recorder; returns (domain, ws, far)."""
    domain = Domain(seed=seed)
    enable_flight_recorder(domain, window=4)
    workstation = domain.create_host("ws")
    far = domain.create_host("far")
    far.spawn(_echo_server(), "server")
    return domain, workstation, far


def _pingers(count=5):
    yield Delay(0.01)
    pid = yield GetPid(1, Scope.ANY)
    for __ in range(count):
        reply = yield Send(pid, Message.request(0x0101))
        assert reply.ok


class TestKernelRecordSites:
    def test_send_reply_complete_and_packets_recorded(self):
        domain, workstation, far = _small_flight_domain()
        run_on(domain, workstation, _pingers())
        recorder = domain.flight
        recorder.finalize()
        assert recorder.hosts() == ["far", "ws"]
        ws_kinds = {KIND_NAMES[r[2]] for r in recorder.records("ws")}
        far_kinds = {KIND_NAMES[r[2]] for r in recorder.records("far")}
        assert {"send", "complete"} <= ws_kinds
        assert "reply" in far_kinds
        # Arriving packets are recorded with lowered PacketKind names.
        assert "request" in far_kinds and "reply" in ws_kinds
        # Every record is stamped with the firing event's seq and a time.
        for record in recorder.records("ws"):
            assert record[0] >= 0 and record[1] >= 0.0

    def test_txn_ids_are_per_domain(self):
        # Two same-seed domains allocate identical txn ids -- the property
        # that makes flight records comparable across runs at all.
        streams = []
        for __ in range(2):
            domain, workstation, __far = _small_flight_domain(seed=5)
            run_on(domain, workstation, _pingers())
            domain.flight.finalize()
            streams.append(domain.flight.records("ws"))
        assert streams[0] == streams[1]

    def test_disable_stops_recording(self):
        domain, workstation, far = _small_flight_domain()
        run_on(domain, workstation, _pingers())
        seen = domain.flight.snapshot("ws")["records_seen"]
        assert seen > 0
        recorder = domain.flight
        disable_flight_recorder(domain)
        assert domain.flight is None
        run_on(domain, workstation, _pingers())
        assert recorder.snapshot("ws")["records_seen"] == seen

    def test_crash_freezes_a_postmortem_and_lane_keeps_flying(self):
        domain, workstation, far = _small_flight_domain()
        run_on(domain, workstation, _pingers())
        recorder = domain.flight
        seen_at_crash = recorder.snapshot("far")["records_seen"]
        far.crash()
        dumps = recorder.postmortems["far"]
        assert len(dumps) == 1
        dump = dumps[0]
        assert dump["kind"] == "postmortem"
        assert dump["frozen_t"] == domain.engine.now
        assert dump["records_seen"] == seen_at_crash
        assert dump["records"]      # the black box holds the last records
        # The live lane keeps recording after a restart; the dump does not.
        far.restart()
        far.spawn(_echo_server(), "server")
        run_on(domain, workstation, _pingers())
        assert recorder.snapshot("far")["records_seen"] > seen_at_crash
        assert dump["records_seen"] == seen_at_crash

    def test_freeze_inside_first_window_still_carries_a_chain(self):
        # A host that dies before its first window seals must still get a
        # chain in its black box: freeze provisionally seals the partial
        # tail (same digest finalize would produce) without touching the
        # live lane's window cadence.
        recorder = FlightRecorder(window=256)
        host = _FakeHost("young")
        _feed(recorder, host, 28)
        dump = recorder.freeze(host)
        assert len(dump["records"]) == 28
        assert len(dump["chain"]) == 1
        assert dump["chain"][0][1] == dump["records"][-1][0]  # last seq
        # The live lane stays unsealed -- its chain is its own business.
        assert recorder.chain("young") == []
        # The provisional digest equals what finalize produces here.
        recorder.finalize()
        assert recorder.chain("young") == dump["chain"]

    def test_double_crash_keeps_both_dumps(self):
        domain, workstation, far = _small_flight_domain()
        run_on(domain, workstation, _pingers())
        far.crash()
        far.restart()
        far.spawn(_echo_server(), "server")
        run_on(domain, workstation, _pingers())
        far.crash()
        assert len(domain.flight.postmortems["far"]) == 2


class TestFlightlogLeaf:
    def _obs_system(self, flight):
        domain = Domain(obs=Observability())
        if flight:
            enable_flight_recorder(domain)
        workstation = setup_workstation(domain, "mann", name="ws1")
        handle = start_server(domain.create_host("vax1"),
                              VFileServer(user="mann"))
        standard_prefixes(workstation, handle)
        enable_obs_namespace(domain, root_host=workstation.host)
        return domain, workstation

    def _read(self, domain, workstation, name):
        def client(session):
            return (yield from session.read_file(name))

        payload = run_on(domain, workstation.host,
                         client(workstation.session()))
        return [json.loads(line)
                for line in payload.decode().splitlines() if line.strip()]

    def test_live_lane_served_as_jsonl(self):
        domain, workstation = self._obs_system(flight=True)
        records = self._read(domain, workstation,
                             "[obs]/hosts/vax1/flightlog")
        meta = records[0]
        assert meta["kind"] == "meta" and meta["enabled"]
        assert meta["host"] == "vax1" and meta["schema"] == 1
        # The read itself flowed through vax1's kernel, so its lane holds
        # flight records by the time the payload was rendered; the flight
        # kind rides as "event" (the line discriminator stays "kind").
        lines = [r for r in records[1:] if r["kind"] == "record"]
        assert lines and all("event" in line and "seq" in line
                             for line in lines)

    def test_disabled_domain_serves_a_stub(self):
        domain, workstation = self._obs_system(flight=False)
        records = self._read(domain, workstation,
                             "[obs]/hosts/vax1/flightlog")
        assert records == [
            {"kind": "meta", "host": "vax1", "enabled": False}]

    def test_postmortem_markers_ride_on_the_leaf(self):
        domain, workstation = self._obs_system(flight=True)
        vax = next(h for h in domain.hosts.values() if h.name == "vax1")
        self._read(domain, workstation, "[obs]/hosts/vax1/flightlog")
        vax.crash()
        vax.restart()       # the [obs] namespace respawns its stat server
        records = self._read(domain, workstation,
                             "[obs]/hosts/vax1/flightlog")
        marks = [r for r in records if r["kind"] == "postmortem"]
        assert len(marks) == 1 and marks[0]["records"] > 0


class TestDivergence:
    def test_chain_divergence(self):
        a = [(0, 5, 1.0, 0xAA), (1, 9, 2.0, 0xBB)]
        assert chain_divergence(a, list(a)) is None
        assert chain_divergence(a, [a[0], (1, 9, 2.0, 0xCC)]) == 1
        assert chain_divergence(a, a[:1]) == 1
        assert chain_divergence([], []) is None

    def test_record_divergence(self):
        a = [(0, 0.0, "send", 1, 2, 1, ""), (1, 0.1, "reply", 2, 1, 1, "")]
        assert record_divergence(a, list(a)) is None
        forked = [a[0], (1, 0.1, "reply", 2, 1, 99, "")]
        index, rec_a, rec_b = record_divergence(a, forked)
        assert index == 1 and rec_a == a[1] and rec_b == forked[1]
        # Strict prefix: the longer side supplies the record, the shorter
        # side is None.
        index, rec_a, rec_b = record_divergence(a, a[:1])
        assert index == 1 and rec_a == a[1] and rec_b is None
        index, rec_a, rec_b = record_divergence(a[:1], a)
        assert index == 1 and rec_a is None and rec_b == a[1]

    def test_compare_localizes_the_lowest_seq_fork(self):
        first = FlightRecorder(window=2)
        second = FlightRecorder(window=2)
        host_a, host_b = _FakeHost("a"), _FakeHost("b")
        for recorder in (first, second):
            _feed(recorder, _FakeHost("a"), 4)
            _feed(recorder, _FakeHost("b"), 4)
        # Fork host b with one extra record (seq 4) in the second run only.
        host = _FakeHost("b")
        host.engine._fire_seq = 4
        second.record(host, "probe", 9, 9, 9, "phase:packet")
        first.finalize()
        second.finalize()
        verdict = compare(first, second)
        assert not verdict["identical"]
        assert verdict["hosts"]["a"]["chains_equal"]
        assert not verdict["hosts"]["b"]["chains_equal"]
        fork = verdict["fork"]
        assert fork["host"] == "b" and fork["seq"] == 4
        assert fork["a"] is None and fork["b"]["kind"] == "probe"

    def test_identical_recorders_compare_identical(self):
        first, second = FlightRecorder(window=2), FlightRecorder(window=2)
        for recorder in (first, second):
            _feed(recorder, _FakeHost(), 5)
            recorder.finalize()
        verdict = compare(first, second)
        assert verdict["identical"] and verdict["fork"] is None


class TestPostmortemDumps:
    def test_write_load_roundtrip(self, tmp_path):
        domain, workstation, far = _small_flight_domain()
        run_on(domain, workstation, _pingers())
        far.crash()
        dump = domain.flight.postmortems["far"][0]
        path = tmp_path / "far.json"
        write_postmortem(str(path), dump)
        # Crash-time dumps hold raw record tuples (freeze runs inside the
        # measured run); the written form is the named export, and loading
        # it back is a fixed point.
        loaded = load_postmortem(str(path))
        assert loaded == json.loads(json.dumps(export_dump(dump)))
        assert loaded["records"] and isinstance(loaded["records"][0], dict)
        assert export_dump(loaded) == loaded

    def test_dump_postmortems_covers_every_lane(self, tmp_path):
        domain, workstation, far = _small_flight_domain()
        run_on(domain, workstation, _pingers())
        far.crash()
        domain.flight.finalize()
        paths = dump_postmortems(domain.flight, str(tmp_path), seed=5)
        names = sorted(p.rsplit("/", 1)[-1] for p in paths)
        # far crashed (frozen dump); ws never did (end-of-run dump).
        assert names == ["postmortem-seed5-far-0.json",
                         "postmortem-seed5-ws-0.json"]
        ws_dump = load_postmortem(
            str(tmp_path / "postmortem-seed5-ws-0.json"))
        assert ws_dump["frozen_t"] is None and ws_dump["records"]


class TestReplayCli:
    KNOBS = ["--seed", "3", "--duration", "1.5"]

    def test_verify_identical_runs_exit_zero(self, capsys):
        from repro.obs.replay import main

        assert main([*self.KNOBS, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "digest chains identical" in out

    def test_verify_json_document(self, capsys):
        from repro.obs.replay import main

        assert main([*self.KNOBS, "--verify", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "flight-verify"
        assert document["identical"] is True
        assert document["fork"] is None

    def test_bisect_seed_pair_localizes_the_fork(self, capsys):
        from repro.obs.flight import record_divergence
        from repro.obs.replay import main, replay

        assert main([*self.KNOBS, "--bisect", "seed=3,4", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "flight-bisect"
        assert not document["identical"]
        fork = document["fork"]
        # Recompute the expected fork seq from the raw streams.
        first = replay(seed=3, duration=1.5)
        second = replay(seed=4, duration=1.5)
        expected = None
        for host in set(first.hosts()) | set(second.hosts()):
            diverged = record_divergence(first.records(host),
                                         second.records(host))
            if diverged is None:
                continue
            __, rec_a, rec_b = diverged
            seq = min(r[0] for r in (rec_a, rec_b) if r is not None)
            if expected is None or seq < expected:
                expected = seq
        assert fork["seq"] == expected
        assert fork["a"] is not None or fork["b"] is not None

    def test_bisect_text_mode_prints_both_records(self, capsys):
        from repro.obs.replay import main

        assert main([*self.KNOBS, "--bisect", "seed=3,4"]) == 0
        out = capsys.readouterr().out
        assert "fork: event seq" in out
        assert "run a:" in out and "run b:" in out

    def test_default_mode_renders_crash_window(self, capsys):
        from repro.obs.replay import main

        assert main(self.KNOBS) == 0
        out = capsys.readouterr().out
        assert "around the crash at" in out
        assert "lane vax1" in out or "lane ws-mann" in out

    def test_postmortem_mode_time_travels_into_a_dump(self, capsys,
                                                      tmp_path):
        from repro.obs.replay import main, replay

        recorder = replay(seed=3, duration=1.5)
        dump = recorder.postmortems["vax1"][0]
        path = tmp_path / "vax1.json"
        write_postmortem(str(path), dump)
        assert main(["--postmortem", str(path)]) == 0
        out = capsys.readouterr().out
        assert "host vax1 frozen at" in out

    def test_parse_bisect_rejects_bad_specs(self):
        from repro.obs.replay import parse_bisect

        assert parse_bisect("seed=7,8") == ("seed", 7, 8)
        assert parse_bisect("drop=0.1,0.3") == ("drop", 0.1, 0.3)
        with pytest.raises(ValueError):
            parse_bisect("flux=1,2")
        with pytest.raises(ValueError):
            parse_bisect("seed=7")


class TestChaosFlight:
    def test_flight_summary_and_recorder_on_the_report(self):
        from repro.faults.chaos import run_chaos

        report = run_chaos(seed=7, duration=2.0, drop=0.10, flight=True)
        assert report.recorder is not None
        assert report.flight["postmortems"] == {"vax1": 1}
        hosts = report.flight["hosts"]
        assert set(hosts) == {"ws-mann", "vax1"}
        for entry in hosts.values():
            assert entry["records_seen"] > 0 and entry["windows"] > 0
        assert "flight" in report.to_dict()

    def test_without_flight_nothing_changes(self):
        from repro.faults.chaos import run_chaos

        report = run_chaos(seed=7, duration=2.0, drop=0.10)
        assert report.recorder is None and report.flight == {}
        assert "flight" not in report.to_dict()

    def test_recorder_does_not_perturb_the_run(self):
        from repro.faults.chaos import run_chaos

        bare = run_chaos(seed=7, duration=2.0, drop=0.10)
        flown = run_chaos(seed=7, duration=2.0, drop=0.10, flight=True)
        assert bare.to_dict()["metrics"] == flown.to_dict()["metrics"]
        assert bare.reads == flown.reads
