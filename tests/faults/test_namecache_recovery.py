"""Stale-hint recovery under crash injection and prefix rebinding.

The cache's correctness claim: *no* staleness channel is load-bearing.  A
request routed by a stale binding is detected by its reply code and
transparently re-resolved; the caller sees only the authoritative outcome.
These tests crash servers, re-register services, and rebind prefixes
mid-workload, and assert both the recovery and the convergence (the cache
ends up holding the fresh binding).
"""

from repro.core.context import ContextPair, WellKnownContext
from repro.faults import CrashSchedule
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, Now
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from tests.helpers import run_on, standard_system


def _populated_server(user: str = "mann") -> VFileServer:
    server = VFileServer(user=user)
    node = server.store.make_path("data/f0.dat", directory=False)
    node.data[:] = b"payload"
    return server


def _crash_system(watch_registry: bool):
    """Workstation + crashing file server behind the generic [storage]."""
    domain = Domain(seed=5)
    workstation = setup_workstation(domain, "mann")
    fs_host = domain.create_host("vax1")
    handle = start_server(fs_host, _populated_server())
    standard_prefixes(workstation, handle)
    cache = workstation.enable_name_cache(watch_registry=watch_registry)
    CrashSchedule(domain, fs_host).down_between(
        0.05, 0.1,
        respawn=lambda host: start_server(host, _populated_server()))
    return domain, workstation, cache


class TestCrashRecovery:
    def test_stale_hint_falls_back_and_converges(self):
        domain, workstation, cache = _crash_system(watch_registry=False)
        name = "[storage]data/f0.dat"

        def client(session):
            before = yield from files.read_file(session, name)   # learn
            yield Delay(0.3)                                     # crash+respawn
            after = yield from files.read_file(session, name)    # recover
            again = yield from files.read_file(session, name)    # warm again
            return before, after, again

        before, after, again = run_on(domain, workstation.host,
                                      client(workstation.session()))
        assert before == after == again == b"payload"
        # The stale binding was used once and recovered from in-request.
        assert cache.stats.fallbacks >= 1
        assert cache.stats.invalidations >= 1
        # Convergence: the re-learned hint points at a *live* process on the
        # respawned server host, not at the crashed pid.
        hint = cache.hint_for(name)
        assert hint is not None
        fs_hosts = [host for host in domain.hosts.values()
                    if host.name == "vax1"]
        assert fs_hosts, "file-server host disappeared"
        live = {proc.pid for host in fs_hosts
                for proc in host.processes.values()}
        assert hint[0].server in live

    def test_registry_watch_drops_dead_generic_binding_proactively(self):
        domain, workstation, cache = _crash_system(watch_registry=True)
        name = "[storage]data/f0.dat"
        from repro.kernel.services import ServiceId

        def client(session):
            yield from files.read_file(session, name)
            now = yield Now()
            assert cache.service_pid(int(ServiceId.STORAGE),
                                     now=now) is not None
            yield Delay(0.3)
            # The crash cleared the server's registrations; the subscribed
            # cache heard about it and dropped the generic pid already.
            # (now is well inside the 5 s TTL, so only the registry watch
            # can explain the entry being gone.)
            now = yield Now()
            assert now < 5.0
            assert cache.service_pid(int(ServiceId.STORAGE), now=now) is None
            data = yield from files.read_file(session, name)
            return data

        assert run_on(domain, workstation.host,
                      client(workstation.session())) == b"payload"

    def test_caller_still_sees_real_errors_after_revalidation(self):
        """A genuinely missing name errors exactly as it would cold: the
        fallback re-resolves, the authoritative NOT_FOUND comes back."""
        from repro.core.resolver import NameError_
        from repro.kernel.messages import ReplyCode

        system = standard_system()

        def seed(session):
            yield from files.write_file(session, "[home]doomed.txt", b"x")

        system.run_client(seed(system.session()))
        cache = system.workstation.enable_name_cache()

        def client(session):
            yield from files.read_file(session, "[home]doomed.txt")
            # Delete it behind the cache's back (direct session, no prefix).
            direct = system.session(system.home_context())
            yield from direct.remove("doomed.txt")
            try:
                yield from files.read_file(session, "[home]doomed.txt")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.NOT_FOUND
        # The hint-routed NOT_FOUND triggered one revalidating fallback.
        assert cache.stats.fallbacks == 1


class TestRebindRecovery:
    def test_prefix_rebinding_mid_workload_with_notice(self):
        """An attached cache hears the rebind and the next request goes to
        the *new* target immediately -- no stale result, no fallback."""
        domain = Domain(seed=6)
        workstation = setup_workstation(domain, "mann")
        fs_a = start_server(domain.create_host("vax1"),
                            VFileServer(user="mann"))
        fs_b = start_server(domain.create_host("vax2"),
                            VFileServer(user="mann"))
        standard_prefixes(workstation, fs_a)
        cache = workstation.enable_name_cache()

        def client(session):
            yield from files.write_file(session, "[home]who.txt", b"A")
            bsession = workstation.session(
                ContextPair(fs_b.pid, int(WellKnownContext.HOME)))
            yield from files.write_file(bsession, "who.txt", b"B")
            assert (yield from files.read_file(session, "[home]who.txt")) == b"A"
            yield from session.add_prefix(
                "home", ContextPair(fs_b.pid, int(WellKnownContext.HOME)),
                replace=True)
            # The notice invalidated [home]*; this read must see B.
            return (yield from files.read_file(session, "[home]who.txt"))

        assert run_on(domain, workstation.host,
                      client(workstation.session())) == b"B"
        assert cache.stats.fallbacks == 0
        assert cache.stats.invalidations >= 1

    def test_out_of_band_rebinding_recovers_via_fallback(self):
        """With the notice channel detached (an unobserved rebinding), the
        stale prefix binding still cannot produce a wrong answer: the old
        target's NACK triggers revalidation through the prefix server."""
        domain = Domain(seed=8)
        workstation = setup_workstation(domain, "mann")
        fs_a = start_server(domain.create_host("vax1"),
                            VFileServer(user="mann"))
        fs_b = start_server(domain.create_host("vax2"),
                            VFileServer(user="mann"))
        standard_prefixes(workstation, fs_a)
        cache = workstation.enable_name_cache()

        def client(session):
            bsession = workstation.session(
                ContextPair(fs_b.pid, int(WellKnownContext.HOME)))
            yield from files.write_file(bsession, "only-b.txt", b"B")
            # Learn [home] -> fs_a with a file that exists only on B.
            yield from files.write_file(session, "[home]seed.txt", b"A")
            # Simulate an unobserved rebinding: detach, rebind, so the
            # cached fs_a binding stays.
            workstation.prefix_server.detach_cache(cache)
            workstation.prefix_server.define_prefix(
                "home", ContextPair(fs_b.pid, int(WellKnownContext.HOME)))
            # fs_a answers NOT_FOUND for only-b.txt -> revalidate -> B.
            return (yield from files.read_file(session, "[home]only-b.txt"))

        assert run_on(domain, workstation.host,
                      client(workstation.session())) == b"B"
        assert cache.stats.fallbacks >= 1


class TestClientCrashDetachesCache:
    """The cache-subscription leak (PR 9): a crashed client machine's
    cache must stop hearing prefix notices and hub removals."""

    def _system(self):
        domain = Domain(seed=5)
        workstation = setup_workstation(domain, "mann")
        fs_host = domain.create_host("vax1")
        handle = start_server(fs_host, _populated_server())
        standard_prefixes(workstation, handle)
        cache = workstation.enable_name_cache()
        return domain, workstation, cache

    def test_crash_severs_every_subscription(self):
        domain, workstation, cache = self._system()
        prefix_server = workstation.prefix_server
        assert cache in prefix_server._caches
        assert cache.note_pid_removed in domain._pid_removal_listeners
        assert domain.name_caches[workstation.host.host_id] is cache

        workstation.host.crash()

        # All three channels severed, synchronously with the crash event:
        # notices must never land on a dead machine's cache.
        assert cache not in prefix_server._caches
        assert cache.note_pid_removed not in domain._pid_removal_listeners
        assert workstation.host.host_id not in domain.name_caches
        assert workstation.name_cache is None

    def test_notices_after_the_crash_do_not_reach_the_dead_cache(self):
        domain, workstation, cache = self._system()
        workstation.host.crash()
        invalidations_before = cache.stats.invalidations
        workstation.prefix_server._notify_invalidate(b"tmp")
        assert cache.stats.invalidations == invalidations_before

    def test_reenable_after_restart_starts_cold(self):
        domain, workstation, cache = self._system()
        workstation.host.crash()
        workstation.host.restart()
        fresh = workstation.enable_name_cache()
        assert fresh is not cache
        # The new cache is attached exactly once, the old one not at all.
        assert workstation.prefix_server._caches.count(fresh) == 1
        assert cache not in workstation.prefix_server._caches
        assert domain.name_caches[workstation.host.host_id] is fresh
