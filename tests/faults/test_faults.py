"""Tests for crash and partition injection, and the availability claims."""

import pytest

from repro.core.resolver import NameError_
from repro.faults import (
    CrashSchedule,
    crash_at,
    heal_partition,
    partition_between,
    restart_at,
)
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, Now, Send
from repro.kernel.messages import Message, ReplyCode
from repro.kernel.services import Scope
from repro.runtime import files
from repro.servers import VFileServer, start_server
from tests.helpers import run_on, standard_system


class TestCrashInjection:
    def test_crashed_server_times_out_clients(self):
        system = standard_system()
        crash_at(system.domain, system.fileserver.host, 0.05)

        def client(session):
            yield Delay(0.1)
            try:
                yield from files.read_file(session, "anything.txt")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.TIMEOUT

    def test_restart_without_respawn_leaves_no_service(self):
        system = standard_system()
        host = system.fileserver.host
        crash_at(system.domain, host, 0.05)
        restart_at(system.domain, host, 0.1)

        def client(session):
            yield Delay(0.2)
            reply = yield Send(system.fileserver.pid, Message.request(1))
            return reply.reply_code

        # Machine is back, the old process is not: immediate NACK.
        assert system.run_client(
            client(system.session())) is ReplyCode.NONEXISTENT_PROCESS

    def test_restart_with_respawn_restores_service(self):
        system = standard_system()
        host = system.fileserver.host
        schedule = CrashSchedule(system.domain, host)
        schedule.down_between(
            0.05, 0.1,
            respawn=lambda h: start_server(h, VFileServer(user="mann")))

        def client(session):
            yield Delay(0.2)
            from repro.kernel.services import ServiceId

            pid = yield GetPid(int(ServiceId.STORAGE), Scope.ANY)
            return pid

        pid = system.run_client(client(system.session()))
        assert pid is not None
        assert pid != system.fileserver.pid  # a new process (Sec. 4.2)

    def test_crash_is_idempotent_and_schedule_cancellable(self):
        system = standard_system()
        host = system.fileserver.host
        schedule = CrashSchedule(system.domain, host)
        schedule.down_between(0.05, 0.1)
        schedule.cancel()
        host.crash()
        host.crash()  # no-op
        assert host.crashed
        host.restart()
        host.restart()
        assert not host.crashed

    def test_bad_schedule_rejected(self):
        system = standard_system()
        schedule = CrashSchedule(system.domain, system.fileserver.host)
        with pytest.raises(ValueError):
            schedule.down_between(0.2, 0.1)


class TestPartitions:
    def test_partition_cuts_both_directions(self):
        system = standard_system()
        ws_host = system.workstation.host
        fs_host = system.fileserver.host
        partition_between(system.domain, [ws_host.host_id],
                          [fs_host.host_id])

        def client(session):
            try:
                yield from files.read_file(session, "x")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.TIMEOUT

    def test_heal_restores_connectivity(self):
        system = standard_system()
        ws_host = system.workstation.host
        fs_host = system.fileserver.host
        partition_between(system.domain, [ws_host.host_id],
                          [fs_host.host_id])
        system.domain.engine.schedule(0.2,
                                      lambda: heal_partition(system.domain))

        def client(session):
            yield Delay(0.5)
            yield from files.write_file(session, "healed.txt", b"ok")
            return (yield from files.read_file(session, "healed.txt"))

        assert system.run_client(client(system.session())) == b"ok"

    def test_overlapping_partition_rejected(self):
        system = standard_system()
        with pytest.raises(ValueError, match="both sides"):
            partition_between(system.domain, [1, 2], [2, 3])

    def test_unaffected_hosts_keep_working(self):
        system = standard_system()
        other_host = system.domain.create_host("bystander")
        fs2 = start_server(other_host, VFileServer(user="mann"))
        partition_between(system.domain, [system.workstation.host.host_id],
                          [system.fileserver.host.host_id])

        from repro.core.context import ContextPair, WellKnownContext

        def client(session):
            lsession = system.workstation.session(
                ContextPair(fs2.pid, int(WellKnownContext.HOME)))
            yield from files.write_file(lsession, "alive.txt", b"y")
            return (yield from files.read_file(lsession, "alive.txt"))

        assert system.run_client(client(system.session())) == b"y"


class TestDistributedNamingUnderFaults:
    def test_names_live_and_die_with_their_objects(self):
        """Sec. 2.2 Reliability: if the object's server is up, its name
        works; no third party can take the name down."""
        domain = Domain()
        from repro.runtime.workstation import setup_workstation, standard_prefixes
        from repro.core.context import ContextPair, WellKnownContext

        ws = setup_workstation(domain, "mann")
        fs_a = start_server(domain.create_host("vax1"), VFileServer(user="mann"))
        fs_b = start_server(domain.create_host("vax2"), VFileServer(user="mann"))
        standard_prefixes(ws, fs_a)
        ws.prefix_server.define_prefix(
            "b", ContextPair(fs_b.pid, int(WellKnownContext.HOME)))

        def setup(session):
            yield from files.write_file(session, "[home]on-a.txt", b"a")
            yield from files.write_file(session, "[b]on-b.txt", b"b")

        run_on(domain, ws.host, setup(ws.session()), name="setup")
        fs_a.host.crash()

        def client(session):
            survived = yield from files.read_file(session, "[b]on-b.txt")
            try:
                yield from files.read_file(session, "[home]on-a.txt")
                lost = None
            except NameError_ as err:
                lost = err.code
            return survived, lost

        survived, lost = run_on(domain, ws.host, client(ws.session()))
        assert survived == b"b"
        assert lost is ReplyCode.TIMEOUT


class TestCrashAfterDetach:
    def test_crash_tolerates_detached_host(self):
        # Regression: a host whose NIC was already detach()ed from the wire
        # used to blow up in crash() trying to set_link() on an unknown host.
        system = standard_system()
        host = system.fileserver.host
        system.domain.ethernet.detach(host.host_id)
        host.crash()  # must not raise
        assert host.crashed

    def test_restart_tolerates_detached_host(self):
        system = standard_system()
        host = system.fileserver.host
        system.domain.ethernet.detach(host.host_id)
        host.crash()
        host.restart()  # must not raise either
        assert not host.crashed


class TestChaosSchedule:
    def test_loss_phase_installs_and_removes_faults(self):
        from repro.faults import ChaosSchedule
        from repro.net.latency import WireFaultModel

        system = standard_system()
        schedule = ChaosSchedule(system.domain)
        schedule.loss_between(0.1, 0.2, WireFaultModel(drop_rate=0.5))
        engine = system.domain.engine
        assert system.domain.ethernet.fault_model is None
        engine.run(until=0.15)
        assert system.domain.ethernet.fault_model.drop_rate == 0.5
        engine.run(until=0.25)
        assert system.domain.ethernet.fault_model is None

    def test_bad_loss_phase_rejected(self):
        from repro.faults import ChaosSchedule
        from repro.net.latency import WireFaultModel

        system = standard_system()
        with pytest.raises(ValueError):
            ChaosSchedule(system.domain).loss_between(
                0.2, 0.1, WireFaultModel(drop_rate=0.5))

    def test_cancel_undoes_everything(self):
        from repro.faults import ChaosSchedule
        from repro.net.latency import WireFaultModel

        system = standard_system()
        schedule = ChaosSchedule(system.domain)
        schedule.loss_between(0.1, 0.2, WireFaultModel(drop_rate=1.0))
        schedule.crash_between(system.fileserver.host, 0.1, 0.2)
        schedule.cancel()
        system.domain.engine.run(until=0.3)
        assert system.domain.ethernet.fault_model is None
        assert not system.fileserver.host.crashed


class TestChaosHarness:
    def test_short_run_meets_invariants_and_succeeds(self):
        from repro.faults import run_chaos

        report = run_chaos(seed=7, duration=2.0, drop=0.10, crash=True)
        assert report.reads > 0
        assert report.reads_wrong == 0
        assert report.success_rate >= 0.9
        assert report.metrics["ipc.retransmits"] > 0
        assert report.metrics["net.drops"] > 0

    def test_same_seed_reproduces_exactly(self):
        from repro.faults import run_chaos

        first = run_chaos(seed=11, duration=1.0, crash=False)
        second = run_chaos(seed=11, duration=1.0, crash=False)
        assert first.to_dict() == second.to_dict()

    def test_invariant_checks_flag_seeded_violations(self):
        from repro.faults import InvariantViolation, check_invariants
        from repro.faults.chaos import (
            check_cache_accounting,
            check_no_stuck_transactions,
            check_timeouts_explained,
        )

        system = standard_system()
        # Fabricate an unexplained timeout: metered, but no loss or crash.
        system.domain.metrics.incr("ipc.send_timeouts")
        assert check_timeouts_explained(system.domain)
        with pytest.raises(InvariantViolation):
            check_invariants(system.domain)
        assert check_no_stuck_transactions(system.domain) == []

        class FakeStats:
            fallbacks = 3
            invalidations = 1

        class FakeCache:
            stats = FakeStats()

        assert check_cache_accounting(FakeCache())

    def test_cli_runs_and_reports_json(self, capsys):
        import json as json_module

        from repro.faults.chaos import main

        code = main(["--seed", "7", "--duration", "1.5",
                     "--drop", "0.1", "--require-retransmits"])
        assert code == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["seed"] == 7
        assert payload["metrics"]["ipc.retransmits"] > 0
