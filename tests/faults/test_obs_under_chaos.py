"""``[obs]`` under fire: introspection must survive the faults it reports.

The telemetry pipeline is only trustworthy if reading it works *while*
things are broken: series reads issued during the loss phase ride the same
retransmission machinery as any transaction, the alert log read back
through ``[obs]/fleet/alerts`` must match the watchdog engine record for
record, and a crashed host's stat server must come back with its machine.
"""

import json

import pytest

from repro.core.resolver import NameError_
from repro.faults.chaos import (
    ChaosSchedule,
    check_invariants,
    run_chaos,
)
from repro.kernel.domain import Domain
from repro.net.latency import WireFaultModel
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, enable_obs_namespace, start_server
from repro.vio.client import IoError

DURATION = 3.0


def lossy_obs_system(seed: int = 11, drop: float = 0.15):
    """Workstation + file server with [obs] armed and a mid-run loss phase."""
    domain = Domain(seed=seed)
    workstation = setup_workstation(domain, "mann")
    fs_host = domain.create_host("vax1")
    handle = start_server(fs_host, VFileServer(user="mann"))
    standard_prefixes(workstation, handle)
    enable_obs_namespace(domain, workstation.host)
    telemetry = domain.enable_telemetry(interval=0.1)
    schedule = ChaosSchedule(domain)
    schedule.loss_between(0.1 * DURATION, 0.9 * DURATION,
                          WireFaultModel(drop_rate=drop, dup_rate=0.02,
                                         delay_rate=0.05))
    return domain, workstation, fs_host, telemetry


class TestReadsAcrossTheLossyWire:
    def test_timeseries_reads_ride_the_retransmission_path(self):
        domain, workstation, __, __ = lossy_obs_system()
        outcomes = {"ok": 0, "failed": 0, "bad_payload": 0}

        def client(session):
            from repro.kernel.ipc import Delay, Now

            while True:
                now = yield Now()
                if now >= DURATION:
                    break
                for name in ("[obs]/hosts/vax1/timeseries/retransmits",
                             "[obs]/fleet/alerts"):
                    try:
                        payload = yield from session.read_file(name)
                    except (NameError_, IoError):
                        outcomes["failed"] += 1
                        continue
                    records = [json.loads(line) for line in
                               payload.splitlines() if line.strip()]
                    if records and records[0].get("kind") == "meta":
                        outcomes["ok"] += 1
                    else:
                        outcomes["bad_payload"] += 1
                yield Delay(0.05)

        workstation.host.spawn(client(workstation.session()),
                               name="obs-chaos-reader")
        domain.run()
        domain.check_healthy()
        check_invariants(domain)

        # Frames were genuinely lost and retransmitted under the reads...
        assert domain.metrics.count("net.drops") > 0
        assert domain.metrics.count("ipc.retransmits") > 0
        # ...yet every [obs] read completed with a well-formed payload.
        # (Reads are charged real latency -- stretched further by the
        # retransmissions -- so the loop fits ~20 per simulated second.)
        assert outcomes["ok"] >= 20
        assert outcomes["failed"] == 0
        assert outcomes["bad_payload"] == 0


class TestAlertDelivery:
    def test_chaos_run_fires_resolves_and_delivers_alerts(self):
        # run_chaos itself raises InvariantViolation if the [obs] read of
        # the alert log disagrees with the engine's emissions.
        report = run_chaos(seed=7, duration=5.0, drop=0.10, watchdogs=True)
        assert report.alerts["fired"] >= 1
        assert report.alerts["resolved"] >= 1
        assert report.alerts["delivered"] == (report.alerts["fired"]
                                              + report.alerts["resolved"])
        assert not report.alerts["active"]       # the run ends healthy
        events = report.alerts["events"]
        assert [event["event"] for event in events].count("fire") == \
            report.alerts["fired"]
        retransmit_fires = [event for event in events
                            if event["event"] == "fire"
                            and event["rule"] == "retransmit-rate"]
        assert retransmit_fires, "loss phase never tripped retransmit-rate"
        # Fire precedes resolve on the simulated timeline.
        times = [event["t"] for event in events]
        assert times == sorted(times)

    def test_alert_records_survive_dropped_frames_on_the_read_path(self):
        # Same invariant, harsher wire: the post-run read still crosses a
        # wire that dropped frames all run; delivery must stay exact.
        report = run_chaos(seed=3, duration=5.0, drop=0.20, watchdogs=True)
        assert report.alerts["delivered"] == len(report.alerts["events"])


class TestStatServerRecovery:
    def test_crashed_host_gets_its_stat_server_back(self):
        domain = Domain(seed=5)
        workstation = setup_workstation(domain, "mann")
        fs_host = domain.create_host("vax1")
        handle = start_server(fs_host, VFileServer(user="mann"))
        standard_prefixes(workstation, handle)
        namespace = enable_obs_namespace(domain, workstation.host)
        before = namespace.stat_pid("vax1")
        assert before is not None

        domain.engine.schedule(0.5, fs_host.crash)
        domain.engine.schedule(1.0, fs_host.restart)

        def client(session):
            from repro.kernel.ipc import Delay

            yield Delay(1.5)                     # after the restart
            return (yield from session.read_file("[obs]/hosts/vax1/metrics"))

        box = {}

        def wrapper():
            box["payload"] = yield from client(workstation.session())

        workstation.host.spawn(wrapper(), name="post-restart-reader")
        domain.run()
        after = namespace.stat_pid("vax1")
        # The respawned stat server is a new process on the same name...
        assert after is not None
        assert after != before
        # ...and the read reaches it through the re-bound hosts/ link.
        snap = json.loads(box["payload"])
        assert snap["host"] == "vax1"
        assert snap["crashed"] is False


class TestWatchdogGateStaysQuiet:
    def test_clean_wire_fires_nothing(self):
        report = run_chaos(seed=7, duration=2.0, drop=0.0, dup=0.0,
                           delay_rate=0.0, crash=False, watchdogs=True)
        assert report.alerts["fired"] == 0
        assert report.alerts["resolved"] == 0
        assert report.alerts["delivered"] == 0
        assert report.success_rate == pytest.approx(1.0)
