"""Replica-crash storms: failover, rejoin, and the cache-accounting
invariant across crash-then-restart of the prefix service itself."""

import pytest

from repro.faults.chaos import run_replica_storm

#: Small storm used by most tests here (half the pinned E18 duration, so
#: the suite stays fast while every replica still dies once).
QUICK = dict(seed=11, duration=3.0, n_replicas=3, n_prefixes=16,
             n_clients=2, lease_ttl=0.8)


class TestReplicaStorm:
    def test_every_read_survives_owner_failover(self):
        # run_replica_storm raises InvariantViolation on any failed read
        # with >= 2 replicas; the assertions re-state the contract locally.
        report = run_replica_storm(**QUICK)
        assert report.reads > 0
        assert report.reads_failed == 0
        assert report.reads_wrong == 0
        assert report.reads_ok == report.reads

    def test_every_crash_promotes_and_every_restart_rejoins(self):
        report = run_replica_storm(**QUICK)
        assert report.promotions == QUICK["n_replicas"]
        assert report.rejoins == QUICK["n_replicas"]
        # v1 at boot, +1 per drop, +1 per rejoin.
        assert report.map_version == 1 + 2 * QUICK["n_replicas"]

    def test_no_resolution_served_from_an_expired_lease(self):
        # The pinned E18 storm: long enough that leases actually lapse
        # under the crash windows and refusals happen.
        report = run_replica_storm()
        for entry in report.replicas:
            assert entry["expired_served"] == 0
        # Refusals did happen (leases lapsed under the crash windows), so
        # the zero above is load-bearing, not vacuous.
        assert sum(entry["lease_refusals"] for entry in report.replicas) > 0

    def test_cache_accounting_holds_per_resolver(self):
        # Satellite 4's invariant, asserted explicitly per client resolver:
        # every fallback is matched by at least one invalidation, including
        # across crash-then-restart of the prefix servers themselves.
        report = run_replica_storm(**QUICK)
        assert len(report.resolvers) == QUICK["n_clients"]
        for entry in report.resolvers:
            stats = entry["stats"]
            assert stats["invalidations"] >= stats["fallbacks"]

    def test_storm_without_crashes_never_falls_over(self):
        report = run_replica_storm(**dict(QUICK, crash=False))
        assert report.reads_failed == 0
        assert report.promotions == 0
        assert report.rejoins == 0
        assert report.map_version == 1

    def test_storm_is_deterministic(self):
        first = run_replica_storm(**QUICK)
        second = run_replica_storm(**QUICK)
        assert first.to_dict() == second.to_dict()


class TestSingleReplicaRestart:
    def test_crash_then_restart_of_the_prefix_server_itself(self):
        # n_replicas=1: the whole name service dies and comes back (the
        # paper's "recreated after a crash with a different process
        # identifier").  Reads stall during the outage but every one is
        # retried to completion: the resolver re-finds the reborn server
        # via the GetPid broadcast, so nothing fails permanently.
        report = run_replica_storm(**dict(QUICK, n_replicas=1, n_clients=1))
        assert report.reads_failed == 0
        assert report.reads_ok == report.reads
        # One crash (no survivor to promote), one rejoin: v1 -> v3.
        assert report.promotions == 0
        assert report.rejoins == 1
        assert report.map_version == 3
        for entry in report.resolvers:
            stats = entry["stats"]
            assert stats["invalidations"] >= stats["fallbacks"]
        for entry in report.replicas:
            assert entry["expired_served"] == 0
