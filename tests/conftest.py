"""Pytest configuration: make `tests.helpers` importable and add fixtures."""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.kernel.domain import Domain

# Wall-clock deadlines make property tests flaky on loaded machines; the
# tests assert logic, not speed.
settings.register_profile("repro", deadline=None)
settings.load_profile("repro")


@pytest.fixture
def domain() -> Domain:
    return Domain(seed=7)


@pytest.fixture
def two_hosts(domain):
    return domain, domain.create_host("alpha"), domain.create_host("beta")
