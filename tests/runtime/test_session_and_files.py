"""Tests for the runtime session, whole-file helpers, and program loading."""

import pytest

from repro.core.context import ContextPair, WellKnownContext
from repro.core.resolver import NameError_
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid
from repro.kernel.services import Scope, ServiceId
from repro.runtime import files
from repro.runtime.program import find_team_server, load_program, run_program
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import TeamServer, VFileServer, start_server
from tests.helpers import run_on, standard_system


class TestSessionBasics:
    def test_session_requires_a_default_context(self):
        domain = Domain()
        workstation = setup_workstation(domain, "mann")
        with pytest.raises(ValueError, match="current context"):
            workstation.session()

    def test_copy_file_within_server(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "src.txt", b"payload")
            yield from files.copy_file(session, "src.txt", "dst.txt")
            return (yield from files.read_file(session, "dst.txt"))

        assert system.run_client(client(system.session())) == b"payload"

    def test_copy_file_across_servers(self):
        """The uniform protocol makes cross-server copy the same code."""
        domain = Domain()
        ws = setup_workstation(domain, "mann")
        fs_a = start_server(domain.create_host("vax1"), VFileServer(user="mann"))
        fs_b = start_server(domain.create_host("vax2"), VFileServer(user="mann"))
        standard_prefixes(ws, fs_a)
        ws.prefix_server.define_prefix(
            "backup", ContextPair(fs_b.pid, int(WellKnownContext.HOME)))

        def client(session):
            yield from files.write_file(session, "[home]orig.txt", b"cross")
            yield from files.copy_file(session, "[home]orig.txt",
                                       "[backup]orig.txt")
            return (yield from files.read_file(session, "[backup]orig.txt"))

        assert run_on(domain, ws.host, client(ws.session())) == b"cross"
        assert fs_b.server.store.resolve_path("users/mann/orig.txt") is not None

    def test_current_context_name_exact_with_prefix(self):
        system = standard_system()

        def client(session):
            result = yield from session.current_context_name()
            return result

        result = system.run_client(client(system.session()))
        # [home] exists in the prefix table but points at HOME's id, while
        # the inverse scan matches the *root* pair; server-relative is the
        # honest outcome here.
        assert result.name is not None

    def test_chdir_then_relative_names(self):
        system = standard_system()

        def client(session):
            yield from session.mkdir("deep")
            yield from session.mkdir("deep/er")
            yield from session.chdir("deep/er")
            yield from files.write_file(session, "leaf.txt", b"leaf")
            name = yield from session.current_context_name()
            return name.text

        text = system.run_client(client(system.session()))
        assert text.endswith("users/mann/deep/er")

    def test_prefixed_chdir(self):
        system = standard_system()

        def client(session):
            yield from session.chdir("[tmp]")
            yield from files.write_file(session, "scratch.txt", b"s")
            return (yield from files.read_file(session, "[tmp]scratch.txt"))

        assert system.run_client(client(system.session())) == b"s"


class TestProgramLoading:
    def test_load_program_moves_the_image(self):
        """E2's path: LOAD_PROGRAM + MoveTo into the requester's memory."""
        system = standard_system()
        image = bytes(range(256)) * 256  # 64 KB

        def client(session):
            yield from files.write_file(session, "[bin]editor", image)
            from repro.kernel.ipc import Now

            t0 = yield Now()
            loaded = yield from load_program(session, "[bin]editor")
            t1 = yield Now()
            return loaded, t1 - t0

        loaded, elapsed = system.run_client(client(system.session()))
        assert loaded == image
        # 64 KB MoveTo dominates: ~338 ms plus the open/query overheads.
        assert 0.33 < elapsed < 0.40

    def test_load_missing_program_fails(self):
        system = standard_system()

        def client(session):
            try:
                yield from load_program(session, "[bin]ghost")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())).name == "NOT_FOUND"

    def test_run_program_via_team_service(self):
        system = standard_system()
        start_server(system.domain.create_host("teams"), TeamServer())

        def client(session):
            yield Delay(0.01)
            team = yield from find_team_server()
            name, pid = yield from run_program(team, "shell", duration=1.0)
            records = yield from session.list_directory("[team]")
            return name, [r.name for r in records]

        name, listed = system.run_client(client(system.session()))
        assert name in listed


class TestWorkstationWiring:
    def test_standard_prefixes_installed(self):
        system = standard_system()
        names = system.workstation.prefix_server.prefix_names()
        for expected in (b"home", b"bin", b"public", b"tmp", b"root",
                         b"print", b"mail", b"tcp", b"team", b"terminal",
                         b"storage"):
            assert expected in names

    def test_default_context_is_home(self):
        system = standard_system()
        assert system.workstation.default_context == ContextPair(
            system.fileserver.pid, int(WellKnownContext.HOME))

    def test_run_program_helper_spawns_on_workstation(self):
        system = standard_system()
        outcome = {}

        def body_factory(session):
            def body():
                yield from files.write_file(session, "from-prog.txt", b"ok")
                outcome["done"] = True
            return body()

        system.workstation.run_program(body_factory, name="writer")
        system.domain.run()
        system.domain.check_healthy()
        assert outcome.get("done")
