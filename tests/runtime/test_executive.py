"""Tests for the V executive (the command interpreter of paper Sec. 7)."""

import pytest

from repro.runtime.executive import Executive
from repro.servers import MailServer, PrinterServer, TeamServer, start_server
from tests.helpers import standard_system


def run_script(system, script, extra_servers=()):
    for server in extra_servers:
        start_server(system.domain.create_host(server.server_name), server)
    executive = Executive(system.session(), user="mann")

    def body():
        from repro.kernel.ipc import Delay

        yield Delay(0.05)
        yield from executive.run_script(script)
        return executive.output

    return system.run_client(body(), name="executive")


class TestFileCommands:
    def test_write_cat_roundtrip(self):
        output = run_script(standard_system(), """
            write notes.txt remember the naming paper
            cat notes.txt
        """)
        assert output == ["remember the naming paper"]

    def test_ls_renders_types(self):
        output = run_script(standard_system(), """
            mkdir src
            write hello.txt hi
            ls
        """)
        assert output == ["-  hello.txt                   2  mann",
                          "d  src                         0 entries"]

    def test_ls_with_pattern(self):
        output = run_script(standard_system(), """
            write a.py x
            write b.txt x
            write c.py x
            ls . *.py
        """)
        assert [line.split()[1] for line in output] == ["a.py", "c.py"]

    def test_cp_and_rm(self):
        output = run_script(standard_system(), """
            write one.txt data
            cp one.txt two.txt
            rm one.txt
            cat two.txt
            cat one.txt
        """)
        assert output == ["4 bytes", "data",
                          "cat: one.txt: NOT_FOUND"]

    def test_cd_and_pwd(self):
        output = run_script(standard_system(), """
            mkdir deep
            cd deep
            pwd
        """)
        assert output == ["[root]users/mann/deep"]

    def test_query(self):
        output = run_script(standard_system(), """
            write q.txt hello
            query q.txt
        """)
        assert output == ["-  q.txt                       5  mann"]


class TestPrefixCommands:
    def test_define_and_use_prefix(self):
        output = run_script(standard_system(), """
            mkdir proj
            define proj proj
            write [proj]inside.txt payload
            cat [proj]inside.txt
        """)
        assert output == ["payload"]

    def test_undefine(self):
        output = run_script(standard_system(), """
            undefine tmp
            cat [tmp]anything
        """)
        assert output == ["cat: [tmp]anything: NOT_FOUND"]

    def test_prefixes_listing(self):
        output = run_script(standard_system(), "prefixes")
        assert "p  [home] (fixed)" in output
        assert "p  [print] (generic)" in output


class TestServiceCommands:
    def test_run_program(self):
        output = run_script(standard_system(), "run editor 30",
                            extra_servers=(TeamServer(),))
        assert output[0].startswith("[editor.1] pid ")

    def test_print_job(self):
        output = run_script(standard_system(), """
            write doc.txt some document text
            print myjob doc.txt
        """, extra_servers=(PrinterServer(),))
        assert output == ["myjob: 1 page(s), done"]

    def test_mail_command(self):
        mail = MailServer(hostname="su-score.ARPA")
        mail.add_mailbox("cheriton")
        output = run_script(standard_system(),
                            "mail cheriton@su-score.ARPA lunch at noon",
                            extra_servers=(mail,))
        assert output == ["delivered to cheriton@su-score.arpa"]


class TestRobustness:
    def test_unknown_command(self):
        output = run_script(standard_system(), "frobnicate everything")
        assert output == ["frobnicate: unknown command"]

    def test_usage_errors(self):
        output = run_script(standard_system(), "cp only-one-arg")
        assert output == ["cp: usage: cp SOURCE DESTINATION"]

    def test_comments_and_blank_lines_ignored(self):
        output = run_script(standard_system(), """
            # a comment

            write x.txt ok
            cat x.txt
        """)
        assert output == ["ok"]

    def test_executive_survives_errors(self):
        output = run_script(standard_system(), """
            cat ghost.txt
            write real.txt fine
            cat real.txt
        """)
        assert output == ["cat: ghost.txt: NOT_FOUND", "fine"]
