"""Tests for the workload generators."""

import pytest

from repro.baseline import CentralNameServer, UidObjectServer, audit
from repro.servers.fileserver.server import VFileServer
from repro.workloads import (
    NameTreeSpec,
    Operation,
    populate_baseline,
    populate_fileserver,
    zipf_trace,
)
from repro.workloads.traces import uniform_trace


class TestNameTreeSpec:
    def test_counts_match_walk(self):
        spec = NameTreeSpec(depth=2, fanout=3, files_per_directory=4)
        assert spec.directory_count() == 1 + 3 + 9
        assert spec.file_count() == 13 * 4

    def test_flat_tree(self):
        spec = NameTreeSpec(depth=0, fanout=5, files_per_directory=2)
        assert spec.directory_count() == 1
        assert spec.file_count() == 2


class TestPopulateFileserver:
    def test_tree_built_and_paths_resolve(self):
        server = VFileServer(user="mann")
        spec = NameTreeSpec(depth=2, fanout=2, files_per_directory=3)
        paths = populate_fileserver(server, spec)
        assert len(paths) == spec.file_count()
        for path in paths:
            node = server.store.resolve_path(path)
            assert node is not None
            assert node.size == spec.file_bytes

    def test_population_is_idempotent_per_root(self):
        server = VFileServer(user="mann")
        spec = NameTreeSpec(depth=1, fanout=2, files_per_directory=1)
        populate_fileserver(server, spec, root="one")
        paths = populate_fileserver(server, spec, root="two")
        assert all(p.startswith("two/") for p in paths)


class TestPopulateBaseline:
    def test_same_logical_names_and_consistency(self):
        from repro.kernel.pids import Pid

        ns = CentralNameServer()
        servers = [UidObjectServer(allocator_id=i + 1) for i in range(2)]
        for index, server in enumerate(servers):
            server.pid = Pid.make(index + 1, 1)
        spec = NameTreeSpec(depth=1, fanout=2, files_per_directory=2)

        v_server = VFileServer(user="mann")
        v_paths = populate_fileserver(v_server, spec)
        b_paths = populate_baseline(ns, servers, spec)
        assert v_paths == b_paths
        report = audit(ns, servers)
        assert report.consistent
        assert report.bindings == spec.file_count()

    def test_objects_spread_across_servers(self):
        from repro.kernel.pids import Pid

        ns = CentralNameServer()
        servers = [UidObjectServer(allocator_id=i + 1) for i in range(3)]
        for index, server in enumerate(servers):
            server.pid = Pid.make(index + 1, 1)
        populate_baseline(ns, servers,
                          NameTreeSpec(depth=2, fanout=3,
                                       files_per_directory=3))
        counts = [len(s.objects) for s in servers]
        assert all(count > 0 for count in counts)


class TestTraces:
    NAMES = [f"data/f{i}" for i in range(50)]

    def test_trace_is_deterministic(self):
        a = zipf_trace(self.NAMES, 200, seed=3)
        b = zipf_trace(self.NAMES, 200, seed=3)
        assert a.events == b.events
        assert zipf_trace(self.NAMES, 200, seed=4).events != a.events

    def test_read_fraction_respected(self):
        trace = zipf_trace(self.NAMES, 2000, seed=1, read_fraction=0.9)
        reads = sum(1 for op, __ in trace if op is Operation.OPEN_READ)
        assert 0.85 < reads / len(trace) < 0.95

    def test_zipf_trace_has_high_reuse(self):
        trace = zipf_trace(self.NAMES, 1000, seed=2, skew=1.2)
        assert trace.reuse_fraction() > 0.8
        assert trace.unique_names() <= len(self.NAMES)

    def test_uniform_trace_all_reads(self):
        trace = uniform_trace(self.NAMES, 300, seed=5)
        assert all(op is Operation.OPEN_READ for op, __ in trace)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            zipf_trace([], 10)
