"""Behavioural tests for the IPC primitives (paper Sec. 3.1).

These tests run small process constellations on a simulated domain and check
both results and simulated timing against the calibrated model.
"""

import pytest

from repro.kernel.domain import Domain
from repro.kernel.ipc import (
    Delay,
    Forward,
    GetPid,
    MoveFrom,
    MoveTo,
    MyPid,
    Now,
    Receive,
    Reply,
    Segment,
    Send,
    SetPid,
    Spawn,
)
from repro.kernel.messages import Message, ReplyCode
from repro.kernel.pids import Pid
from repro.kernel.services import Scope
from tests.helpers import run_on


def echo_server(replies=None):
    """A server replying OK with an 'echo' of field 'x'."""
    yield SetPid(1, Scope.BOTH)
    while True:
        delivery = yield Receive()
        yield Reply(delivery.sender,
                    Message.reply(ReplyCode.OK, echo=delivery.message.get("x")))


def wait_for_service(service=1):
    """Poll GetPid until the server has registered."""
    while True:
        pid = yield GetPid(service, Scope.ANY)
        if pid is not None:
            return pid
        yield Delay(0.001)


class TestSendReceiveReply:
    def test_transaction_roundtrip_remote(self, two_hosts):
        domain, alpha, beta = two_hosts
        beta.spawn(echo_server(), "server")

        def client():
            pid = yield from wait_for_service()
            reply = yield Send(pid, Message.request(0x0101, x="hello"))
            return reply

        reply = run_on(domain, alpha, client())
        assert reply.ok
        assert reply["echo"] == "hello"

    def test_remote_transaction_takes_paper_time(self, two_hosts):
        """32-byte message between hosts: 2.56 ms (E1's headline number)."""
        domain, alpha, beta = two_hosts
        beta.spawn(echo_server(), "server")

        def client():
            pid = yield from wait_for_service()
            t0 = yield Now()
            yield Send(pid, Message.request(0x0101, x=1))
            t1 = yield Now()
            return t1 - t0

        elapsed = run_on(domain, alpha, client())
        assert elapsed == pytest.approx(2.56e-3, rel=0.01)

    def test_local_transaction_takes_770us(self, domain):
        host = domain.create_host("solo")
        host.spawn(echo_server(), "server")

        def client():
            pid = yield from wait_for_service()
            t0 = yield Now()
            yield Send(pid, Message.request(0x0101, x=1))
            t1 = yield Now()
            return t1 - t0

        elapsed = run_on(domain, host, client())
        assert elapsed == pytest.approx(770e-6, rel=0.01)

    def test_sender_blocks_until_reply(self, domain):
        host = domain.create_host("solo")
        order = []

        def slow_server():
            yield SetPid(1, Scope.BOTH)
            delivery = yield Receive()
            yield Delay(0.5)
            order.append("replied")
            yield Reply(delivery.sender, Message.reply())

        def client():
            pid = yield from wait_for_service()
            yield Send(pid, Message.request(1))
            order.append("resumed")

        host.spawn(slow_server(), "server")
        run_on(domain, host, client())
        assert order == ["replied", "resumed"]

    def test_receive_filter_by_sender(self, domain):
        host = domain.create_host("solo")
        log = []

        def server():
            yield SetPid(1, Scope.BOTH)
            me = yield MyPid()
            first = yield Receive()
            # Deliberately wait for the *other* client before answering.
            wanted = first.message["partner"]
            second = yield Receive(from_pid=Pid(wanted))
            log.append(second.sender.value)
            yield Reply(second.sender, Message.reply())
            yield Reply(first.sender, Message.reply())

        def client_a(partner_pid_value):
            pid = yield from wait_for_service()
            yield Send(pid, Message.request(1, partner=partner_pid_value))

        def client_b():
            yield Delay(0.01)
            pid = yield from wait_for_service()
            yield Send(pid, Message.request(1))

        host.spawn(server(), "server")
        proc_b = host.spawn(client_b(), "b")
        run_on(domain, host, client_a(proc_b.pid.value))
        assert log == [proc_b.pid.value]

    def test_send_to_dead_local_process_fails_fast(self, domain):
        host = domain.create_host("solo")
        dead = Pid.make(host.host_id, 0xBEEF)

        def client():
            reply = yield Send(dead, Message.request(1))
            return reply.reply_code

        code = run_on(domain, host, client())
        assert code is ReplyCode.NONEXISTENT_PROCESS

    def test_send_to_dead_remote_process_gets_nack(self, two_hosts):
        domain, alpha, beta = two_hosts
        dead = Pid.make(beta.host_id, 0xBEEF)

        def client():
            reply = yield Send(dead, Message.request(1))
            return reply.reply_code

        code = run_on(domain, alpha, client())
        assert code is ReplyCode.NONEXISTENT_PROCESS

    def test_send_to_crashed_host_times_out(self, two_hosts):
        domain, alpha, beta = two_hosts
        target = beta.spawn(echo_server(), "server")
        beta.crash()

        def client():
            t0 = yield Now()
            reply = yield Send(target.pid, Message.request(1))
            t1 = yield Now()
            return reply.reply_code, t1 - t0

        code, elapsed = run_on(domain, alpha, client())
        assert code is ReplyCode.TIMEOUT
        # probe protocol: interval * (max failed + 1), small wiggle room
        assert 0.3 <= elapsed <= 0.6

    def test_reply_without_receive_is_an_error(self, domain):
        host = domain.create_host("solo")

        def rogue():
            try:
                yield Reply(Pid.make(host.host_id, 77), Message.reply())
            except Exception as err:  # noqa: BLE001
                return type(err).__name__

        assert run_on(domain, host, rogue()) == "NotAwaitingReply"

    def test_server_death_fails_pending_senders(self, domain):
        host = domain.create_host("solo")

        def mortal_server():
            yield SetPid(1, Scope.BOTH)
            yield Receive()
            # exits without replying

        def client():
            pid = yield from wait_for_service()
            reply = yield Send(pid, Message.request(1))
            return reply.reply_code

        host.spawn(mortal_server(), "server")
        code = run_on(domain, host, client())
        assert code is ReplyCode.NONEXISTENT_PROCESS


class TestForward:
    def test_forward_preserves_original_sender(self, domain):
        hosts = [domain.create_host(f"h{i}") for i in range(3)]
        seen = {}

        def backend():
            yield SetPid(2, Scope.BOTH)
            delivery = yield Receive()
            seen["sender"] = delivery.sender
            seen["forwarder"] = delivery.forwarder
            yield Reply(delivery.sender, Message.reply(ReplyCode.OK, by="backend"))

        def frontend():
            yield SetPid(1, Scope.BOTH)
            while True:
                delivery = yield Receive()
                backend_pid = yield from wait_for_service(2)
                yield Forward(delivery, backend_pid)

        hosts[1].spawn(frontend(), "frontend")
        hosts[2].spawn(backend(), "backend")

        def client():
            me = yield MyPid()
            pid = yield from wait_for_service(1)
            reply = yield Send(pid, Message.request(7, x=1))
            return me, reply

        me, reply = run_on(domain, hosts[0], client())
        assert reply["by"] == "backend"
        assert seen["sender"] == me          # original sender, not forwarder
        assert seen["forwarder"] is not None

    def test_forward_can_rewrite_the_message(self, domain):
        host = domain.create_host("solo")

        def backend():
            yield SetPid(2, Scope.BOTH)
            delivery = yield Receive()
            yield Reply(delivery.sender,
                        Message.reply(ReplyCode.OK, got=delivery.message["tag"]))

        def frontend():
            yield SetPid(1, Scope.BOTH)
            delivery = yield Receive()
            backend_pid = yield from wait_for_service(2)
            rewritten = Message.request(delivery.message.code, tag="rewritten")
            yield Forward(delivery, backend_pid, rewritten)

        host.spawn(frontend(), "frontend")
        host.spawn(backend(), "backend")

        def client():
            pid = yield from wait_for_service(1)
            reply = yield Send(pid, Message.request(7, tag="original"))
            return reply["got"]

        assert run_on(domain, host, client()) == "rewritten"

    def test_forward_chain_across_three_servers(self, domain):
        hosts = [domain.create_host(f"h{i}") for i in range(4)]

        def hop(my_service, next_service):
            def body():
                yield SetPid(my_service, Scope.BOTH)
                delivery = yield Receive()
                if next_service is None:
                    yield Reply(delivery.sender,
                                Message.reply(ReplyCode.OK, at=my_service))
                else:
                    next_pid = yield from wait_for_service(next_service)
                    yield Forward(delivery, next_pid)
            return body

        hosts[1].spawn(hop(1, 2)(), "s1")
        hosts[2].spawn(hop(2, 3)(), "s2")
        hosts[3].spawn(hop(3, None)(), "s3")

        def client():
            pid = yield from wait_for_service(1)
            reply = yield Send(pid, Message.request(9))
            return reply["at"]

        assert run_on(domain, hosts[0], client()) == 3


class TestBulkMoves:
    def test_movefrom_reads_exposed_segment(self, two_hosts):
        domain, alpha, beta = two_hosts
        payload = bytes(range(256)) * 8  # 2 KB

        def server():
            yield SetPid(1, Scope.BOTH)
            delivery = yield Receive()
            data = yield MoveFrom(delivery.sender, 0,
                                  delivery.message["nbytes"])
            yield Reply(delivery.sender,
                        Message.reply(ReplyCode.OK, checksum=sum(data)))

        beta.spawn(server(), "server")

        def client():
            pid = yield from wait_for_service()
            reply = yield Send(pid, Message.request(1, nbytes=len(payload)),
                               Segment(payload))
            return reply["checksum"]

        assert run_on(domain, alpha, client()) == sum(payload)

    def test_moveto_writes_into_writable_segment(self, two_hosts):
        domain, alpha, beta = two_hosts
        content = b"program-image-bytes"

        def server():
            yield SetPid(1, Scope.BOTH)
            delivery = yield Receive()
            yield MoveTo(delivery.sender, 0, content)
            yield Reply(delivery.sender, Message.reply(ReplyCode.OK,
                                                       size=len(content)))

        beta.spawn(server(), "server")

        def client():
            pid = yield from wait_for_service()
            buffer = Segment(size=64, writable=True)
            reply = yield Send(pid, Message.request(1), buffer)
            return buffer.read(0, int(reply["size"]))

        assert run_on(domain, alpha, client()) == content

    def test_moveto_into_readonly_segment_is_an_error(self, two_hosts):
        domain, alpha, beta = two_hosts

        def server():
            yield SetPid(1, Scope.BOTH)
            delivery = yield Receive()
            try:
                yield MoveTo(delivery.sender, 0, b"data")
            except Exception as err:  # noqa: BLE001
                yield Reply(delivery.sender,
                            Message.reply(ReplyCode.OK, error=type(err).__name__))
                return
            yield Reply(delivery.sender, Message.reply(ReplyCode.OK, error=""))

        beta.spawn(server(), "server")

        def client():
            pid = yield from wait_for_service()
            reply = yield Send(pid, Message.request(1), Segment(b"\x00" * 16))
            return reply["error"]

        assert run_on(domain, alpha, client()) == "BadSegmentAccess"

    def test_move_against_non_blocked_process_is_an_error(self, domain):
        host = domain.create_host("solo")
        def idle():
            yield Delay(10.0)

        bystander = host.spawn(idle(), "bystander")

        def server():
            yield SetPid(1, Scope.BOTH)
            delivery = yield Receive()
            try:
                yield MoveFrom(bystander.pid, 0, 10)
            except Exception as err:  # noqa: BLE001
                yield Reply(delivery.sender,
                            Message.reply(ReplyCode.OK, error=type(err).__name__))

        host.spawn(server(), "server")

        def client():
            pid = yield from wait_for_service()
            reply = yield Send(pid, Message.request(1), Segment(b"x"))
            return reply["error"]

        assert run_on(domain, host, client()) == "NotAwaitingReply"

    def test_remote_move_charges_bulk_time(self, two_hosts):
        domain, alpha, beta = two_hosts
        nbytes = 64 * 1024

        def server():
            yield SetPid(1, Scope.BOTH)
            delivery = yield Receive()
            t0 = yield Now()
            yield MoveFrom(delivery.sender, 0, nbytes)
            t1 = yield Now()
            yield Reply(delivery.sender,
                        Message.reply(ReplyCode.OK, elapsed=t1 - t0))

        beta.spawn(server(), "server")

        def client():
            pid = yield from wait_for_service()
            reply = yield Send(pid, Message.request(1), Segment(b"\x00" * nbytes))
            return reply["elapsed"]

        elapsed = run_on(domain, alpha, client())
        expected = domain.latency.bulk_move_remote(nbytes)
        assert elapsed == pytest.approx(expected, rel=0.01)
        # E2's headline: 64 KB in ~338 ms.
        assert elapsed == pytest.approx(0.338, rel=0.02)


class TestMiscEffects:
    def test_spawn_runs_child_on_same_host(self, domain):
        host = domain.create_host("solo")

        def child(marker):
            marker.append("ran")
            yield Delay(0.001)

        def parent():
            marker = []
            child_pid = yield Spawn(child(marker), "child")
            yield Delay(0.01)
            return marker, child_pid

        marker, child_pid = run_on(domain, host, parent())
        assert marker == ["ran"]
        assert child_pid.logical_host == host.host_id

    def test_now_reports_simulated_time(self, domain):
        host = domain.create_host("solo")

        def body():
            t0 = yield Now()
            yield Delay(1.5)
            t1 = yield Now()
            return t1 - t0

        assert run_on(domain, host, body()) == pytest.approx(1.5)

    def test_mypid_matches_spawned_process(self, domain):
        host = domain.create_host("solo")

        def body():
            return (yield MyPid())

        proc_pid = {}

        def wrapper():
            pid = yield MyPid()
            proc_pid["pid"] = pid

        proc = host.spawn(wrapper(), "w")
        domain.run()
        assert proc_pid["pid"] == proc.pid

    def test_process_failure_recorded_not_fatal(self, domain):
        host = domain.create_host("solo")

        def crasher():
            yield Delay(0.001)
            raise ValueError("bug in server code")

        host.spawn(crasher(), "crasher")
        domain.run()
        assert len(domain.failures) == 1
        assert isinstance(domain.failures[0][1], ValueError)
