"""Tests for SetPid/GetPid service naming (paper Sec. 4.2)."""

import pytest

from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, MyPid, Receive, Reply, SetPid
from repro.kernel.messages import Message, ReplyCode
from repro.kernel.pids import Pid
from repro.kernel.services import Registration, Scope, ServiceId, ServiceRegistry
from tests.helpers import run_on


class TestServiceRegistry:
    def test_local_scope_visible_locally_only(self):
        registry = ServiceRegistry()
        registry.set_pid(1, Pid.make(1, 5), Scope.LOCAL)
        assert registry.lookup_local(1) == Pid.make(1, 5)
        assert registry.lookup_remote(1) is None

    def test_remote_scope_visible_remotely_only(self):
        registry = ServiceRegistry()
        registry.set_pid(1, Pid.make(1, 5), Scope.REMOTE)
        assert registry.lookup_local(1) is None
        assert registry.lookup_remote(1) == Pid.make(1, 5)

    def test_both_scope_visible_everywhere(self):
        registry = ServiceRegistry()
        registry.set_pid(1, Pid.make(1, 5), Scope.BOTH)
        assert registry.lookup_local(1) == Pid.make(1, 5)
        assert registry.lookup_remote(1) == Pid.make(1, 5)

    def test_local_and_remote_registrations_coexist(self):
        # "even to allow both simultaneously for the same service" (Sec. 4.2)
        registry = ServiceRegistry()
        local_pid, public_pid = Pid.make(1, 5), Pid.make(1, 6)
        registry.set_pid(1, local_pid, Scope.LOCAL)
        registry.set_pid(1, public_pid, Scope.REMOTE)
        assert registry.lookup_local(1) == local_pid
        assert registry.lookup_remote(1) == public_pid

    def test_reregistration_replaces_same_visibility(self):
        registry = ServiceRegistry()
        registry.set_pid(1, Pid.make(1, 5), Scope.BOTH)
        registry.set_pid(1, Pid.make(1, 9), Scope.BOTH)
        assert registry.lookup_local(1) == Pid.make(1, 9)

    def test_remove_pid_clears_all_registrations(self):
        registry = ServiceRegistry()
        pid = Pid.make(1, 5)
        registry.set_pid(1, pid, Scope.BOTH)
        registry.set_pid(2, pid, Scope.LOCAL)
        registry.remove_pid(pid)
        assert registry.lookup_local(1) is None
        assert registry.lookup_local(2) is None

    def test_any_is_not_a_registration_scope(self):
        with pytest.raises(ValueError):
            ServiceRegistry().set_pid(1, Pid.make(1, 5), Scope.ANY)

    def test_registration_visibility_helpers(self):
        reg = Registration(1, Pid.make(1, 2), Scope.LOCAL)
        assert reg.visible_locally() and not reg.visible_remotely()


def _service_server(service, scope):
    def body():
        yield SetPid(service, scope)
        while True:
            delivery = yield Receive()
            me = yield MyPid()
            yield Reply(delivery.sender, Message.reply(ReplyCode.OK, pid=me.value))
    return body


class TestGetPidAcrossTheDomain:
    def test_local_lookup_prefers_local_server(self, domain):
        host = domain.create_host("ws")
        other = domain.create_host("far")
        local_proc = host.spawn(_service_server(1, Scope.LOCAL)(), "local")
        other.spawn(_service_server(1, Scope.BOTH)(), "public")

        def client():
            yield Delay(0.01)
            pid = yield GetPid(1, Scope.ANY)
            return pid

        assert run_on(domain, host, client()) == local_proc.pid

    def test_broadcast_finds_remote_server(self, domain):
        ws = domain.create_host("ws")
        far = domain.create_host("far")
        server_proc = far.spawn(_service_server(1, Scope.BOTH)(), "srv")

        def client():
            yield Delay(0.01)
            pid = yield GetPid(1, Scope.ANY)
            return pid

        assert run_on(domain, ws, client()) == server_proc.pid

    def test_local_only_lookup_does_not_broadcast(self, domain):
        ws = domain.create_host("ws")
        far = domain.create_host("far")
        far.spawn(_service_server(1, Scope.BOTH)(), "srv")

        def client():
            yield Delay(0.01)
            pid = yield GetPid(1, Scope.LOCAL)
            return pid

        assert run_on(domain, ws, client()) is None
        assert domain.metrics.count("services.getpid_broadcasts") == 0

    def test_remote_only_registration_invisible_to_local_lookup(self, domain):
        ws = domain.create_host("ws")
        ws.spawn(_service_server(1, Scope.REMOTE)(), "srv")

        def client():
            yield Delay(0.01)
            pid = yield GetPid(1, Scope.LOCAL)
            return pid

        assert run_on(domain, ws, client()) is None

    def test_missing_service_times_out_with_none(self, domain):
        ws = domain.create_host("ws")
        domain.create_host("far")

        def client():
            pid = yield GetPid(99, Scope.ANY)
            return pid

        assert run_on(domain, ws, client()) is None
        assert domain.metrics.count("services.getpid_timeouts") == 1

    def test_nonmatching_hosts_count_broadcast_discards(self, domain):
        ws = domain.create_host("ws")
        for index in range(4):
            domain.create_host(f"idle{index}")

        def client():
            pid = yield GetPid(42, Scope.ANY)
            return pid

        run_on(domain, ws, client())
        # Every other host examined and discarded the query, once per
        # broadcast round (the first query plus each loss-recovery retry).
        rounds = 1 + domain.config.getpid_retries
        assert domain.metrics.count("services.broadcast_discards") == 4 * rounds
        assert domain.metrics.count("services.getpid_retries") == rounds - 1

    def test_binding_tracks_server_restart(self, domain):
        """Sec. 4.2: same service, new process after a crash."""
        ws = domain.create_host("ws")
        far = domain.create_host("far")
        old = far.spawn(_service_server(1, Scope.BOTH)(), "srv-1")

        def phase1():
            yield Delay(0.01)
            return (yield GetPid(1, Scope.ANY))

        first = run_on(domain, ws, phase1())
        assert first == old.pid

        far.crash()
        far.restart()
        new = far.spawn(_service_server(1, Scope.BOTH)(), "srv-2")

        def phase2():
            yield Delay(0.01)
            return (yield GetPid(1, Scope.ANY))

        second = run_on(domain, ws, phase2())
        assert second == new.pid
        assert second != first

    def test_service_id_logical_pids(self):
        pid = ServiceId.STORAGE.logical_pid
        assert pid.is_logical_service
        assert pid.local_id == int(ServiceId.STORAGE)

    def test_dead_server_registration_not_returned(self, domain):
        ws = domain.create_host("ws")

        def short_lived():
            yield SetPid(1, Scope.BOTH)
            yield Delay(0.001)

        ws.spawn(short_lived(), "flash")

        def client():
            yield Delay(0.05)
            return (yield GetPid(1, Scope.LOCAL))

        assert run_on(domain, ws, client()) is None
