"""Tests for process groups and group Send (paper Sec. 7)."""

import pytest

from repro.kernel.domain import Domain
from repro.kernel.groups import GroupRegistry
from repro.kernel.ipc import (
    Delay,
    GroupSend,
    JoinGroup,
    LeaveGroup,
    MyPid,
    Receive,
    Reply,
)
from repro.kernel.messages import Message, ReplyCode
from repro.kernel.pids import Pid
from tests.helpers import run_on

GROUP = 0x1234


def member(answer_if=None):
    """A group member that answers only when it owns the key (or always)."""
    def body():
        yield JoinGroup(GROUP)
        while True:
            delivery = yield Receive()
            key = delivery.message.get("key")
            if answer_if is None or key == answer_if:
                me = yield MyPid()
                yield Reply(delivery.sender,
                            Message.reply(ReplyCode.OK, owner=me.value))
            # else: silently discard, as the multicast model prescribes
    return body


class TestGroupRegistry:
    def test_join_and_members(self):
        registry = GroupRegistry()
        registry.join(1, Pid.make(1, 2))
        registry.join(1, Pid.make(2, 3))
        assert registry.members(1) == {Pid.make(1, 2), Pid.make(2, 3)}

    def test_members_on_host(self):
        registry = GroupRegistry()
        registry.join(1, Pid.make(1, 2))
        registry.join(1, Pid.make(2, 3))
        assert registry.members_on_host(1, 1) == [Pid.make(1, 2)]
        assert registry.hosts_with_members(1) == {1, 2}

    def test_leave_and_remove_pid(self):
        registry = GroupRegistry()
        pid = Pid.make(1, 2)
        registry.join(1, pid)
        registry.join(2, pid)
        registry.leave(1, pid)
        assert registry.members(1) == set()
        registry.remove_pid(pid)
        assert registry.members(2) == set()


class TestGroupSend:
    def test_first_reply_wins(self, domain):
        hosts = [domain.create_host(f"h{i}") for i in range(3)]
        hosts[1].spawn(member()(), "m1")
        hosts[2].spawn(member()(), "m2")

        def client():
            yield Delay(0.01)
            reply = yield GroupSend(GROUP, Message.request(1, key="anything"))
            return reply

        reply = run_on(domain, hosts[0], client())
        assert reply.ok
        assert reply["owner"] != 0

    def test_only_the_owner_answers(self, domain):
        hosts = [domain.create_host(f"h{i}") for i in range(4)]
        owners = {}
        for index, host in enumerate(hosts[1:], start=1):
            proc = host.spawn(member(answer_if=f"key{index}")(), f"m{index}")
            owners[f"key{index}"] = proc.pid.value

        def client():
            yield Delay(0.01)
            reply = yield GroupSend(GROUP, Message.request(1, key="key2"))
            return reply["owner"]

        assert run_on(domain, hosts[0], client()) == owners["key2"]

    def test_no_answer_times_out_with_no_server(self, domain):
        hosts = [domain.create_host(f"h{i}") for i in range(2)]
        hosts[1].spawn(member(answer_if="never")(), "m")

        def client():
            yield Delay(0.01)
            reply = yield GroupSend(GROUP, Message.request(1, key="miss"))
            return reply.reply_code

        assert run_on(domain, hosts[0], client()) is ReplyCode.NO_SERVER

    def test_empty_group_times_out(self, domain):
        host = domain.create_host("h")

        def client():
            reply = yield GroupSend(0x9999, Message.request(1))
            return reply.reply_code

        assert run_on(domain, host, client()) is ReplyCode.NO_SERVER

    def test_same_host_members_also_reached(self, domain):
        host = domain.create_host("solo")
        host.spawn(member()(), "m")

        def client():
            yield Delay(0.01)
            reply = yield GroupSend(GROUP, Message.request(1))
            return reply.ok

        assert run_on(domain, host, client()) is True

    def test_leave_group_stops_delivery(self, domain):
        hosts = [domain.create_host(f"h{i}") for i in range(2)]

        def leaver():
            yield JoinGroup(GROUP)
            yield LeaveGroup(GROUP)
            yield Delay(10.0)

        hosts[1].spawn(leaver(), "leaver")

        def client():
            yield Delay(0.01)
            reply = yield GroupSend(GROUP, Message.request(1))
            return reply.reply_code

        assert run_on(domain, hosts[0], client()) is ReplyCode.NO_SERVER

    def test_multicast_does_not_touch_nonmember_hosts(self, domain):
        hosts = [domain.create_host(f"h{i}") for i in range(5)]
        hosts[1].spawn(member()(), "m")
        baseline = {
            h.host_id: domain.metrics.count(f"net.delivered_to.{h.host_id}")
            for h in hosts
        }

        def client():
            yield Delay(0.01)
            yield GroupSend(GROUP, Message.request(1))

        run_on(domain, hosts[0], client())
        # Hosts 2..4 have no members: the multicast frame must not be
        # delivered to them (E10's wasted-work distinction vs broadcast).
        for host in hosts[2:]:
            delivered = domain.metrics.count(
                f"net.delivered_to.{host.host_id}") - baseline[host.host_id]
            assert delivered == 0
