"""Unit tests for messages, reply codes, and packets (paper Sec. 3.2)."""

import pytest

from repro.kernel.messages import (
    Message,
    Packet,
    PacketKind,
    ReplyCode,
    RequestCode,
)
from repro.kernel.pids import Pid
from repro.net.latency import SHORT_MESSAGE_BYTES


class TestMessage:
    def test_request_code_is_the_tag_field(self):
        message = Message.request(RequestCode.OPEN_FILE, mode="r")
        assert message.code == int(RequestCode.OPEN_FILE)
        assert message["mode"] == "r"

    def test_reply_defaults_to_ok(self):
        reply = Message.reply()
        assert reply.ok
        assert reply.reply_code is ReplyCode.OK

    def test_error_reply(self):
        reply = Message.reply(ReplyCode.NOT_FOUND)
        assert not reply.ok
        assert reply.reply_code is ReplyCode.NOT_FOUND

    def test_short_message_wire_size_is_32_bytes(self):
        message = Message.request(RequestCode.GET_TIME)
        assert message.wire_bytes == SHORT_MESSAGE_BYTES == 32

    def test_segment_adds_to_wire_size(self):
        message = Message.request(RequestCode.READ_INSTANCE,
                                  segment=b"x" * 100)
        assert message.wire_bytes == 32 + 100

    def test_segment_buffer_dominates_actual_length(self):
        # V ships fixed-size name buffers: the wire carries the buffer.
        message = Message.request(RequestCode.OPEN_FILE, segment=b"short",
                                  segment_buffer=256)
        assert message.segment_wire_bytes == 256
        assert message.wire_bytes == 288

    def test_get_with_default(self):
        message = Message.request(RequestCode.GET_TIME, a=1)
        assert message.get("a") == 1
        assert message.get("b", "fallback") == "fallback"

    def test_non_bytes_segment_rejected(self):
        with pytest.raises(TypeError):
            Message(code=1, segment="not-bytes")  # type: ignore[arg-type]

    def test_negative_segment_buffer_rejected(self):
        with pytest.raises(ValueError):
            Message(code=1, segment_buffer=-1)

    def test_repr_names_known_codes(self):
        assert "OPEN_FILE" in repr(Message.request(RequestCode.OPEN_FILE))
        assert "NOT_FOUND" in repr(Message.reply(ReplyCode.NOT_FOUND))


class TestPacket:
    def test_message_kinds_require_a_message(self):
        with pytest.raises(ValueError):
            Packet(PacketKind.REQUEST, src_pid=Pid(1), dst_pid=Pid(2), txn_id=1)

    def test_control_packets_are_short(self):
        probe = Packet(PacketKind.PROBE, src_pid=Pid(1), dst_pid=Pid(2),
                       txn_id=9)
        assert probe.payload_bytes == SHORT_MESSAGE_BYTES

    def test_request_packet_charges_message_size(self):
        packet = Packet(PacketKind.REQUEST, src_pid=Pid(1), dst_pid=Pid(2),
                        txn_id=1,
                        message=Message.request(1, segment=b"x" * 10))
        assert packet.payload_bytes == 42

    def test_move_data_charges_declared_bytes(self):
        packet = Packet(PacketKind.MOVE_DATA, src_pid=Pid(0), dst_pid=None,
                        txn_id=0, info={"data_bytes": 1024})
        assert packet.payload_bytes == 1024


class TestCodeSpaces:
    def test_request_codes_unique(self):
        values = [int(code) for code in RequestCode]
        assert len(values) == len(set(values))

    def test_reply_codes_unique(self):
        values = [int(code) for code in ReplyCode]
        assert len(values) == len(set(values))

    def test_ok_is_zero(self):
        assert int(ReplyCode.OK) == 0
