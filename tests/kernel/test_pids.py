"""Unit + property tests for structured pids (paper Sec. 4.1, Figure 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.pids import (
    LOCAL_ID_MAX,
    LOGICAL_HOST_MAX,
    LOGICAL_SERVICE_HOST,
    NULL_PID,
    Pid,
    PidAllocator,
    logical_service_pid,
)


class TestPidStructure:
    def test_subfields_roundtrip(self):
        pid = Pid.make(7, 300)
        assert pid.logical_host == 7
        assert pid.local_id == 300

    def test_value_packing_matches_figure_2(self):
        # logical host in the high 16 bits, local id in the low 16.
        pid = Pid.make(0x0102, 0x0304)
        assert pid.value == 0x01020304

    def test_locality_test_is_a_field_comparison(self):
        pid = Pid.make(3, 9)
        assert pid.is_local_to(3)
        assert not pid.is_local_to(4)

    def test_out_of_range_fields_rejected(self):
        with pytest.raises(ValueError):
            Pid.make(LOGICAL_HOST_MAX + 1, 1)
        with pytest.raises(ValueError):
            Pid.make(1, LOCAL_ID_MAX + 1)
        with pytest.raises(ValueError):
            Pid(-1)
        with pytest.raises(ValueError):
            Pid(1 << 32)

    def test_logical_service_pids(self):
        pid = logical_service_pid(4)
        assert pid.is_logical_service
        assert pid.local_id == 4
        assert not Pid.make(3, 4).is_logical_service

    def test_null_pid(self):
        assert NULL_PID.value == 0
        assert not NULL_PID.is_logical_service

    def test_ordering_and_hashing(self):
        a, b = Pid.make(1, 2), Pid.make(1, 3)
        assert a < b
        assert len({a, b, Pid.make(1, 2)}) == 2

    @given(st.integers(0, LOGICAL_HOST_MAX), st.integers(0, LOCAL_ID_MAX))
    def test_pack_unpack_roundtrip_property(self, host, local):
        pid = Pid.make(host, local)
        assert (pid.logical_host, pid.local_id) == (host, local)
        assert Pid(pid.value) == pid


class TestPidAllocator:
    def test_allocations_are_unique_while_live(self):
        allocator = PidAllocator(5)
        pids = [allocator.allocate() for __ in range(500)]
        assert len(set(pids)) == 500
        assert all(p.logical_host == 5 for p in pids)

    def test_never_allocates_null_local_id(self):
        allocator = PidAllocator(1, start=LOCAL_ID_MAX)  # forces wrap past 0
        pids = [allocator.allocate() for __ in range(3)]
        assert all(p.local_id != 0 for p in pids)

    def test_released_id_not_reused_until_wrap(self):
        allocator = PidAllocator(1, start=1)
        first = allocator.allocate()
        allocator.release(first)
        soon = [allocator.allocate() for __ in range(100)]
        assert first not in soon  # time-before-reuse maximized

    def test_release_of_foreign_pid_rejected(self):
        allocator = PidAllocator(1)
        with pytest.raises(ValueError):
            allocator.release(Pid.make(2, 10))

    def test_reserved_service_host_rejected(self):
        with pytest.raises(ValueError):
            PidAllocator(LOGICAL_SERVICE_HOST)

    def test_live_count_tracks(self):
        allocator = PidAllocator(1)
        a = allocator.allocate()
        allocator.allocate()
        assert allocator.live_count == 2
        allocator.release(a)
        assert allocator.live_count == 1

    def test_exhaustion_detected(self):
        allocator = PidAllocator(1)
        allocator._live = set(range(LOCAL_ID_MAX))  # simulate a full table
        with pytest.raises(RuntimeError, match="exhausted"):
            allocator.allocate()
