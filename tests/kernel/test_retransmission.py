"""Kernel Send retransmission: recovery, dedup, reply replay, GetPid retry.

These tests use the Ethernet's drop *predicate* (not the probabilistic
fault model) to lose exactly the frames under study, so each scenario is
deterministic without any rng.
"""

import pytest

from repro.kernel.config import DEFAULT_CONFIG, KernelConfig
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, Receive, Reply, Send, SetPid
from repro.kernel.messages import Message, PacketKind, ReplyCode
from repro.kernel.services import Scope
from tests.helpers import run_on


def _echo_server():
    yield SetPid(1, Scope.BOTH)
    while True:
        delivery = yield Receive()
        yield Reply(delivery.sender, Message.reply(ReplyCode.OK))


def _slow_server(work: float):
    yield SetPid(1, Scope.BOTH)
    while True:
        delivery = yield Receive()
        yield Delay(work)
        yield Reply(delivery.sender, Message.reply(ReplyCode.OK))


def _two_host_domain(server, config=DEFAULT_CONFIG):
    domain = Domain(config=config)
    ws = domain.create_host("ws")
    far = domain.create_host("far")
    far.spawn(server, "server")
    return domain, ws


def _drop_first(ethernet, kind: PacketKind):
    """Drop the first frame carrying ``kind``, deliver everything after."""
    state = {"dropped": False}

    def predicate(frame, dst):
        packet = frame.payload
        if not state["dropped"] and getattr(packet, "kind", None) is kind:
            state["dropped"] = True
            return True
        return False

    ethernet.set_drop_predicate(predicate)
    return state


def _client(result):
    yield Delay(0.01)
    pid = yield GetPid(1, Scope.ANY)
    reply = yield Send(pid, Message.request(0x0101))
    result["reply"] = reply


def test_lost_request_recovered_by_retransmit():
    domain, ws = _two_host_domain(_echo_server())
    state = _drop_first(domain.ethernet, PacketKind.REQUEST)
    result = {}
    run_on(domain, ws, _client(result))
    assert state["dropped"]
    assert result["reply"].ok
    assert domain.metrics.count("ipc.retransmits") >= 1
    assert domain.metrics.count("ipc.send_timeouts") == 0


def test_lost_reply_replayed_from_cache():
    domain, ws = _two_host_domain(_echo_server())
    _drop_first(domain.ethernet, PacketKind.REPLY)
    result = {}
    run_on(domain, ws, _client(result))
    assert result["reply"].ok
    # The retransmitted REQUEST hit the receiver's reply cache: the reply
    # was replayed verbatim, not recomputed, and the dup was suppressed.
    assert domain.metrics.count("ipc.reply_resends") >= 1
    assert domain.metrics.count("ipc.dup_suppressed") >= 1


def test_duplicate_request_suppressed_while_server_holds_it():
    # Server is slower than one retransmission interval, so the kernel
    # retransmits while the original request is still being served; the
    # receiver must swallow the duplicate rather than re-queue it.
    work = DEFAULT_CONFIG.retransmit_initial * 1.5
    domain, ws = _two_host_domain(_slow_server(work))
    result = {}
    run_on(domain, ws, _client(result))
    assert result["reply"].ok
    assert domain.metrics.count("ipc.retransmits") >= 1
    assert domain.metrics.count("ipc.dup_suppressed") >= 1
    # Exactly one reply reached the client -- no double-execution.
    assert domain.metrics.count("ipc.replies") == 1


def test_ack_by_probe_parks_retransmission():
    # A server slower than several backoff steps: probes answer PROBE_OK,
    # which acks the transaction, so retransmission stops growing.
    work = DEFAULT_CONFIG.probe_interval * 1.5
    domain, ws = _two_host_domain(_slow_server(work))
    result = {}
    run_on(domain, ws, _client(result))
    assert result["reply"].ok
    # Once the first probe round-trips, the txn is acked; the retransmit
    # count stays bounded by the pre-ack window rather than the full wait.
    assert domain.metrics.count("ipc.retransmits") <= 4


def test_retransmission_off_surfaces_timeout():
    config = KernelConfig(retransmit_enabled=False)
    domain, ws = _two_host_domain(_echo_server(), config=config)
    _drop_first(domain.ethernet, PacketKind.REQUEST)
    result = {}
    run_on(domain, ws, _client(result))
    assert int(result["reply"].code) == int(ReplyCode.TIMEOUT)
    assert domain.metrics.count("ipc.retransmits") == 0
    assert domain.metrics.count("ipc.send_timeouts") == 1


def test_lost_getpid_broadcast_retried():
    domain, ws = _two_host_domain(_echo_server())
    _drop_first(domain.ethernet, PacketKind.GETPID_QUERY)
    result = {}
    run_on(domain, ws, _client(result))
    assert result["reply"].ok
    assert domain.metrics.count("services.getpid_retries") >= 1
    assert domain.metrics.count("services.getpid_timeouts") == 0


def test_getpid_retries_exhausted_returns_none():
    domain, ws = _two_host_domain(_echo_server())
    domain.ethernet.set_drop_predicate(
        lambda frame, dst:
        getattr(frame.payload, "kind", None) is PacketKind.GETPID_QUERY)
    result = {}

    def client():
        yield Delay(0.01)
        result["pid"] = yield GetPid(1, Scope.ANY)

    run_on(domain, ws, client())
    assert result["pid"] is None
    rounds = 1 + domain.config.getpid_retries
    assert domain.metrics.count("services.getpid_retries") == rounds - 1
    assert domain.metrics.count("services.getpid_timeouts") == 1


def test_loss_free_run_never_retransmits():
    domain, ws = _two_host_domain(_echo_server())
    result = {}
    run_on(domain, ws, _client(result))
    assert result["reply"].ok
    assert domain.metrics.count("ipc.retransmits") == 0
    assert domain.metrics.count("ipc.dup_suppressed") == 0
    assert domain.metrics.count("ipc.reply_resends") == 0
