"""Kernel edge cases: crashes mid-transaction, probe redirection, misuse."""

import pytest

from repro.kernel.domain import Domain
from repro.kernel.errors import HostDown
from repro.kernel.ipc import (
    Delay,
    Forward,
    GetPid,
    Now,
    Receive,
    Reply,
    Send,
    SetPid,
)
from repro.kernel.messages import Message, ReplyCode
from repro.kernel.services import Scope
from tests.helpers import run_on


def registered_server(service=1, work=0.0):
    def body():
        yield SetPid(service, Scope.BOTH)
        while True:
            delivery = yield Receive()
            if work:
                yield Delay(work)
            yield Reply(delivery.sender, Message.reply(ReplyCode.OK))
    return body


def wait_for(service=1):
    while True:
        pid = yield GetPid(service, Scope.ANY)
        if pid is not None:
            return pid
        yield Delay(0.001)


class TestCrashMidTransaction:
    def test_server_crash_after_receive_times_out_sender(self, domain):
        ws = domain.create_host("ws")
        far = domain.create_host("far")

        def black_hole():
            yield SetPid(1, Scope.BOTH)
            yield Receive()
            yield Delay(10.0)  # never replies; host dies first

        far.spawn(black_hole(), "hole")
        domain.engine.schedule_at(0.2, far.crash)

        def client():
            pid = yield from wait_for()
            t0 = yield Now()
            reply = yield Send(pid, Message.request(1))
            t1 = yield Now()
            return reply.reply_code, t1 - t0

        code, elapsed = run_on(domain, ws, client())
        assert code is ReplyCode.TIMEOUT
        # Probes kept the transaction alive until the crash, then detected
        # it within the probe budget.
        assert 0.2 < elapsed < 0.8

    def test_slow_server_is_kept_alive_by_probes(self, domain):
        """A legitimately slow reply must NOT be timed out."""
        ws = domain.create_host("ws")
        far = domain.create_host("far")
        far.spawn(registered_server(work=1.0)(), "slow")  # 10x probe interval

        def client():
            pid = yield from wait_for()
            reply = yield Send(pid, Message.request(1))
            return reply.reply_code

        assert run_on(domain, ws, client()) is ReplyCode.OK
        assert domain.metrics.count("ipc.probes") >= 5

    def test_probe_redirect_after_remote_forward(self, domain):
        """Probes follow a transaction that was forwarded to a third host,
        even when the backend is slow enough for many probe rounds."""
        hosts = [domain.create_host(f"h{i}") for i in range(3)]

        def frontend():
            yield SetPid(1, Scope.BOTH)
            delivery = yield Receive()
            backend_pid = yield from wait_for(2)
            yield Forward(delivery, backend_pid)

        hosts[1].spawn(frontend(), "front")
        hosts[2].spawn(registered_server(service=2, work=0.9)(), "back")

        def client():
            pid = yield from wait_for(1)
            reply = yield Send(pid, Message.request(1))
            return reply.reply_code

        assert run_on(domain, hosts[0], client()) is ReplyCode.OK

    def test_backend_crash_after_forward_detected(self, domain):
        hosts = [domain.create_host(f"h{i}") for i in range(3)]

        def frontend():
            yield SetPid(1, Scope.BOTH)
            delivery = yield Receive()
            backend_pid = yield from wait_for(2)
            yield Forward(delivery, backend_pid)

        def doomed_backend():
            yield SetPid(2, Scope.BOTH)
            yield Receive()
            yield Delay(10.0)

        hosts[1].spawn(frontend(), "front")
        hosts[2].spawn(doomed_backend(), "back")
        domain.engine.schedule_at(0.3, hosts[2].crash)

        def client():
            pid = yield from wait_for(1)
            reply = yield Send(pid, Message.request(1))
            return reply.reply_code

        assert run_on(domain, hosts[0], client()) is ReplyCode.TIMEOUT


class TestHostMisuse:
    def test_spawn_on_crashed_host_rejected(self, domain):
        host = domain.create_host("h")
        host.crash()
        with pytest.raises(HostDown):
            host.spawn(registered_server()(), "late")

    def test_send_to_logical_pid_is_an_error(self, domain):
        host = domain.create_host("h")
        from repro.kernel.services import ServiceId

        def client():
            try:
                yield Send(ServiceId.STORAGE.logical_pid, Message.request(1))
            except Exception as err:  # noqa: BLE001
                return type(err).__name__

        assert run_on(domain, host, client()) == "IllegalEffect"

    def test_double_reply_is_an_error(self, domain):
        host = domain.create_host("h")

        def server():
            yield SetPid(1, Scope.BOTH)
            delivery = yield Receive()
            yield Reply(delivery.sender, Message.reply(ReplyCode.OK))
            try:
                yield Reply(delivery.sender, Message.reply(ReplyCode.OK))
            except Exception as err:  # noqa: BLE001
                results.append(type(err).__name__)

        results = []
        host.spawn(server(), "server")

        def client():
            pid = yield from wait_for()
            yield Send(pid, Message.request(1))
            yield Delay(0.01)

        run_on(domain, host, client())
        assert results == ["NotAwaitingReply"]

    def test_unknown_effect_object_is_an_error(self, domain):
        host = domain.create_host("h")

        def confused():
            try:
                yield {"not": "an effect"}
            except Exception as err:  # noqa: BLE001
                return type(err).__name__

        assert run_on(domain, host, confused()) == "IllegalEffect"

    def test_negative_delay_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Delay(-1.0)


class TestMetricsAccounting:
    def test_transaction_counters(self, domain):
        host = domain.create_host("h")
        host.spawn(registered_server()(), "server")

        def client():
            pid = yield from wait_for()
            for __ in range(5):
                yield Send(pid, Message.request(1))

        run_on(domain, host, client())
        assert domain.metrics.count("ipc.sends") == 5
        assert domain.metrics.count("ipc.replies") == 5
        assert domain.metrics.count("ipc.transactions") == 5

    def test_network_byte_accounting_matches_frames(self, two_hosts):
        domain, alpha, beta = two_hosts
        beta.spawn(registered_server()(), "server")

        def client():
            pid = yield from wait_for()
            yield Send(pid, Message.request(1, segment=b"x" * 100))

        run_on(domain, alpha, client())
        # At least: query broadcast + response + request + reply frames.
        assert domain.metrics.count("net.frames") >= 4
        assert domain.metrics.count("net.bytes") >= 32 * 4 + 100
