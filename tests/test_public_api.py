"""Smoke tests for the top-level public API (`import repro`)."""

import pytest

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_version():
    assert repro.__version__ == "1.0.0"


def test_readme_snippet_works():
    """The README's four-line setup must actually run."""
    domain = repro.Domain()
    ws = repro.setup_workstation(domain, "mann")
    fs = repro.start_server(domain.create_host("vax1"),
                            repro.VFileServer(user="mann"))
    repro.standard_prefixes(ws, fs)

    from repro.runtime import files

    result = {}

    def program(session):
        yield from files.write_file(session, "[home]api.txt", b"public api")
        result["data"] = yield from files.read_file(session, "api.txt")

    ws.run_program(program)
    domain.run()
    domain.check_healthy()
    assert result["data"] == b"public api"


def test_session_constructible_from_primitives():
    domain = repro.Domain()
    host = domain.create_host("h")
    fs = repro.start_server(host, repro.VFileServer(user="u"))
    session = repro.Session(
        repro.ContextPair(fs.pid, int(repro.WellKnownContext.HOME)),
        prefix_server=None, latency=repro.STANDARD_3MBIT)
    assert session.prefix_server is None
    assert session.current.server == fs.pid


def test_latency_models_exported():
    assert repro.STANDARD_10MBIT.bandwidth_bps > repro.STANDARD_3MBIT.bandwidth_bps
    custom = repro.LatencyModel(bandwidth_bps=1e9)
    assert custom.wire_time(100) < repro.STANDARD_3MBIT.wire_time(100)
