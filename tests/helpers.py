"""Shared test scaffolding.

``run_on`` executes a client generator to completion inside a simulated
domain and returns its value; ``standard_system`` builds the workstation +
file-server arrangement of the paper's Sec. 6 configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.core.context import ContextPair, WellKnownContext
from repro.kernel.domain import Domain
from repro.kernel.host import Host
from repro.runtime.session import Session
from repro.runtime.workstation import (
    Workstation,
    setup_workstation,
    standard_prefixes,
)
from repro.servers.base import ServerHandle, start_server
from repro.servers.fileserver.disk import DiskModel
from repro.servers.fileserver.server import VFileServer

MISSING = object()


def run_on(domain: Domain, host: Host, gen: Generator, name: str = "client",
           check: bool = True) -> Any:
    """Run a client generator to completion; returns its return value."""
    box: dict[str, Any] = {"result": MISSING}

    def wrapper():
        box["result"] = yield from gen

    host.spawn(wrapper(), name=name)
    domain.run()
    if check:
        domain.check_healthy()
    if box["result"] is MISSING and check:
        raise AssertionError(f"client {name!r} did not run to completion")
    return box["result"]


@dataclass
class SystemFixture:
    """A one-user V installation: workstation + remote file server."""

    domain: Domain
    workstation: Workstation
    fileserver: ServerHandle

    @property
    def fs(self) -> VFileServer:
        server = self.fileserver.server
        assert isinstance(server, VFileServer)
        return server

    def session(self, current: Optional[ContextPair] = None) -> Session:
        return self.workstation.session(current)

    def home_context(self) -> ContextPair:
        return ContextPair(self.fileserver.pid, int(WellKnownContext.HOME))

    def run_client(self, gen: Generator, name: str = "client",
                   check: bool = True) -> Any:
        return run_on(self.domain, self.workstation.host, gen, name=name,
                      check=check)


def standard_system(user: str = "mann", seed: int = 0,
                    disk: DiskModel | None = None) -> SystemFixture:
    """Workstation + remote file server with the standard prefixes."""
    domain = Domain(seed=seed)
    workstation = setup_workstation(domain, user)
    fs_host = domain.create_host("vax1")
    handle = start_server(fs_host, VFileServer(user=user, disk=disk))
    standard_prefixes(workstation, handle)
    return SystemFixture(domain=domain, workstation=workstation,
                         fileserver=handle)
