"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_schedule_and_run_advances_clock():
    engine = Engine()
    fired = []
    engine.schedule(0.5, fired.append, "a")
    engine.run()
    assert fired == ["a"]
    assert engine.now == 0.5


def test_events_fire_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(0.3, fired.append, "late")
    engine.schedule(0.1, fired.append, "early")
    engine.schedule(0.2, fired.append, "middle")
    engine.run()
    assert fired == ["early", "middle", "late"]


def test_simultaneous_events_fire_in_scheduling_order():
    engine = Engine()
    fired = []
    for label in ("first", "second", "third"):
        engine.schedule(1.0, fired.append, label)
    engine.run()
    assert fired == ["first", "second", "third"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-0.1, lambda: None)


def test_schedule_at_in_the_past_rejected():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    engine = Engine()
    fired = []
    event = engine.schedule(0.1, fired.append, "cancelled")
    engine.schedule(0.2, fired.append, "kept")
    event.cancel()
    engine.run()
    assert fired == ["kept"]


def test_cancel_is_idempotent():
    engine = Engine()
    event = engine.schedule(0.1, lambda: None)
    event.cancel()
    event.cancel()
    engine.run()


def test_callbacks_can_schedule_more_events():
    engine = Engine()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            engine.schedule(0.1, chain, depth + 1)

    engine.schedule(0.0, chain, 0)
    engine.run()
    assert fired == [0, 1, 2, 3]
    assert engine.now == pytest.approx(0.3)


def test_run_until_stops_clock_without_dropping_events():
    engine = Engine()
    fired = []
    engine.schedule(1.0, fired.append, "early")
    engine.schedule(5.0, fired.append, "late")
    engine.run(until=2.0)
    assert fired == ["early"]
    assert engine.now == 2.0
    engine.run()
    assert fired == ["early", "late"]


def test_run_for_is_relative():
    engine = Engine()
    engine.schedule(1.0, lambda: None)
    engine.run()
    engine.run_for(2.0)
    assert engine.now == 3.0


def test_max_events_guards_against_livelock():
    engine = Engine()

    def forever():
        engine.schedule(0.001, forever)

    engine.schedule(0.0, forever)
    with pytest.raises(SimulationError, match="max_events"):
        engine.run(max_events=100)


def test_step_returns_false_on_empty_queue():
    assert Engine().step() is False


def test_events_processed_counter():
    engine = Engine()
    for __ in range(5):
        engine.schedule(0.1, lambda: None)
    engine.run()
    assert engine.events_processed == 5


def test_pending_excludes_cancelled():
    engine = Engine()
    keep = engine.schedule(0.1, lambda: None)
    drop = engine.schedule(0.2, lambda: None)
    drop.cancel()
    assert engine.pending == 1
    keep.cancel()
    assert engine.pending == 0


def test_reentrant_run_rejected():
    engine = Engine()

    def nested():
        engine.run()

    engine.schedule(0.0, nested)
    with pytest.raises(SimulationError, match="re-entrant"):
        engine.run()


class TestHeapCompaction:
    def test_compaction_triggers_when_cancelled_dominate(self):
        engine = Engine()
        events = [engine.schedule(1.0 + i * 0.001, lambda: None)
                  for i in range(Engine.COMPACT_MIN_QUEUE)]
        # Cancelling just over half the queue must trip one compaction.
        for event in events[: Engine.COMPACT_MIN_QUEUE // 2 + 1]:
            event.cancel()
        assert engine.compactions == 1
        assert engine.pending == Engine.COMPACT_MIN_QUEUE // 2 - 1
        engine.run()
        assert engine.events_processed == Engine.COMPACT_MIN_QUEUE // 2 - 1

    def test_small_queues_never_compact(self):
        engine = Engine()
        events = [engine.schedule(1.0, lambda: None) for __ in range(10)]
        for event in events:
            event.cancel()
        assert engine.compactions == 0
        engine.run()
        assert engine.events_processed == 0

    def test_pending_is_exact_across_compaction_and_run(self):
        engine = Engine()
        fired = []
        live, dead = [], []
        for i in range(200):
            event = engine.schedule(1.0 + i * 0.01, fired.append, i)
            (dead if i % 3 else live).append(event)
        for event in dead:
            event.cancel()
        assert engine.pending == len(live)
        assert engine.compactions >= 1
        engine.run()
        assert engine.pending == 0
        assert len(fired) == len(live)
        assert fired == sorted(fired)

    def test_cancel_after_fire_is_harmless(self):
        # A callback may hold a reference to an already-popped event (e.g. a
        # retransmission timer cancelled by the reply it provoked) -- the
        # engine must not count that cancel against the queue.
        engine = Engine()
        events = [engine.schedule(1.0 + i * 0.001, lambda: None)
                  for i in range(Engine.COMPACT_MIN_QUEUE * 2)]
        engine.run()
        for event in events:
            event.cancel()
        assert engine.pending == 0
        assert engine.compactions == 0

    def test_compaction_preserves_firing_order(self):
        engine = Engine()
        fired = []
        events = [engine.schedule(1.0 + i * 0.001, fired.append, i)
                  for i in range(100)]
        for event in events[1::2]:
            event.cancel()
        events[0].cancel()  # 51st cancel: strictly more than half -> compact
        assert engine.compactions >= 1
        engine.run()
        assert fired == [i for i in range(2, 100) if i % 2 == 0]


class TestPostFireAndForget:
    def test_post_fires_in_schedule_order(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, "scheduled")
        engine.post(1.0, fired.append, "posted")
        engine.schedule(1.0, fired.append, "scheduled-2")
        engine.run()
        assert fired == ["scheduled", "posted", "scheduled-2"]

    def test_post_returns_no_handle(self):
        assert Engine().post(0.1, lambda: None) is None

    def test_post_at_absolute_time(self):
        engine = Engine()
        fired = []
        engine.post_at(2.0, fired.append, "late")
        engine.post_at(1.0, fired.append, "early")
        engine.run()
        assert fired == ["early", "late"]
        assert engine.now == 2.0

    def test_post_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().post(-0.1, lambda: None)

    def test_post_at_in_the_past_rejected(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.post_at(0.5, lambda: None)

    def test_post_counts_in_pending_and_processed(self):
        engine = Engine()
        for __ in range(3):
            engine.post(0.1, lambda: None)
        assert engine.pending == 3
        engine.run()
        assert engine.pending == 0
        assert engine.events_processed == 3

    def test_posted_entries_survive_compaction(self):
        # Compaction filters by the event slot; posted entries carry None
        # there and must never be dropped.
        engine = Engine()
        fired = []
        for i in range(Engine.COMPACT_MIN_QUEUE):
            engine.post(1.0 + i * 0.001, fired.append, i)
        events = [engine.schedule(2.0 + i * 0.001, fired.append, 1000 + i)
                  for i in range(Engine.COMPACT_MIN_QUEUE + 8)]
        for event in events:
            event.cancel()
        assert engine.compactions >= 1
        engine.run()
        assert fired == list(range(Engine.COMPACT_MIN_QUEUE))


class TestScheduleMany:
    def test_equivalent_to_schedule_loop(self):
        batched, looped = Engine(), Engine()
        fired_batched, fired_looped = [], []
        batched.schedule(0.5, fired_batched.append, "before")
        looped.schedule(0.5, fired_looped.append, "before")
        batched.schedule_many(1.0, [(fired_batched.append, (label,))
                                    for label in ("a", "b", "c")])
        for label in ("a", "b", "c"):
            looped.schedule(1.0, fired_looped.append, label)
        # One sequence number per callback: later events order identically.
        batched.schedule(1.0, fired_batched.append, "after")
        looped.schedule(1.0, fired_looped.append, "after")
        batched.run()
        looped.run()
        assert fired_batched == fired_looped
        assert batched.events_processed == looped.events_processed

    def test_returns_one_handle_per_callback(self):
        engine = Engine()
        handles = engine.schedule_many(1.0, [(lambda: None, ())] * 4)
        assert len(handles) == 4

    def test_individual_entries_cancellable(self):
        engine = Engine()
        fired = []
        handles = engine.schedule_many(
            1.0, [(fired.append, (label,)) for label in "abcd"])
        handles[1].cancel()
        handles[3].cancel()
        engine.run()
        assert fired == ["a", "c"]

    def test_pending_is_exact_across_batch_lifecycle(self):
        engine = Engine()
        handles = engine.schedule_many(1.0, [(lambda: None, ())] * 5)
        assert engine.pending == 5
        handles[0].cancel()
        assert engine.pending == 4
        engine.run()
        assert engine.pending == 0
        assert engine.events_processed == 4

    def test_empty_batch(self):
        engine = Engine()
        assert engine.schedule_many(1.0, []) == []
        assert engine.pending == 0
        engine.run()
        assert engine.now == 0.0

    def test_empty_batch_is_a_structural_noop(self):
        # Regression: an empty batch must not push a heap slot (a wrapper
        # with nothing to fire would advance the clock to its fire time on
        # the next run) and must not consume a sequence number (later
        # same-tick events would order differently from an engine that
        # never saw the batch).
        engine = Engine()
        engine.schedule_many(1.0, [])
        assert len(engine._queue) == 0
        assert engine._seq == 0
        engine.run()
        assert engine.events_processed == 0
        assert engine.now == 0.0

    def test_empty_batch_keeps_later_ordering_identical(self):
        batched, plain = Engine(), Engine()
        fired_batched, fired_plain = [], []
        batched.schedule_many(1.0, [])
        for engine, fired in ((batched, fired_batched),
                              (plain, fired_plain)):
            engine.schedule(1.0, fired.append, "a")
            engine.schedule(1.0, fired.append, "b")
        batched.run()
        plain.run()
        assert fired_batched == fired_plain == ["a", "b"]
        assert batched.events_processed == plain.events_processed
        assert batched.now == plain.now == 1.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule_many(-0.1, [(lambda: None, ())])


def test_run_until_drains_dead_heads_past_the_horizon():
    # A cancelled head beyond ``until`` must still be popped (and stop
    # counting as pending) before the horizon check, so an immediate
    # re-run never silently discards what pending reported.
    engine = Engine()
    dead = engine.schedule(5.0, lambda: None)
    dead.cancel()
    engine.run(until=2.0)
    assert engine.now == 2.0
    assert engine.pending == 0


def test_total_events_accumulates_across_engines():
    Engine.reset_total_events()
    first, second = Engine(), Engine()
    first.schedule(0.1, lambda: None)
    second.schedule(0.1, lambda: None)
    second.post(0.2, lambda: None)
    first.run()
    second.run()
    assert Engine.total_events == 3
    Engine.reset_total_events()
    assert Engine.total_events == 0
