"""Unit tests for the generator task machinery."""

import pytest

from repro.sim.process import Task, TaskFailure, TaskState


def test_task_requires_a_generator():
    with pytest.raises(TypeError, match="generator"):
        Task(lambda: None)  # type: ignore[arg-type]


def test_start_runs_to_first_yield():
    def body():
        yield "first-effect"

    task = Task(body())
    finished, effect = task.start()
    assert not finished
    assert effect == "first-effect"
    assert task.state is TaskState.BLOCKED


def test_resume_delivers_effect_results():
    def body():
        value = yield "ask"
        return value * 2

    task = Task(body())
    task.start()
    finished, result = task.resume(21)
    assert finished
    assert result == 42
    assert task.result == 42
    assert task.state is TaskState.DONE


def test_yield_from_composes_effects():
    def helper():
        a = yield "one"
        b = yield "two"
        return a + b

    def body():
        total = yield from helper()
        return total

    task = Task(body())
    __, effect = task.start()
    assert effect == "one"
    __, effect = task.resume(1)
    assert effect == "two"
    finished, result = task.resume(2)
    assert finished and result == 3


def test_throw_raises_inside_the_body():
    seen = []

    def body():
        try:
            yield "effect"
        except ValueError as err:
            seen.append(err)
        return "recovered"

    task = Task(body())
    task.start()
    finished, result = task.throw(ValueError("boom"))
    assert finished and result == "recovered"
    assert len(seen) == 1


def test_unhandled_exception_becomes_task_failure():
    def body():
        yield "effect"
        raise RuntimeError("exploded")

    task = Task(body(), name="victim")
    task.start()
    with pytest.raises(TaskFailure) as info:
        task.resume(None)
    assert task.state is TaskState.FAILED
    assert isinstance(info.value.original, RuntimeError)
    assert "victim" in str(info.value)


def test_resume_before_start_rejected():
    def body():
        yield "x"

    task = Task(body())
    with pytest.raises(RuntimeError, match="not started"):
        task.resume(None)


def test_double_start_rejected():
    def body():
        yield "x"

    task = Task(body())
    task.start()
    with pytest.raises(RuntimeError, match="already started"):
        task.start()


def test_resume_after_finish_rejected():
    def body():
        return "done"
        yield  # pragma: no cover

    task = Task(body())
    finished, __ = task.start()
    assert finished
    with pytest.raises(RuntimeError, match="already finished"):
        task.resume(None)


def test_close_aborts_without_failure():
    cleanup = []

    def body():
        try:
            yield "x"
        finally:
            cleanup.append("ran")

    task = Task(body())
    task.start()
    task.close()
    assert task.state is TaskState.DONE
    assert cleanup == ["ran"]


def test_immediate_return_captures_value():
    def body():
        if False:
            yield
        return 99

    task = Task(body())
    finished, result = task.start()
    assert finished and result == 99
