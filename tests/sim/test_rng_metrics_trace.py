"""Unit tests for the RNG, metrics, and trace utilities."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.sim.metrics import (
    LatencyRecorder,
    Metrics,
    MetricsError,
    NoSamplesError,
)
from repro.sim.rng import DeterministicRng, derive_seed
from repro.sim.trace import Tracer


class TestRng:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint("s", 0, 100) for __ in range(10)] == [
            b.randint("s", 0, 100) for __ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint("s", 0, 10**9) for __ in range(4)] != [
            b.randint("s", 0, 10**9) for __ in range(4)]

    def test_streams_are_independent_of_creation_order(self):
        a = DeterministicRng(5)
        first = a.randint("one", 0, 10**9)
        b = DeterministicRng(5)
        b.randint("two", 0, 10**9)  # touch another stream first
        assert b.randint("one", 0, 10**9) == first

    def test_choice_and_shuffle_deterministic(self):
        a = DeterministicRng(3)
        b = DeterministicRng(3)
        items_a, items_b = list(range(20)), list(range(20))
        a.shuffle("sh", items_a)
        b.shuffle("sh", items_b)
        assert items_a == items_b
        assert a.choice("c", "abcdef") == b.choice("c", "abcdef")

    def test_zipf_is_skewed_toward_low_indices(self):
        rng = DeterministicRng(11)
        draws = [rng.zipf_index("z", 100, skew=1.2) for __ in range(2000)]
        head = sum(1 for d in draws if d < 10)
        assert head > len(draws) * 0.4  # top-10% of names get >40% of draws
        assert all(0 <= d < 100 for d in draws)

    def test_derive_seed_stable_and_sensitive(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_subclassing_blocked(self):
        with pytest.raises(TypeError):
            class Sub(DeterministicRng):  # noqa: F811
                pass


class TestMetrics:
    def test_counters_accumulate(self):
        metrics = Metrics()
        metrics.incr("net.frames")
        metrics.incr("net.frames", 4)
        assert metrics.count("net.frames") == 5
        assert metrics.count("absent") == 0

    def test_latency_summary(self):
        recorder = LatencyRecorder("op")
        recorder.extend([0.001, 0.002, 0.003, 0.004])
        summary = recorder.summary()
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.0025)
        assert summary.minimum == 0.001
        assert summary.maximum == 0.004
        assert summary.p50 == 0.002
        assert summary.mean_ms == pytest.approx(2.5)

    def test_p99_and_stddev(self):
        recorder = LatencyRecorder("op")
        recorder.extend([0.001] * 99 + [0.100])
        summary = recorder.summary()
        assert summary.p99 == 0.001  # nearest rank: the 99th of 100 samples
        assert summary.maximum == 0.100
        assert summary.stddev == pytest.approx(0.00985, rel=1e-3)
        flat = LatencyRecorder("flat")
        flat.extend([0.002, 0.002, 0.002])
        assert flat.summary().stddev == 0.0
        assert flat.summary().p99 == 0.002

    def test_negative_sample_rejected(self):
        # MetricsError subclasses ValueError, so both guards keep working.
        with pytest.raises(ValueError):
            LatencyRecorder("op").record(-1.0)
        with pytest.raises(MetricsError):
            LatencyRecorder("op").record(-1.0)

    def test_empty_summary_raises_domain_error(self):
        with pytest.raises(ValueError):
            LatencyRecorder("op").summary()
        with pytest.raises(NoSamplesError):
            LatencyRecorder("op").summary()

    def test_samples_mirror_into_shared_registry(self):
        registry = MetricsRegistry()
        metrics = Metrics(registry=registry)
        metrics.incr("net.frames", 3)
        metrics.latency("open").record(0.004)
        assert registry.counter_value("net.frames") == 3
        assert registry.histogram("latency.open").count == 1

    def test_shared_recorder_by_name(self):
        metrics = Metrics()
        metrics.latency("open").record(0.001)
        metrics.latency("open").record(0.002)
        assert metrics.latency("open").summary().count == 2
        assert metrics.has_latency("open")
        assert not metrics.has_latency("close")

    def test_snapshot_shape(self):
        metrics = Metrics()
        metrics.incr("a")
        metrics.latency("op").record(0.004)
        snap = metrics.snapshot()
        assert snap["counters"] == {"a": 1}
        assert snap["latencies"]["op"]["count"] == 1
        assert snap["latencies"]["op"]["mean_ms"] == pytest.approx(4.0)
        assert snap["latencies"]["op"]["p99_ms"] == pytest.approx(4.0)
        assert snap["latencies"]["op"]["stddev_ms"] == 0.0


class TestTracer:
    def test_records_and_selects(self):
        tracer = Tracer()
        tracer.record(0.1, "ipc", "client", "Send")
        tracer.record(0.2, "ipc", "server", "Reply")
        tracer.record(0.3, "svc", "server", "SetPid")
        assert len(tracer) == 3
        assert [e.detail for e in tracer.select(category="ipc")] == ["Send", "Reply"]
        assert [e.detail for e in tracer.select(subject="server")] == [
            "Reply", "SetPid"]
        assert tracer.categories() == {"ipc", "svc"}

    def test_predicate_filter(self):
        tracer = Tracer()
        tracer.record(0.1, "ipc", "a", "Send x")
        tracer.record(0.2, "ipc", "a", "Forward x")
        found = tracer.select(predicate=lambda e: "Forward" in e.detail)
        assert len(found) == 1

    def test_limit_is_a_ring_buffer_keeping_newest(self):
        tracer = Tracer(limit=3)
        for index in range(10):
            tracer.record(float(index), "c", "s", str(index))
        assert len(tracer) == 3
        # A long run ends with the most recent events, not the warm-up.
        assert [event.detail for event in tracer.events] == ["7", "8", "9"]
        assert tracer.dropped == 7

    def test_unlimited_tracer_drops_nothing(self):
        tracer = Tracer()
        for index in range(100):
            tracer.record(float(index), "c", "s", str(index))
        assert len(tracer) == 100
        assert tracer.dropped == 0

    def test_select_sees_only_retained_events(self):
        tracer = Tracer(limit=2)
        tracer.record(0.1, "old", "s", "gone")
        tracer.record(0.2, "ipc", "s", "kept-1")
        tracer.record(0.3, "ipc", "s", "kept-2")
        assert tracer.select(category="old") == []
        assert [event.detail for event in tracer.select(category="ipc")] == [
            "kept-1", "kept-2"]
        assert tracer.dropped == 1

    def test_format_renders_times_in_ms(self):
        tracer = Tracer()
        tracer.record(0.00256, "ipc", "client", "transaction")
        assert "2.560ms" in tracer.format()
