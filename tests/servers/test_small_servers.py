"""Tests for the time, exception, pipe, and terminal servers."""

import pytest

from repro.core.descriptors import (
    PipeDescription,
    ProcessDescription,
    TerminalDescription,
)
from repro.core.resolver import NameError_
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, Send
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.kernel.services import Scope, ServiceId
from repro.runtime.session import Session
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import (
    ExceptionServer,
    PipeServer,
    TerminalServer,
    TimeServer,
    VFileServer,
    start_server,
)
from repro.servers.timeserver import get_time
from tests.helpers import run_on, standard_system


def system_with(server, ws_local=False, name=None):
    """standard_system plus one extra server (local or on its own host)."""
    system = standard_system()
    host = (system.workstation.host if ws_local
            else system.domain.create_host("extra"))
    handle = start_server(host, server, name=name)
    return system, handle


class TestTimeServer:
    def test_get_time_returns_simulated_time(self):
        system, handle = system_with(TimeServer(epoch_offset=1000.0))

        def client(session):
            yield Delay(0.5)
            pid = yield GetPid(int(ServiceId.TIME), Scope.ANY)
            value = yield from get_time(pid)
            return value

        value = system.run_client(client(system.session()))
        assert value == pytest.approx(1000.5, abs=0.05)

    def test_set_time_shifts_the_epoch(self):
        system, handle = system_with(TimeServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.TIME), Scope.ANY)
            yield Send(pid, Message.request(RequestCode.SET_TIME, time=500.0))
            return (yield from get_time(pid))

        assert system.run_client(
            client(system.session())) == pytest.approx(500.0, abs=0.05)

    def test_time_server_rejects_csnames(self):
        system, handle = system_with(TimeServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.TIME), Scope.ANY)
            from repro.core.protocol import make_csname_request

            reply = yield Send(pid, make_csname_request(
                RequestCode.QUERY_NAME, "anything", 0))
            return reply.reply_code

        assert system.run_client(
            client(system.session())) is ReplyCode.ILLEGAL_REQUEST


class TestExceptionServer:
    def test_raise_and_list_incidents(self):
        system, handle = system_with(ExceptionServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.EXCEPTION), Scope.ANY)
            yield Send(pid, Message.request(
                RequestCode.RAISE_EXCEPTION, exc_code="bus-error",
                detail="editor crashed"))
            yield from session.add_prefix(
                "exc", __import__(
                    "repro.core.context", fromlist=["ContextPair"]
                ).ContextPair(pid, 0))
            return (yield from session.list_directory("[exc]"))

        records = system.run_client(client(system.session()))
        assert len(records) == 1
        assert isinstance(records[0], ProcessDescription)
        assert records[0].state == "faulted:bus-error"
        assert records[0].program == "editor crashed"

    def test_query_incident_by_name(self):
        system, handle = system_with(ExceptionServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.EXCEPTION), Scope.ANY)
            reply = yield Send(pid, Message.request(
                RequestCode.RAISE_EXCEPTION, exc_code="trap"))
            name = reply["incident"]
            from repro.core.context import ContextPair

            yield from session.add_prefix("exc", ContextPair(pid, 0))
            return (yield from session.query(f"[exc]{name}"))

        record = system.run_client(client(system.session()))
        assert record.state == "faulted:trap"


class TestPipeServer:
    def build(self):
        system, handle = system_with(PipeServer())
        return system, handle

    def test_write_then_read_through_pipe(self):
        system, handle = self.build()

        def client(session):
            yield Delay(0.01)
            from repro.core.context import ContextPair

            pid = yield GetPid(int(ServiceId.PIPE), Scope.ANY)
            yield from session.add_prefix("pipe", ContextPair(pid, 0))
            from repro.servers.pipeserver import pipe_write

            writer = yield from session.open("[pipe]data", "w")
            yield from pipe_write(writer, b"through the pipe")
            reader = yield from session.open("[pipe]data", "r")
            from repro.vio.client import read_block

            code, data = yield from read_block(reader.server, reader.instance, 0)
            yield from writer.close()
            yield from reader.close()
            return code, data

        code, data = system.run_client(client(system.session()))
        assert code is ReplyCode.OK
        assert data == b"through the pipe"

    def test_empty_pipe_with_writer_says_retry(self):
        system, handle = self.build()

        def client(session):
            yield Delay(0.01)
            from repro.core.context import ContextPair
            from repro.vio.client import read_block

            pid = yield GetPid(int(ServiceId.PIPE), Scope.ANY)
            yield from session.add_prefix("pipe", ContextPair(pid, 0))
            writer = yield from session.open("[pipe]p", "w")
            reader = yield from session.open("[pipe]p", "r")
            code, __ = yield from read_block(reader.server, reader.instance, 0)
            return code

        assert system.run_client(client(system.session())) is ReplyCode.RETRY

    def test_empty_pipe_without_writer_is_eof(self):
        system, handle = self.build()

        def client(session):
            yield Delay(0.01)
            from repro.core.context import ContextPair
            from repro.vio.client import read_block

            pid = yield GetPid(int(ServiceId.PIPE), Scope.ANY)
            yield from session.add_prefix("pipe", ContextPair(pid, 0))
            writer = yield from session.open("[pipe]q", "w")
            yield from writer.close()
            reader = yield from session.open("[pipe]q", "r")
            code, __ = yield from read_block(reader.server, reader.instance, 0)
            return code

        assert system.run_client(
            client(system.session())) is ReplyCode.END_OF_FILE

    def test_pipe_appears_in_directory(self):
        system, handle = self.build()

        def client(session):
            yield Delay(0.01)
            from repro.core.context import ContextPair

            pid = yield GetPid(int(ServiceId.PIPE), Scope.ANY)
            yield from session.add_prefix("pipe", ContextPair(pid, 0))
            from repro.servers.pipeserver import pipe_write

            writer = yield from session.open("[pipe]named", "w")
            yield from pipe_write(writer, b"abc")
            return (yield from session.list_directory("[pipe]"))

        records = system.run_client(client(system.session()))
        assert len(records) == 1
        record = records[0]
        assert isinstance(record, PipeDescription)
        assert record.name == "named"
        assert record.buffered_bytes == 3
        assert record.writers == 1

    def test_busy_pipe_cannot_be_deleted(self):
        system, handle = self.build()

        def client(session):
            yield Delay(0.01)
            from repro.core.context import ContextPair

            pid = yield GetPid(int(ServiceId.PIPE), Scope.ANY)
            yield from session.add_prefix("pipe", ContextPair(pid, 0))
            writer = yield from session.open("[pipe]busy", "w")
            try:
                yield from session.remove("[pipe]busy")
            except NameError_ as err:
                code = err.code
            yield from writer.close()
            yield from session.remove("[pipe]busy")
            return code

        assert system.run_client(client(system.session())) is ReplyCode.BUSY


class TestTerminalServer:
    def build(self):
        system = standard_system()
        handle = start_server(system.workstation.host, TerminalServer("mann"))
        return system, handle

    def test_create_write_read_terminal(self):
        system, handle = self.build()

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.TERMINAL), Scope.LOCAL)
            reply = yield Send(pid, Message.request(
                RequestCode.TERMINAL_CREATE, rows=10, cols=40))
            name = reply["terminal"]
            stream = yield from session.open(f"[terminal]{name}", "r")
            yield from stream.write(b"hello\nworld\n")
            stream.seek(0)
            image = yield from stream.read_all()
            yield from stream.close()
            return name, image

        name, image = system.run_client(client(system.session()))
        assert name == "vt1"
        assert image == b"hello\nworld"

    def test_terminals_listed_with_geometry(self):
        system, handle = self.build()

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.TERMINAL), Scope.LOCAL)
            yield Send(pid, Message.request(RequestCode.TERMINAL_CREATE,
                                            rows=50, cols=132))
            yield Send(pid, Message.request(RequestCode.TERMINAL_CREATE))
            return (yield from session.list_directory("[terminal]"))

        records = system.run_client(client(system.session()))
        assert [r.name for r in records] == ["vt1", "vt2"]
        assert isinstance(records[0], TerminalDescription)
        assert (records[0].rows, records[0].cols) == (50, 132)

    def test_modify_resizes_terminal(self):
        system, handle = self.build()

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.TERMINAL), Scope.LOCAL)
            yield Send(pid, Message.request(RequestCode.TERMINAL_CREATE))
            record = yield from session.query("[terminal]vt1")
            record.rows, record.cols = 66, 100
            yield from session.modify("[terminal]vt1", record)
            return (yield from session.query("[terminal]vt1"))

        record = system.run_client(client(system.session()))
        assert (record.rows, record.cols) == (66, 100)

    def test_delete_terminal_by_name(self):
        """Uniform Delete on a transient object."""
        system, handle = self.build()

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.TERMINAL), Scope.LOCAL)
            yield Send(pid, Message.request(RequestCode.TERMINAL_CREATE))
            yield from session.remove("[terminal]vt1")
            return (yield from session.list_directory("[terminal]"))

        assert system.run_client(client(system.session())) == []

    def test_terminal_service_is_local_scope(self):
        system, handle = self.build()
        remote_host = system.domain.create_host("other-ws")

        def remote_client():
            yield Delay(0.05)
            pid = yield GetPid(int(ServiceId.TERMINAL), Scope.ANY)
            return pid

        found = run_on(system.domain, remote_host, remote_client())
        assert found is None  # local-scope registration stays private
