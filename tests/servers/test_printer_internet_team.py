"""Tests for the printer spooler, internet server, and team server."""

import pytest

from repro.core.context import ContextPair
from repro.core.descriptors import (
    PrintJobDescription,
    ProcessDescription,
    TcpConnectionDescription,
)
from repro.core.resolver import NameError_
from repro.kernel.ipc import Delay, GetPid, Send
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.kernel.services import Scope, ServiceId
from repro.runtime.program import kill_program, run_program
from repro.servers import InternetServer, PrinterServer, TeamServer, start_server
from repro.servers.pipeserver import pipe_write  # block-write helper
from tests.helpers import standard_system


def system_with(server):
    system = standard_system()
    host = system.domain.create_host("extra")
    handle = start_server(host, server)
    return system, handle


class TestPrinterServer:
    def test_submit_job_and_watch_it_print(self):
        system, handle = system_with(PrinterServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.PRINT), Scope.ANY)
            yield from session.add_prefix("lp", ContextPair(pid, 0))
            spool = yield from session.open("[lp]thesis", "w")
            yield from spool.write(b"P" * 5000)  # ~3 pages
            yield from spool.close()             # queues + prints
            record = yield from session.query("[lp]thesis")
            reply = yield Send(pid, Message.request(RequestCode.PRINT_STATUS))
            return record, reply

        record, status = system.run_client(client(system.session()))
        assert isinstance(record, PrintJobDescription)
        assert record.state == "done"
        assert record.pages == 3
        assert status["pages_printed"] == 3

    def test_duplicate_job_name_rejected(self):
        system, handle = system_with(PrinterServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.PRINT), Scope.ANY)
            yield from session.add_prefix("lp", ContextPair(pid, 0))
            spool = yield from session.open("[lp]dup", "w")
            yield from spool.close()
            try:
                yield from session.open("[lp]dup", "w")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.NAME_EXISTS

    def test_cancel_job_via_modify(self):
        """Sec. 5.5 modification on a non-file object."""
        system, handle = system_with(PrinterServer())
        printer = handle.server

        # Pre-queue a job directly so it is still cancellable.
        from repro.servers.printerserver import PrintJob

        job = PrintJob(name=b"stuck", owner="mann")
        job.data.extend(b"x" * 100)
        job.state = "queued"
        printer.table.jobs[b"stuck"] = job

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.PRINT), Scope.ANY)
            yield from session.add_prefix("lp", ContextPair(pid, 0))
            record = yield from session.query("[lp]stuck")
            record.state = "cancelled"
            yield from session.modify("[lp]stuck", record)
            return (yield from session.query("[lp]stuck"))

        assert system.run_client(client(system.session())).state == "cancelled"

    def test_queue_directory_lists_jobs(self):
        system, handle = system_with(PrinterServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.PRINT), Scope.ANY)
            yield from session.add_prefix("lp", ContextPair(pid, 0))
            for name in ("a", "b"):
                spool = yield from session.open(f"[lp]{name}", "w")
                yield from spool.write(b"x")
                yield from spool.close()
            return (yield from session.list_directory("[lp]"))

        records = system.run_client(client(system.session()))
        assert [r.name for r in records] == ["a", "b"]


class TestInternetServer:
    def test_connect_write_read_echo(self):
        system, handle = system_with(InternetServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.INTERNET), Scope.ANY)
            reply = yield Send(pid, Message.request(
                RequestCode.TCP_CONNECT, host="su-score.arpa", port=25))
            name = reply["connection"]
            yield from session.add_prefix("tcp0", ContextPair(pid, 0))
            stream = yield from session.open(f"[tcp0]{name}", "r")
            from repro.vio.client import read_block, write_block

            yield from write_block(stream.server, stream.instance, 0,
                                   b"HELO stanford")
            code, data = yield from read_block(stream.server, stream.instance, 0)
            return name, code, data

        name, code, data = system.run_client(client(system.session()))
        assert name == "tcp-1"
        assert code is ReplyCode.OK
        assert data == b"HELO stanford"  # echo endpoint

    def test_connections_listed_with_endpoints(self):
        system, handle = system_with(InternetServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.INTERNET), Scope.ANY)
            yield Send(pid, Message.request(RequestCode.TCP_CONNECT,
                                            host="mit-ai", port=23))
            yield from session.add_prefix("tcp0", ContextPair(pid, 0))
            return (yield from session.list_directory("[tcp0]"))

        records = system.run_client(client(system.session()))
        assert len(records) == 1
        record = records[0]
        assert isinstance(record, TcpConnectionDescription)
        assert record.remote_host == "mit-ai"
        assert record.state == "established"

    def test_disconnect_removes_the_object(self):
        system, handle = system_with(InternetServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.INTERNET), Scope.ANY)
            reply = yield Send(pid, Message.request(
                RequestCode.TCP_CONNECT, host="x", port=1))
            yield Send(pid, Message.request(RequestCode.TCP_DISCONNECT,
                                            connection=reply["connection"]))
            yield from session.add_prefix("tcp0", ContextPair(pid, 0))
            try:
                yield from session.query(f"[tcp0]{reply['connection']}")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.NOT_FOUND

    def test_byte_counters_track_traffic(self):
        system, handle = system_with(InternetServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.INTERNET), Scope.ANY)
            reply = yield Send(pid, Message.request(
                RequestCode.TCP_CONNECT, host="x", port=1))
            name = reply["connection"]
            yield from session.add_prefix("tcp0", ContextPair(pid, 0))
            stream = yield from session.open(f"[tcp0]{name}", "r")
            from repro.vio.client import write_block

            yield from write_block(stream.server, stream.instance, 0, b"12345")
            return (yield from session.query(f"[tcp0]{name}"))

        record = system.run_client(client(system.session()))
        assert record.bytes_out == 5
        assert record.bytes_in == 5  # echoed


class TestTeamServer:
    def test_run_program_and_list_it(self):
        system, handle = system_with(TeamServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.TEAM), Scope.ANY)
            name, prog_pid = yield from run_program(pid, "edit", duration=60.0)
            records = yield from session.list_directory("[team]")
            return name, prog_pid, records

        name, prog_pid, records = system.run_client(client(system.session()))
        assert name == "edit.1"
        assert len(records) == 1
        assert isinstance(records[0], ProcessDescription)
        assert records[0].pid_value == prog_pid.value
        assert records[0].state == "running"

    def test_uniform_delete_kills_a_program(self):
        """Delete(object_name) on a program in execution (Sec. 1)."""
        system, handle = system_with(TeamServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.TEAM), Scope.ANY)
            name, __ = yield from run_program(pid, "runaway", duration=3600.0)
            yield from session.remove(f"[team]{name}")
            return (yield from session.list_directory("[team]"))

        assert system.run_client(client(system.session())) == []

    def test_kill_program_low_level(self):
        system, handle = system_with(TeamServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.TEAM), Scope.ANY)
            name, __ = yield from run_program(pid, "spin", duration=3600.0)
            yield from kill_program(pid, name)
            return (yield from session.list_directory("[team]"))

        assert system.run_client(client(system.session())) == []

    def test_query_program_by_name(self):
        system, handle = system_with(TeamServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.TEAM), Scope.ANY)
            name, __ = yield from run_program(pid, "cc", duration=10.0)
            return (yield from session.query(f"[team]{name}"))

        record = system.run_client(client(system.session()))
        assert record.program == "cc"

    def test_modify_changes_priority_only(self):
        system, handle = system_with(TeamServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.TEAM), Scope.ANY)
            name, __ = yield from run_program(pid, "nice", duration=10.0)
            record = yield from session.query(f"[team]{name}")
            record.priority = 15
            record.state = "cheating"  # not mutable
            yield from session.modify(f"[team]{name}", record)
            return (yield from session.query(f"[team]{name}"))

        record = system.run_client(client(system.session()))
        assert record.priority == 15
        assert record.state == "running"

    def test_program_names_are_unique_per_invocation(self):
        system, handle = system_with(TeamServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.TEAM), Scope.ANY)
            first, __ = yield from run_program(pid, "edit", duration=5.0)
            second, __ = yield from run_program(pid, "edit", duration=5.0)
            return first, second

        first, second = system.run_client(client(system.session()))
        assert first != second
