"""Behavioural tests for the V file server through the full protocol stack."""

import pytest

from repro.core.context import ContextPair, WellKnownContext
from repro.core.descriptors import (
    ContextDescription,
    FileDescription,
    PrefixDescription,
)
from repro.core.resolver import NameError_
from repro.kernel.domain import Domain
from repro.kernel.messages import ReplyCode
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from tests.helpers import run_on, standard_system


class TestFileOperations:
    def test_write_then_read_roundtrip(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "doc.txt", b"hello world")
            return (yield from files.read_file(session, "doc.txt"))

        assert system.run_client(client(system.session())) == b"hello world"

    def test_multiblock_file_roundtrip(self):
        system = standard_system()
        payload = bytes(range(256)) * 9  # 2304 bytes, several 512B blocks

        def client(session):
            yield from files.write_file(session, "big.bin", payload)
            return (yield from files.read_file(session, "big.bin"))

        assert system.run_client(client(system.session())) == payload

    def test_open_missing_file_not_found(self):
        system = standard_system()

        def client(session):
            try:
                yield from files.read_file(session, "ghost.txt")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.NOT_FOUND

    def test_write_mode_truncates(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "t.txt", b"long content here")
            yield from files.write_file(session, "t.txt", b"short")
            return (yield from files.read_file(session, "t.txt"))

        assert system.run_client(client(system.session())) == b"short"

    def test_append_mode_appends(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "log.txt", b"one ")
            yield from files.append_file(session, "log.txt", b"two")
            return (yield from files.read_file(session, "log.txt"))

        assert system.run_client(client(system.session())) == b"one two"

    def test_open_directory_as_file_is_mode_error(self):
        system = standard_system()

        def client(session):
            yield from session.mkdir("adir")
            try:
                yield from session.open("adir", "r")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.MODE_ERROR

    def test_read_mode_on_stream_is_enforced(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "ro.txt", b"data")
            stream = yield from session.open("ro.txt", "r")
            from repro.vio.client import write_block

            code, __ = yield from write_block(stream.server, stream.instance,
                                              0, b"nope")
            yield from stream.close()
            return code

        assert system.run_client(
            client(system.session())) is ReplyCode.MODE_ERROR

    def test_remove_file(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "dead.txt", b"x")
            yield from session.remove("dead.txt")
            try:
                yield from files.read_file(session, "dead.txt")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.NOT_FOUND

    def test_rename_file(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "old.txt", b"content")
            yield from session.rename("old.txt", b"new.txt")
            return (yield from files.read_file(session, "new.txt"))

        assert system.run_client(client(system.session())) == b"content"

    def test_create_without_open(self):
        system = standard_system()

        def client(session):
            yield from session.create("empty.txt")
            record = yield from session.query("empty.txt")
            return record

        record = system.run_client(client(system.session()))
        assert isinstance(record, FileDescription)
        assert record.size_bytes == 0


class TestContexts:
    def test_mkdir_and_nested_paths(self):
        system = standard_system()

        def client(session):
            yield from session.mkdir("src")
            yield from session.mkdir("src/core")
            yield from files.write_file(session, "src/core/m.py", b"code")
            return (yield from files.read_file(session, "src/core/m.py"))

        assert system.run_client(client(system.session())) == b"code"

    def test_rmdir_requires_empty(self):
        system = standard_system()

        def client(session):
            yield from session.mkdir("full")
            yield from files.write_file(session, "full/f", b"x")
            try:
                yield from session.rmdir("full")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.CONTEXT_NOT_EMPTY

    def test_chdir_changes_interpretation(self):
        system = standard_system()

        def client(session):
            yield from session.mkdir("project")
            yield from files.write_file(session, "project/notes.txt", b"notes")
            yield from session.chdir("project")
            return (yield from files.read_file(session, "notes.txt"))

        assert system.run_client(client(system.session())) == b"notes"

    def test_same_name_different_contexts(self):
        """The paper's 'naming.mss' example (Sec. 5.2)."""
        system = standard_system()

        def client(session):
            for directory, content in (("ng/mann", b"mann's draft"),
                                       ("ng/cheriton", b"dc's draft")):
                yield from session.mkdir(directory.split("/")[0]) \
                    if directory == "ng/mann" else iter(())
                yield from session.mkdir(directory)
                yield from files.write_file(
                    session, f"{directory}/naming.mss", content)
            a = yield from files.read_file(session, "ng/mann/naming.mss")
            yield from session.chdir("ng/cheriton")
            b = yield from files.read_file(session, "naming.mss")
            return a, b

        a, b = system.run_client(client(system.session()))
        assert a == b"mann's draft" and b == b"dc's draft"

    def test_name_to_context_returns_usable_pair(self):
        system = standard_system()

        def client(session):
            yield from session.mkdir("ctx")
            pair = yield from session.name_to_context("ctx")
            return pair

        pair = system.run_client(client(system.session()))
        assert pair.server == system.fileserver.pid
        assert pair.context_id != int(WellKnownContext.HOME)

    def test_dot_dot_navigation(self):
        system = standard_system()

        def client(session):
            yield from session.mkdir("a")
            yield from files.write_file(session, "sibling.txt", b"s")
            yield from session.chdir("a")
            return (yield from files.read_file(session, "../sibling.txt"))

        assert system.run_client(client(system.session())) == b"s"


class TestDescriptions:
    def test_query_file_returns_typed_record(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "q.txt", b"12345")
            return (yield from session.query("q.txt"))

        record = system.run_client(client(system.session()))
        assert isinstance(record, FileDescription)
        assert record.name == "q.txt"
        assert record.size_bytes == 5
        assert record.owner == "mann"

    def test_query_directory_returns_context_record(self):
        system = standard_system()

        def client(session):
            yield from session.mkdir("d")
            yield from files.write_file(session, "d/f", b"x")
            return (yield from session.query("d"))

        record = system.run_client(client(system.session()))
        assert isinstance(record, ContextDescription)
        assert record.entry_count == 1

    def test_modify_applies_only_mutable_fields(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "m.txt", b"hello")
            record = yield from session.query("m.txt")
            record.owner = "cheriton"
            record.access = 0o600
            record.size_bytes = 9999  # immutable: must be ignored
            yield from session.modify("m.txt", record)
            return (yield from session.query("m.txt"))

        updated = system.run_client(client(system.session()))
        assert updated.owner == "cheriton"
        assert updated.access == 0o600
        assert updated.size_bytes == 5

    def test_list_directory_fabricates_records(self):
        system = standard_system()

        def client(session):
            yield from session.mkdir("listed")
            yield from files.write_file(session, "listed/a.txt", b"a")
            yield from files.write_file(session, "listed/b.txt", b"bb")
            yield from session.mkdir("listed/sub")
            return (yield from session.list_directory("listed"))

        records = system.run_client(client(system.session()))
        assert [r.name for r in records] == ["a.txt", "b.txt", "sub"]
        assert isinstance(records[0], FileDescription)
        assert isinstance(records[2], ContextDescription)
        assert records[1].size_bytes == 2

    def test_writing_directory_record_modifies_object(self):
        """Sec. 5.6: writing a record == the modification operation."""
        system = standard_system()

        def client(session):
            yield from session.mkdir("dw")
            yield from files.write_file(session, "dw/t.txt", b"x")
            reply = yield from session.csname_request(
                0x0308, "dw")  # OPEN_DIRECTORY
            from repro.kernel.pids import Pid
            from repro.vio.client import write_block, release_instance

            server = Pid(int(reply["server_pid"]))
            instance = int(reply["instance"])
            record = FileDescription(name="t.txt", owner="newowner")
            code, __ = yield from write_block(server, instance, 0,
                                              record.encode())
            yield from release_instance(server, instance)
            updated = yield from session.query("dw/t.txt")
            return code, updated.owner

        code, owner = system.run_client(client(system.session()))
        assert code is ReplyCode.OK
        assert owner == "newowner"


class TestCrossServerForwarding:
    def build_two_servers(self):
        domain = Domain()
        ws = setup_workstation(domain, "mann")
        host_a = domain.create_host("vax1")
        host_b = domain.create_host("vax2")
        fs_a = start_server(host_a, VFileServer(user="mann"))
        fs_b = start_server(host_b, VFileServer(user="mann"))
        standard_prefixes(ws, fs_a)
        return domain, ws, fs_a, fs_b

    def test_remote_link_forwards_transparently(self):
        domain, ws, fs_a, fs_b = self.build_two_servers()
        # fs_a:/users/mann/other -> fs_b home directory
        fs_a.server.store.link_remote(
            fs_a.server.home, b"other",
            ContextPair(fs_b.pid, int(WellKnownContext.HOME)))

        def client(session):
            yield from files.write_file(session, "other/x.txt", b"via-link")
            return (yield from files.read_file(session, "other/x.txt"))

        result = run_on(domain, ws.host, client(ws.session()))
        assert result == b"via-link"
        node = fs_b.server.store.resolve_path("users/mann/x.txt")
        assert node is not None and bytes(node.data) == b"via-link"
        assert domain.metrics.count("ipc.forwards") > 0

    def test_add_remote_link_by_message(self):
        domain, ws, fs_a, fs_b = self.build_two_servers()

        def client(session):
            pair_b = ContextPair(fs_b.pid, int(WellKnownContext.PUBLIC))
            from repro.kernel.messages import RequestCode

            reply = yield from session.csname_request(
                RequestCode.ADD_CONTEXT_NAME, "shared",
                target_pid=pair_b.server.value,
                target_context=pair_b.context_id)
            assert reply.ok, reply
            yield from files.write_file(session, "shared/pub.txt", b"pub")
            return (yield from files.read_file(session, "shared/pub.txt"))

        assert run_on(domain, ws.host, client(ws.session())) == b"pub"
        assert fs_b.server.store.resolve_path("public/pub.txt") is not None

    def test_link_appears_in_directory_listing(self):
        domain, ws, fs_a, fs_b = self.build_two_servers()
        fs_a.server.store.link_remote(
            fs_a.server.home, b"other",
            ContextPair(fs_b.pid, int(WellKnownContext.HOME)))

        def client(session):
            return (yield from session.list_directory("."))

        records = run_on(domain, ws.host, client(ws.session()))
        links = [r for r in records if isinstance(r, PrefixDescription)]
        assert len(links) == 1
        assert links[0].name == "other"
        assert links[0].server_pid == fs_b.pid.value

    def test_cross_server_rename_not_supported(self):
        domain, ws, fs_a, fs_b = self.build_two_servers()
        fs_a.server.store.link_remote(
            fs_a.server.home, b"other",
            ContextPair(fs_b.pid, int(WellKnownContext.HOME)))

        def client(session):
            yield from files.write_file(session, "here.txt", b"x")
            try:
                yield from session.rename("here.txt", b"other/there.txt")
            except NameError_ as err:
                return err.code

        assert run_on(domain, ws.host,
                      client(ws.session())) is ReplyCode.NOT_SUPPORTED

    def test_forwarded_not_found_reported_to_client(self):
        """The Sec. 6 'deficiency': errors deep in a forwarding chain."""
        domain, ws, fs_a, fs_b = self.build_two_servers()
        fs_a.server.store.link_remote(
            fs_a.server.home, b"other",
            ContextPair(fs_b.pid, int(WellKnownContext.HOME)))

        def client(session):
            try:
                yield from files.read_file(session, "other/ghost.txt")
            except NameError_ as err:
                return err.code

        assert run_on(domain, ws.host,
                      client(ws.session())) is ReplyCode.NOT_FOUND


class TestInverseMapping:
    def test_instance_to_name(self):
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "inv.txt", b"x")
            stream = yield from session.open("inv.txt", "r")
            from repro.core.inverse import instance_to_name

            name = yield from instance_to_name(stream.server, stream.instance)
            yield from stream.close()
            return name

        assert system.run_client(
            client(system.session())) == b"users/mann/inv.txt"

    def test_deleted_open_file_has_no_inverse(self):
        """Sec. 6: 'no guarantee that there is an inverse mapping'."""
        system = standard_system()

        def client(session):
            yield from files.write_file(session, "doomed.txt", b"x")
            stream = yield from session.open("doomed.txt", "r")
            yield from session.remove("doomed.txt")
            from repro.core.inverse import instance_to_name

            return (yield from instance_to_name(stream.server,
                                                stream.instance))

        assert system.run_client(client(system.session())) is None

    def test_context_to_name_of_current_context(self):
        system = standard_system()

        def client(session):
            from repro.core.inverse import context_to_name

            return (yield from context_to_name(session.current.server,
                                               session.current.context_id))

        assert system.run_client(client(system.session())) == b"users/mann"
