"""Unit + property tests for the file server's inode store."""

import pytest
from hypothesis import given, strategies as st

from repro.core.context import ContextPair
from repro.core.names import BadName
from repro.kernel.pids import Pid
from repro.servers.fileserver.storage import (
    DirectoryNode,
    FileNode,
    FileStore,
    RemoteLinkEntry,
    StorageError,
)


@pytest.fixture
def store():
    return FileStore(owner="mann")


class TestCreation:
    def test_create_file(self, store):
        node = store.create_file(store.root, b"a.txt", now=1.5)
        assert isinstance(node, FileNode)
        assert node.parent is store.root
        assert node.created == 1.5
        assert store.file_count == 1

    def test_create_directory(self, store):
        node = store.create_directory(store.root, b"src")
        assert isinstance(node, DirectoryNode)
        assert store.directory_count == 2

    def test_duplicate_name_rejected(self, store):
        store.create_file(store.root, b"a")
        with pytest.raises(StorageError, match="already bound"):
            store.create_directory(store.root, b"a")

    def test_reserved_names_rejected(self, store):
        with pytest.raises(BadName):
            store.create_file(store.root, b".")
        with pytest.raises(BadName):
            store.create_directory(store.root, b"..")

    def test_separator_in_name_rejected(self, store):
        with pytest.raises(BadName):
            store.create_file(store.root, b"a/b")

    def test_owner_inherited_from_directory(self, store):
        directory = store.create_directory(store.root, b"d", owner="x")
        node = store.create_file(directory, b"f")
        assert node.owner == "x"

    def test_inodes_unique(self, store):
        nodes = [store.create_file(store.root, f"f{i}".encode())
                 for i in range(50)]
        inodes = {n.inode for n in nodes}
        assert len(inodes) == 50


class TestLookup:
    def test_get_entry(self, store):
        node = store.create_file(store.root, b"a")
        assert store.get(store.root, b"a") is node
        assert store.get(store.root, b"missing") is None

    def test_dot_and_dotdot(self, store):
        child = store.create_directory(store.root, b"child")
        assert store.get(child, b".") is child
        assert store.get(child, b"..") is store.root
        assert store.get(store.root, b"..") is store.root  # root's parent

    def test_resolve_path_helper(self, store):
        store.make_path("a/b/c")
        found = store.resolve_path("a/b/c")
        assert isinstance(found, DirectoryNode)
        assert store.resolve_path("a/missing") is None

    def test_make_path_file(self, store):
        node = store.make_path("a/b/file.txt", directory=False)
        assert isinstance(node, FileNode)
        assert store.resolve_path("a/b/file.txt") is node

    def test_make_path_idempotent(self, store):
        first = store.make_path("x/y")
        second = store.make_path("x/y")
        assert first is second


class TestPathOf:
    def test_path_of_nested_node(self, store):
        node = store.make_path("users/mann/doc.txt", directory=False)
        assert store.path_of(node) == b"users/mann/doc.txt"

    def test_path_of_root(self, store):
        assert store.path_of(store.root) == b""

    def test_detached_node_has_no_path(self, store):
        node = store.create_file(store.root, b"gone")
        store.remove(store.root, b"gone")
        with pytest.raises(StorageError, match="detached"):
            store.path_of(node)


class TestRemoval:
    def test_remove_file(self, store):
        store.create_file(store.root, b"a")
        removed = store.remove(store.root, b"a")
        assert isinstance(removed, FileNode)
        assert store.file_count == 0
        assert store.get(store.root, b"a") is None

    def test_remove_empty_directory(self, store):
        store.create_directory(store.root, b"d")
        store.remove(store.root, b"d")
        assert store.directory_count == 1

    def test_remove_nonempty_directory_rejected(self, store):
        directory = store.create_directory(store.root, b"d")
        store.create_file(directory, b"f")
        with pytest.raises(StorageError, match="not empty"):
            store.remove(store.root, b"d")

    def test_remove_missing_rejected(self, store):
        with pytest.raises(StorageError, match="no entry"):
            store.remove(store.root, b"ghost")

    def test_remove_remote_link(self, store):
        pair = ContextPair(Pid.make(9, 9), 0)
        store.link_remote(store.root, b"other", pair)
        removed = store.remove(store.root, b"other")
        assert isinstance(removed, RemoteLinkEntry)


class TestRename:
    def test_rename_within_directory(self, store):
        store.create_file(store.root, b"old")
        store.rename(store.root, b"old", store.root, b"new")
        assert store.get(store.root, b"new") is not None
        assert store.get(store.root, b"old") is None

    def test_rename_across_directories(self, store):
        src = store.create_directory(store.root, b"src")
        dst = store.create_directory(store.root, b"dst")
        node = store.create_file(src, b"f")
        store.rename(src, b"f", dst, b"f2")
        assert node.parent is dst
        assert node.name == b"f2"
        assert store.path_of(node) == b"dst/f2"

    def test_rename_onto_existing_name_rejected(self, store):
        store.create_file(store.root, b"a")
        store.create_file(store.root, b"b")
        with pytest.raises(StorageError):
            store.rename(store.root, b"a", store.root, b"b")


class TestAccounting:
    def test_total_bytes(self, store):
        f1 = store.make_path("a/f1", directory=False)
        f2 = store.make_path("f2", directory=False)
        f1.data.extend(b"x" * 10)
        f2.data.extend(b"y" * 5)
        assert store.total_bytes() == 15


@given(st.lists(
    st.text(min_size=1, max_size=6,
            alphabet=st.characters(min_codepoint=97, max_codepoint=122)),
    min_size=1, max_size=6, unique=True))
def test_path_of_inverts_make_path_property(parts):
    store = FileStore()
    path = "/".join(parts)
    node = store.make_path(path, directory=False)
    assert store.path_of(node).decode() == path
