"""Additional server behaviours: dismissal, directory-write modification,
pipe draining, instance-table hygiene."""

import pytest

from repro.core.context import ContextPair
from repro.core.descriptors import PrintJobDescription
from repro.kernel.ipc import Delay, GetPid, Send
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import Scope, ServiceId
from repro.servers import ExceptionServer, PipeServer, PrinterServer, start_server
from repro.servers.pipeserver import drain_pipe, pipe_write
from repro.vio.client import release_instance, write_block
from tests.helpers import standard_system


def system_with(server):
    system = standard_system()
    handle = start_server(system.domain.create_host("extra"), server)
    return system, handle


class TestExceptionDismissal:
    def test_dismiss_incident_by_uniform_delete(self):
        system, handle = system_with(ExceptionServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.EXCEPTION), Scope.ANY)
            reply = yield Send(pid, Message.request(
                RequestCode.RAISE_EXCEPTION, exc_code="page-fault"))
            name = reply["incident"]
            yield from session.add_prefix("exc", ContextPair(pid, 0))
            yield from session.remove(f"[exc]{name}")
            return (yield from session.list_directory("[exc]"))

        assert system.run_client(client(system.session())) == []

    def test_dismiss_unknown_incident(self):
        system, handle = system_with(ExceptionServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.EXCEPTION), Scope.ANY)
            yield from session.add_prefix("exc", ContextPair(pid, 0))
            from repro.core.resolver import NameError_

            try:
                yield from session.remove("[exc]exc-99")
            except NameError_ as err:
                return err.code

        assert system.run_client(
            client(system.session())) is ReplyCode.NOT_FOUND


class TestPrinterDirectoryWrites:
    def test_cancel_via_directory_record_write(self):
        """Sec. 5.6: writing a record into the queue directory == modify."""
        system, handle = system_with(PrinterServer())
        from repro.servers.printerserver import PrintJob

        job = PrintJob(name=b"stuck", owner="op")
        job.data.extend(b"x" * 4096)
        job.state = "queued"
        handle.server.table.jobs[b"stuck"] = job

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.PRINT), Scope.ANY)
            yield from session.add_prefix("lp", ContextPair(pid, 0))
            reply = yield from session.csname_request(
                RequestCode.OPEN_DIRECTORY, "[lp]")
            server = Pid(int(reply["server_pid"]))
            instance = int(reply["instance"])
            record = PrintJobDescription(name="stuck", state="cancelled")
            code, __ = yield from write_block(server, instance, 0,
                                              record.encode())
            yield from release_instance(server, instance)
            final = yield from session.query("[lp]stuck")
            return code, final.state

        code, state = system.run_client(client(system.session()))
        assert code is ReplyCode.OK
        assert state == "cancelled"

    def test_record_write_for_unknown_job(self):
        system, handle = system_with(PrinterServer())

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.PRINT), Scope.ANY)
            yield from session.add_prefix("lp", ContextPair(pid, 0))
            reply = yield from session.csname_request(
                RequestCode.OPEN_DIRECTORY, "[lp]")
            server = Pid(int(reply["server_pid"]))
            instance = int(reply["instance"])
            record = PrintJobDescription(name="ghost", state="cancelled")
            code, __ = yield from write_block(server, instance, 0,
                                              record.encode())
            yield from release_instance(server, instance)
            return code

        assert system.run_client(
            client(system.session())) is ReplyCode.NOT_FOUND


class TestPipeDraining:
    def test_drain_pipe_collects_everything_to_eof(self):
        system, handle = system_with(PipeServer())
        payload = bytes(range(256)) * 8

        def client(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.PIPE), Scope.ANY)
            yield from session.add_prefix("pipe", ContextPair(pid, 0))
            writer = yield from session.open("[pipe]d", "w")
            reader = yield from session.open("[pipe]d", "r")
            yield from pipe_write(writer, payload)
            yield from writer.close()
            data = yield from drain_pipe(reader)
            yield from reader.close()
            return data

        assert system.run_client(client(system.session())) == payload

    def test_interleaved_producer_consumer(self):
        system, handle = system_with(PipeServer())
        chunks = [f"chunk-{i};".encode() for i in range(20)]

        def producer(session):
            yield Delay(0.01)
            pid = yield GetPid(int(ServiceId.PIPE), Scope.ANY)
            yield from session.add_prefix("pipe", ContextPair(pid, 0))
            writer = yield from session.open("[pipe]feed", "w")
            for chunk in chunks:
                yield from pipe_write(writer, chunk)
                yield Delay(0.002)
            yield from writer.close()

        def consumer(session):
            yield Delay(0.05)  # after the pipe exists
            pid = yield GetPid(int(ServiceId.PIPE), Scope.ANY)
            yield from session.add_prefix("pipe2", ContextPair(pid, 0))
            reader = yield from session.open("[pipe2]feed", "r")
            data = yield from drain_pipe(reader)
            return data

        from tests.helpers import run_on

        system.workstation.host.spawn(
            producer(system.session()), "producer")
        result = run_on(system.domain, system.workstation.host,
                        consumer(system.session()), name="consumer")
        assert result == b"".join(chunks)


class TestInstanceHygiene:
    def test_instances_released_on_close_do_not_accumulate(self):
        system = standard_system()

        def client(session):
            from repro.runtime import files

            yield from files.write_file(session, "f.txt", b"x")
            for __ in range(25):
                stream = yield from session.open("f.txt", "r")
                yield from stream.close()
            return len(system.fs.instances)

        assert system.run_client(client(system.session())) == 0

    def test_directory_instances_released_too(self):
        system = standard_system()

        def client(session):
            for __ in range(10):
                yield from session.list_directory(".")
            return len(system.fs.instances)

        assert system.run_client(client(system.session())) == 0
