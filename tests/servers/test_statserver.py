"""The ``[obs]`` name space: stat servers, root forwarding, fleet roll-ups.

The acceptance scenario: a client on host A opens
``[obs]/hosts/<B>/metrics`` and gets host B's live kernel counters back
through the full simulated protocol, with the resolution trace showing the
prefix-server -> root obs server -> host-B stat server forwarding chain.
"""

import json

import pytest

from repro.core.descriptors import (
    ContextDescription,
    PrefixDescription,
    StatDescription,
)
from repro.core.resolver import NameError_
from repro.kernel.domain import Domain
from repro.kernel.messages import ReplyCode
from repro.obs import Observability
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, enable_obs_namespace, start_server
from tests.helpers import run_on, standard_system


def obs_system(name_cache: bool = False):
    """ws1 + vax1 file server, traced, with the ``[obs]`` space deployed."""
    domain = Domain(obs=Observability())
    workstation = setup_workstation(domain, "mann", name="ws1",
                                    name_cache=name_cache)
    handle = start_server(domain.create_host("vax1"), VFileServer(user="mann"))
    standard_prefixes(workstation, handle)
    namespace = enable_obs_namespace(domain, root_host=workstation.host)
    return domain, workstation, handle, namespace


def read_name(domain, workstation, name: str) -> bytes:
    def client(session):
        return (yield from session.read_file(name))

    return run_on(domain, workstation.host, client(workstation.session()))


class TestCrossHostRead:
    def test_remote_host_metrics_read_end_to_end(self):
        domain, workstation, __, __ = obs_system()
        payload = read_name(domain, workstation, "[obs]/hosts/vax1/metrics")
        snap = json.loads(payload)
        assert snap["host"] == "vax1"
        assert snap["crashed"] is False
        assert snap["uptime_seconds"] >= 0.0
        # vax1 delivered at least the forwarded OPEN_FILE and the reads.
        assert snap["counters"]["ipc.deliveries"] >= 1
        assert any(entry["service_name"] == "storage"
                   for entry in snap["registrations"])

    def test_forwarding_chain_in_the_resolution_trace(self):
        domain, workstation, __, namespace = obs_system()
        read_name(domain, workstation, "[obs]/hosts/vax1/metrics")
        obs = domain.obs

        roots = [span for span in obs.spans.find("resolve:OPEN_FILE")
                 if span.attrs.get("csname") == "[obs]/hosts/vax1/metrics"]
        assert roots, "no resolve span for the [obs] open"
        root = roots[-1]
        spans = obs.spans.trace(root.trace_id)
        by_name = {span.name: span for span in spans}

        # The three-hop chain, each hop the child of the hop that
        # forwarded to it, each on the right machine.
        prefix_hop = by_name["server:prefix-server"]
        root_hop = by_name["server:obsserver"]
        stat_hop = by_name["server:statserver"]
        assert prefix_hop.actor == "ws1/prefix-server"
        assert root_hop.actor == "ws1/obsserver"
        assert stat_hop.actor == "vax1/statserver"
        assert root_hop.parent_id == prefix_hop.span_id
        assert stat_hop.parent_id == root_hop.span_id

        # The generic [obs] prefix forwarded to the root obs server...
        assert prefix_hop.attrs["prefix"] == "obs"
        assert prefix_hop.attrs["binding"] == "generic"
        assert prefix_hop.attrs["forwarded_to"] == str(
            namespace.root_handle.pid)
        # ...which consumed "hosts/vax1" and forwarded on the remote link...
        (root_step,) = root_hop.attrs["mapping"]
        assert root_step["outcome"] == "forward"
        assert root_step["consumed"] == len("/hosts/vax1")
        assert root_hop.attrs["forwarded_to"] == str(
            namespace.stat_pid("vax1"))
        # ...and vax1's stat server finished the walk.
        (stat_step,) = stat_hop.attrs["mapping"]
        assert stat_step["outcome"] == "resolved"
        assert stat_hop.attrs["reply_code"] == "OK"
        assert all(span.finished for span in spans)

    def test_introspection_reads_are_charged_normal_latency(self):
        domain, workstation, __, __ = obs_system()

        def client(session):
            from repro.kernel.ipc import Now

            t0 = yield Now()
            yield from session.read_file("[obs]/hosts/vax1/metrics")
            t1 = yield Now()
            return t1 - t0

        elapsed = run_on(domain, workstation.host,
                         client(workstation.session()))
        # Prefix hop + two forwards + cross-wire reads: well over the
        # 3.70 ms direct remote open, nowhere near free.
        assert elapsed * 1e3 > 3.70


class TestDirectoryListing:
    def test_host_context_lists_typed_records(self):
        domain, workstation, __, __ = obs_system()

        def client(session):
            return (yield from session.list_directory("[obs]/hosts/vax1/"))

        records = run_on(domain, workstation.host,
                         client(workstation.session()))
        by_name = {record.name: record for record in records}
        assert set(by_name) == {"metrics", "services", "namecache",
                                "coherence", "processes", "profile",
                                "spans", "timeseries", "flightlog"}
        for leaf in ("metrics", "services", "namecache", "coherence",
                     "processes", "profile"):
            record = by_name[leaf]
            assert isinstance(record, StatDescription)
            assert record.host == "vax1"
            assert record.format == "json"
            assert record.size_bytes > 0
        flightlog = by_name["flightlog"]
        assert isinstance(flightlog, StatDescription)
        assert flightlog.format == "jsonl"
        assert flightlog.size_bytes > 0
        spans = by_name["spans"]
        assert isinstance(spans, ContextDescription)
        assert spans.entry_count == 1
        timeseries = by_name["timeseries"]
        assert isinstance(timeseries, ContextDescription)
        from repro.obs.telemetry import SERIES_METRICS
        assert timeseries.entry_count == len(SERIES_METRICS)

    def test_hosts_context_lists_remote_links(self):
        domain, workstation, __, namespace = obs_system()

        def client(session):
            return (yield from session.list_directory("[obs]/hosts/"))

        records = run_on(domain, workstation.host,
                         client(workstation.session()))
        by_name = {record.name: record for record in records}
        assert set(by_name) == {"ws1", "vax1"}
        for host_name, record in by_name.items():
            assert isinstance(record, PrefixDescription)
            assert record.server_pid == namespace.stat_pid(host_name).value

    def test_obs_root_lists_hosts_and_fleet(self):
        domain, workstation, __, __ = obs_system()

        def client(session):
            return (yield from session.list_directory("[obs]/"))

        records = run_on(domain, workstation.host,
                         client(workstation.session()))
        assert {record.name for record in records} == {"hosts", "fleet"}
        assert all(isinstance(record, ContextDescription)
                   for record in records)

    def test_query_returns_a_stat_description(self):
        domain, workstation, __, __ = obs_system()

        def client(session):
            return (yield from session.query("[obs]/hosts/vax1/spans/recent"))

        record = run_on(domain, workstation.host,
                        client(workstation.session()))
        assert isinstance(record, StatDescription)
        assert record.host == "vax1"
        assert record.format == "jsonl"


class TestPerHostLeaves:
    def test_namecache_enabled_and_disabled_views(self):
        domain, workstation, __, __ = obs_system(name_cache=True)
        # Warm the cache with a normal file workload first.

        def warm(session):
            yield from files.write_file(session, "[home]warm.txt", b"x" * 16)
            yield from files.read_file(session, "[home]warm.txt")

        run_on(domain, workstation.host, warm(workstation.session()),
               name="warm")
        ws_view = json.loads(read_name(domain, workstation,
                                       "[obs]/hosts/ws1/namecache"))
        assert ws_view["enabled"] is True
        assert ws_view["stats"]["hits"] >= 1
        assert any(entry["prefix"] == "home"
                   for entry in ws_view["prefixes"])
        # vax1 runs no client cache: the name still resolves, uniformly.
        fs_view = json.loads(read_name(domain, workstation,
                                       "[obs]/hosts/vax1/namecache"))
        assert fs_view == {"enabled": False, "host": "vax1"}

    def test_processes_lists_the_server_processes(self):
        domain, workstation, __, __ = obs_system()
        table = json.loads(read_name(domain, workstation,
                                     "[obs]/hosts/vax1/processes"))
        names = {entry["name"] for entry in table}
        assert {"fileserver", "statserver"} <= names
        # Server processes idle in receive; every record carries its state.
        by_name = {entry["name"]: entry for entry in table}
        assert by_name["fileserver"]["state"] == "recv_blocked"
        assert all(entry["state"] and entry["queued"] >= 0
                   for entry in table)

    def test_profile_serves_host_scoped_attribution(self):
        domain, workstation, __, __ = obs_system()

        def warm(session):
            yield from files.write_file(session, "[home]p.txt", b"x" * 32)
            yield from files.read_file(session, "[home]p.txt")

        run_on(domain, workstation.host, warm(workstation.session()),
               name="warm")
        view = json.loads(read_name(domain, workstation,
                                    "[obs]/hosts/vax1/profile"))
        assert view["enabled"] is True
        assert view["host"] == "vax1"
        # Frames are scoped to vax1 and their totals are recomputed to
        # match the filtered set.
        assert view["frames"]
        assert all(frame["stack"][0] == "host:vax1"
                   for frame in view["frames"])
        assert view["total_seconds"] == pytest.approx(
            sum(frame["seconds"] for frame in view["frames"]))
        # The file-server work shows up as proc frames under the host.
        stacks = {tuple(frame["stack"]) for frame in view["frames"]}
        assert any("proc:fileserver" in stack for stack in stacks)

    def test_profile_without_profiler_is_an_explicit_stub(self):
        # enable_obs_namespace turns the profiler on; on a profiler-less
        # domain the leaf still serves an explicit disabled marker.
        from repro.obs.introspect import host_profile_payload

        domain = Domain()
        host = domain.create_host("w")
        assert json.loads(host_profile_payload(host)) == {
            "enabled": False, "host": "w"}

    def test_recent_spans_belong_to_the_owning_host(self):
        domain, workstation, __, __ = obs_system()

        def warm(session):
            yield from files.write_file(session, "[home]s.txt", b"x")

        run_on(domain, workstation.host, warm(workstation.session()),
               name="warm")
        payload = read_name(domain, workstation,
                            "[obs]/hosts/vax1/spans/recent")
        records = [json.loads(line) for line in
                   payload.decode().splitlines() if line]
        assert records
        actors = {record["actor"] for record in records}
        assert actors
        assert all(actor.startswith("vax1/") for actor in actors)


class TestTimeseriesLeaves:
    def test_disabled_collector_serves_an_explicit_stub(self):
        domain, workstation, __, __ = obs_system()
        payload = read_name(
            domain, workstation, "[obs]/hosts/vax1/timeseries/retransmits")
        (meta,) = [json.loads(line) for line in
                   payload.decode().splitlines() if line]
        assert meta == {"kind": "meta", "host": "vax1",
                        "metric": "retransmits", "enabled": False}

    def test_enabled_collector_serves_samples_through_the_chain(self):
        domain, workstation, __, __ = obs_system()
        domain.enable_telemetry(interval=0.05)

        def workload(session):
            from repro.kernel.ipc import Delay

            yield from files.write_file(session, "[home]t.txt", b"x" * 16)
            for __ in range(5):
                yield from files.read_file(session, "[home]t.txt")
                yield Delay(0.05)

        run_on(domain, workstation.host, workload(workstation.session()),
               name="workload")
        # ws1 initiated the transactions ("resolutions" counts sends, so
        # it moves on the client host); vax1's series exists but is quiet.
        payload = read_name(
            domain, workstation, "[obs]/hosts/ws1/timeseries/resolutions")
        records = [json.loads(line) for line in
                   payload.decode().splitlines() if line]
        meta, samples = records[0], records[1:]
        assert meta["kind"] == "meta"
        assert meta["enabled"] is True
        assert meta["interval"] == 0.05
        assert samples, "no samples after a multi-tick workload"
        assert all(record["kind"] == "sample" for record in samples)
        assert sum(record["value"] for record in samples) >= 1
        # Sample timestamps follow the collector's tick grid, in order.
        times = [record["t"] for record in samples]
        assert times == sorted(times)
        remote = read_name(
            domain, workstation, "[obs]/hosts/vax1/timeseries/resolutions")
        assert json.loads(remote.splitlines()[0])["enabled"] is True


class TestFleet:
    def test_fleet_metrics_is_export_shaped_jsonl(self):
        domain, workstation, __, __ = obs_system()
        payload = read_name(domain, workstation, "[obs]/fleet/metrics")
        records = [json.loads(line) for line in
                   payload.decode().splitlines() if line]
        kinds = {record["kind"] for record in records}
        assert kinds <= {"counter", "gauge", "histogram"}
        names = {record["name"] for record in records}
        assert "ipc.sends" in names
        assert "host.uptime_seconds" in names  # refreshed at capture time

    def test_fleet_alerts_without_telemetry_is_an_explicit_stub(self):
        domain, workstation, __, __ = obs_system()
        payload = read_name(domain, workstation, "[obs]/fleet/alerts")
        (meta,) = [json.loads(line) for line in
                   payload.decode().splitlines() if line]
        assert meta["kind"] == "meta"
        assert meta["enabled"] is False

    def test_fleet_alerts_serves_the_watchdog_log(self):
        domain, workstation, __, __ = obs_system()
        domain.enable_telemetry(interval=0.05)

        def warm(session):
            from repro.kernel.ipc import Delay

            yield from files.write_file(session, "[home]a.txt", b"x" * 16)
            yield Delay(0.2)

        run_on(domain, workstation.host, warm(workstation.session()),
               name="warm")
        payload = read_name(domain, workstation, "[obs]/fleet/alerts")
        records = [json.loads(line) for line in
                   payload.decode().splitlines() if line]
        meta = records[0]
        assert meta["kind"] == "meta"
        assert meta["enabled"] is True
        assert "retransmit-rate" in meta["rules"]
        # A quiet wire fires nothing; the log is served, just empty.
        assert meta["fired"] == 0
        assert all(record["kind"] == "alert" for record in records[1:])

    def test_fleet_hosts_and_services_cover_the_domain(self):
        domain, workstation, __, __ = obs_system()
        hosts = json.loads(read_name(domain, workstation, "[obs]/fleet/hosts"))
        assert [record["host"] for record in hosts] == ["ws1", "vax1"]
        services = json.loads(read_name(domain, workstation,
                                        "[obs]/fleet/services"))
        assert {"host": services[0]["host"]}  # non-empty, host-tagged
        assert any(entry["host"] == "vax1"
                   and entry["service_name"] == "storage"
                   for entry in services)
        assert any(entry["service_name"] == "obs" for entry in services)


class TestWiring:
    def test_enable_is_idempotent(self):
        domain, workstation, __, namespace = obs_system()
        assert enable_obs_namespace(domain) is namespace
        assert domain.obs_namespace is namespace

    def test_late_created_hosts_are_covered(self):
        domain, workstation, __, namespace = obs_system()
        late = domain.create_host("late1")
        assert namespace.stat_pid(late) is not None
        snap = json.loads(read_name(domain, workstation,
                                    "[obs]/hosts/late1/metrics"))
        assert snap["host"] == "late1"

    def test_obs_prefix_without_deployment_faults_no_server(self):
        fixture = standard_system()  # standard prefixes, no enable call

        def client(session):
            try:
                yield from session.open("[obs]/fleet/metrics", "r")
            except NameError_ as err:
                return err.code
            return None

        code = fixture.run_client(client(fixture.session()))
        assert code is ReplyCode.NO_SERVER

    def test_setup_workstation_flag_deploys_the_namespace(self):
        domain = Domain(obs=Observability())
        workstation = setup_workstation(domain, "mann", name="ws1",
                                        obs_namespace=True)
        assert domain.obs_namespace is not None
        assert domain.obs_namespace.root_host is workstation.host
        assert domain.obs_namespace.stat_pid("ws1") is not None


class TestReadOnly:
    def test_write_mode_is_refused(self):
        domain, workstation, __, __ = obs_system()

        def client(session):
            try:
                yield from session.open("[obs]/hosts/vax1/metrics", "w")
            except NameError_ as err:
                return err.code
            return None

        code = run_on(domain, workstation.host,
                      client(workstation.session()))
        assert code is ReplyCode.MODE_ERROR

    def test_opening_a_context_as_a_file_is_refused(self):
        domain, workstation, __, __ = obs_system()

        def client(session):
            try:
                yield from session.open("[obs]/fleet", "r")
            except NameError_ as err:
                return err.code
            return None

        code = run_on(domain, workstation.host,
                      client(workstation.session()))
        assert code is ReplyCode.MODE_ERROR
