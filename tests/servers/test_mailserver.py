"""Tests for the mail server: the paper's extensibility showcase (Sec. 2.2).

Mail names use their own syntax (``user@host.ARPA``) and their own
inter-server forwarding (by route table, with the name index left alone) --
and none of that requires any change to the protocol, the prefix server, or
the client runtime.
"""

import pytest

from repro.core.context import ContextPair
from repro.core.descriptors import MailboxDescription
from repro.core.resolver import NameError_
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay
from repro.kernel.messages import ReplyCode, RequestCode
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import MailServer, VFileServer, start_server
from tests.helpers import run_on, standard_system


def mail_system():
    """Workstation + file server + two mail servers with routes."""
    system = standard_system()
    domain = system.domain
    host_a = domain.create_host("su-score")
    host_b = domain.create_host("mit-ai")
    stanford = MailServer(hostname="su-score.ARPA")
    mit = MailServer(hostname="mit-ai.ARPA")
    handle_a = start_server(host_a, stanford, name="mail-stanford")
    handle_b = start_server(host_b, mit, name="mail-mit")
    stanford.add_route("mit-ai.ARPA", ContextPair(handle_b.pid, 0))
    mit.add_route("su-score.ARPA", ContextPair(handle_a.pid, 0))
    stanford.add_mailbox("cheriton")
    stanford.add_mailbox("mann")
    mit.add_mailbox("minsky")
    return system, stanford, mit, handle_a, handle_b


class TestLocalDelivery:
    def test_deliver_and_check(self):
        system, stanford, mit, handle_a, __ = mail_system()

        def client(session):
            yield Delay(0.01)
            reply = yield from session.csname_request(
                RequestCode.MAIL_DELIVER, "[mail]cheriton@su-score.ARPA",
                body=b"lunch?", **{"from": "mann"})
            assert reply.ok, reply
            check = yield from session.csname_request(
                RequestCode.MAIL_CHECK, "[mail]cheriton@su-score.ARPA")
            return reply, check

        deliver, check = system.run_client(client(system.session()))
        assert deliver["delivered_to"] == "cheriton"
        assert check["messages"] == 1 and check["unread"] == 1
        assert stanford.mailboxes["cheriton"].messages[0].body == b"lunch?"

    def test_bare_user_delivers_locally(self):
        system, stanford, *__ = mail_system()

        def client(session):
            yield Delay(0.01)
            reply = yield from session.csname_request(
                RequestCode.MAIL_DELIVER, "[mail]mann", body=b"note")
            return reply

        reply = system.run_client(client(system.session()))
        assert reply["host"] == "su-score.arpa"
        assert len(stanford.mailboxes["mann"].messages) == 1

    def test_delivery_creates_missing_mailbox(self):
        system, stanford, *__ = mail_system()

        def client(session):
            yield Delay(0.01)
            reply = yield from session.csname_request(
                RequestCode.MAIL_DELIVER, "[mail]newuser@su-score.ARPA",
                body=b"welcome")
            return reply.ok

        assert system.run_client(client(system.session()))
        assert "newuser" in stanford.mailboxes

    def test_check_unknown_mailbox_not_found(self):
        system, *__ = mail_system()

        def client(session):
            yield Delay(0.01)
            reply = yield from session.csname_request(
                RequestCode.MAIL_CHECK, "[mail]nobody@su-score.ARPA")
            return reply.reply_code

        assert system.run_client(
            client(system.session())) is ReplyCode.NOT_FOUND

    def test_malformed_address_bad_name(self):
        system, *__ = mail_system()

        def client(session):
            yield Delay(0.01)
            reply = yield from session.csname_request(
                RequestCode.MAIL_CHECK, "[mail]@nohost")
            return reply.reply_code

        assert system.run_client(client(system.session())) is ReplyCode.BAD_NAME


class TestInterHostForwarding:
    def test_mail_forwarded_to_the_right_host(self):
        system, stanford, mit, *__ = mail_system()

        def client(session):
            yield Delay(0.01)
            reply = yield from session.csname_request(
                RequestCode.MAIL_DELIVER, "[mail]minsky@mit-ai.ARPA",
                body=b"re: frames")
            return reply

        reply = system.run_client(client(system.session()))
        assert reply["host"] == "mit-ai.arpa"
        assert len(mit.mailboxes["minsky"].messages) == 1
        assert stanford.mailboxes.get("minsky") is None
        assert system.domain.metrics.count("ipc.forwards") > 0

    def test_unrouteable_host_not_found(self):
        system, *__ = mail_system()

        def client(session):
            yield Delay(0.01)
            reply = yield from session.csname_request(
                RequestCode.MAIL_DELIVER, "[mail]who@parc-maxc.ARPA",
                body=b"x")
            return reply.reply_code

        assert system.run_client(
            client(system.session())) is ReplyCode.NOT_FOUND

    def test_query_works_across_the_route(self):
        """The *standard* QUERY_NAME op rides the mail syntax untouched."""
        system, stanford, mit, *__ = mail_system()

        def client(session):
            yield Delay(0.01)
            return (yield from session.query("[mail]minsky@mit-ai.ARPA"))

        record = system.run_client(client(system.session()))
        assert isinstance(record, MailboxDescription)
        assert record.name == "minsky@mit-ai.arpa"


class TestMailboxDirectory:
    def test_list_mailboxes(self):
        system, stanford, *__ = mail_system()

        def client(session):
            yield Delay(0.01)
            return (yield from session.list_directory("[mail]"))

        records = system.run_client(client(system.session()))
        names = [r.name for r in records]
        assert names == ["cheriton@su-score.arpa", "mann@su-score.arpa"]
        assert all(isinstance(r, MailboxDescription) for r in records)

    def test_check_marks_read(self):
        system, stanford, *__ = mail_system()

        def client(session):
            yield Delay(0.01)
            yield from session.csname_request(
                RequestCode.MAIL_DELIVER, "[mail]mann", body=b"1")
            first = yield from session.csname_request(
                RequestCode.MAIL_CHECK, "[mail]mann")
            second = yield from session.csname_request(
                RequestCode.MAIL_CHECK, "[mail]mann")
            return first["unread"], second["unread"]

        assert system.run_client(client(system.session())) == (1, 0)
