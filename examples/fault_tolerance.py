"""Failure behaviour of distributed naming (paper Sec. 2.2, 4.2).

Demonstrates three of the design's reliability properties:

1. names live and die with their objects -- crashing one file server leaves
   every other server's names working;
2. a crashed server's clients fail in bounded time (the kernel's probe
   protocol), with a proper reply code rather than a hang;
3. *generic* prefix bindings re-resolve with GetPid at each use, so a
   service restarted "with a different process identifier" (Sec. 4.2) is
   picked up with no client or prefix-table changes.

Run:  python examples/fault_tolerance.py
"""

from repro.core.context import ContextPair, WellKnownContext
from repro.core.resolver import NameError_
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, Now
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server


def main() -> None:
    domain = Domain(seed=5)
    workstation = setup_workstation(domain, "mann")
    primary = start_server(domain.create_host("vax-primary"),
                           VFileServer(user="mann"))
    backup = start_server(domain.create_host("vax-backup"),
                          VFileServer(user="mann"))
    standard_prefixes(workstation, primary)
    workstation.prefix_server.define_prefix(
        "backup", ContextPair(backup.pid, int(WellKnownContext.HOME)))
    # A generic binding for storage: resolved by GetPid on every use.
    # (standard_prefixes already defines [storage] this way.)

    # Crash the primary at t=200ms; bring the machine back at 400ms with a
    # fresh file server process.
    domain.engine.schedule_at(0.200, primary.host.crash)

    def bring_back() -> None:
        primary.host.restart()
        start_server(primary.host, VFileServer(user="mann"))

    domain.engine.schedule_at(0.400, bring_back)

    def program(session):
        yield from files.write_file(session, "[home]precious.txt", b"v1")
        yield from files.write_file(session, "[backup]precious.txt", b"v1")
        print("t=%.0fms  wrote to primary and backup" % ((yield Now()) * 1e3))

        yield Delay(0.250)  # primary is now down
        try:
            yield from files.read_file(session, "[home]precious.txt")
        except NameError_ as err:
            t = yield Now()
            print(f"t={t * 1e3:.0f}ms  primary down: open failed with "
                  f"{err.code.name} (bounded by the probe protocol)")
        survivor = yield from files.read_file(session,
                                              "[backup]precious.txt")
        print(f"          backup unaffected: {survivor.decode()!r}")

        yield Delay(0.300)  # primary machine is back with a NEW server pid
        # The fixed [home] binding points at the dead pid...
        try:
            yield from files.read_file(session, "[home]precious.txt")
        except NameError_ as err:
            t = yield Now()
            print(f"t={t * 1e3:.0f}ms  stale fixed prefix: {err.code.name} "
                  "(the old pid is gone)")
        # ...but the GENERIC [storage] binding re-resolves via GetPid:
        yield from files.write_file(session, "[storage]users/mann/again.txt",
                                    b"v2")
        again = yield from files.read_file(session,
                                           "[storage]users/mann/again.txt")
        t = yield Now()
        print(f"t={t * 1e3:.0f}ms  generic [storage] prefix found the NEW "
              f"server: {again.decode()!r}")
        print("          (note: the restarted server has empty storage -- "
              "the name space died with its server, exactly as the model "
              "says it should)")

    workstation.run_program(program, name="survivor")
    domain.run()
    domain.check_healthy()


if __name__ == "__main__":
    main()
