"""The same servers over real UDP sockets.

Everything else in this repository runs on the discrete-event simulator;
this example runs the *identical* server code -- file server, context prefix
server -- over loopback datagrams with the binary wire encoding
(:mod:`repro.net.wire`).  It is the proof that the name-handling protocol is
a real message protocol, not a simulation artifact.

Run:  python examples/asyncio_demo.py
"""

import asyncio
import time

from repro.core.context import ContextPair, WellKnownContext
from repro.core.prefix_server import ContextPrefixServer
from repro.net.asyncio_transport import AsyncDomain
from repro.net.latency import STANDARD_3MBIT
from repro.runtime import files
from repro.runtime.session import Session
from repro.servers.fileserver.server import VFileServer


async def main() -> None:
    domain = AsyncDomain()
    ws = await domain.create_host("workstation")
    fs_host = await domain.create_host("fileserver-host")
    print(f"workstation UDP endpoint : {ws.address}")
    print(f"file server UDP endpoint : {fs_host.address}")

    fileserver = VFileServer(user="mann")
    fs_pid = fs_host.spawn(fileserver.body(), "fileserver")
    prefix = ContextPrefixServer(user="mann")
    prefix_pid = ws.spawn(prefix.body(), "prefix-server")
    await asyncio.sleep(0.05)
    prefix.define_prefix("home",
                         ContextPair(fs_pid, int(WellKnownContext.HOME)))

    done = asyncio.Event()

    def program():
        session = Session(ContextPair(fs_pid, int(WellKnownContext.HOME)),
                          prefix_pid, STANDARD_3MBIT)
        yield from files.write_file(session, "[home]socket.txt",
                                    b"carried by real datagrams")
        content = yield from files.read_file(session, "socket.txt")
        print(f"read over UDP: {content.decode()!r}")
        records = yield from session.list_directory(".")
        print(f"directory over UDP: {[r.name for r in records]}")
        done.set()

    started = time.perf_counter()
    ws.spawn(program(), "program")
    await asyncio.wait_for(done.wait(), timeout=10)
    elapsed = (time.perf_counter() - started) * 1e3
    domain.check_healthy()
    await domain.shutdown()
    print(f"wall-clock time over loopback: {elapsed:.1f} ms")


if __name__ == "__main__":
    asyncio.run(main())
