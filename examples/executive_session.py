"""An executive session (paper Sec. 7: "our multiple window and executive
system").

Runs a scripted user shell session against a full installation -- file
server, printer, team server, mail -- entirely through the uniform naming
API.  Every command line below is a thin veneer over the same protocol
operations the rest of this repository benchmarks.

Run:  python examples/executive_session.py
"""

from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay
from repro.runtime.executive import Executive
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import (
    MailServer,
    PrinterServer,
    TeamServer,
    VFileServer,
    start_server,
)

SESSION_SCRIPT = """
# getting settled
mkdir papers
cd papers
pwd
write naming.mss Uniform access to distributed name interpretation...
ls

# share a copy and define a shorthand for the directory
cp naming.mss [public]naming.mss
cd [home]
define drafts papers
cat [drafts]naming.mss

# put it on the printer and start an editor
print naming-draft [drafts]naming.mss
run editor 120

# tell a colleague
mail cheriton@su-score.ARPA the draft is in [public]naming.mss

# what do my names look like now?
ls [drafts]
prefixes
"""


def main() -> None:
    domain = Domain(seed=6)
    workstation = setup_workstation(domain, "mann")
    fileserver = start_server(domain.create_host("vax1"),
                              VFileServer(user="mann"))
    standard_prefixes(workstation, fileserver)
    start_server(domain.create_host("printhost"), PrinterServer())
    start_server(domain.create_host("teamhost"), TeamServer())
    mail = MailServer(hostname="su-score.ARPA")
    mail.add_mailbox("cheriton")
    start_server(domain.create_host("mailhost"), mail)

    executive = Executive(workstation.session(), user="mann")

    def shell(session):
        yield Delay(0.05)
        yield from executive.run_script(SESSION_SCRIPT)

    workstation.run_program(lambda session: shell(session), name="executive")
    domain.run()
    domain.check_healthy()

    for line in SESSION_SCRIPT.strip().splitlines():
        line = line.strip()
        if line.startswith("#"):
            print(f"\n{line}")
    print("\n--- session output ---")
    for line in executive.output:
        print(line)
    print(f"\n(simulated session time: {domain.now * 1e3:.1f} ms; "
          f"mail for cheriton: {len(mail.mailboxes['cheriton'].messages)})")


if __name__ == "__main__":
    main()
