"""Grafting a pre-existing name space: ARPA mail (paper Sec. 2.2).

Mail addresses like ``cheriton@su-score.ARPA`` were "imposed by standards
established outside of the system."  Because V interpretation belongs to the
server that owns the objects, the mail server parses its own syntax -- no
slashes, no left-to-right components -- and routes between mail domains with
ordinary protocol forwarding.  The prefix server, runtime, and message
formats needed zero changes.

Run:  python examples/mail_naming.py
"""

from repro.core.context import ContextPair
from repro.kernel.domain import Domain
from repro.kernel.messages import RequestCode
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import MailServer, VFileServer, start_server


def main() -> None:
    domain = Domain(seed=3)
    workstation = setup_workstation(domain, "mann")
    fileserver = start_server(domain.create_host("vax1"),
                              VFileServer(user="mann"))
    standard_prefixes(workstation, fileserver)

    # Two mail domains, as on the early ARPA internet.
    stanford = MailServer(hostname="su-score.ARPA")
    mit = MailServer(hostname="mit-ai.ARPA")
    stanford_handle = start_server(domain.create_host("su-score"), stanford)
    mit_handle = start_server(domain.create_host("mit-ai"), mit)
    stanford.add_route("mit-ai.ARPA", ContextPair(mit_handle.pid, 0))
    mit.add_route("su-score.ARPA", ContextPair(stanford_handle.pid, 0))
    stanford.add_mailbox("cheriton")
    stanford.add_mailbox("mann")
    mit.add_mailbox("minsky")

    def program(session):
        # Local delivery: [mail] resolves the mail service by GetPid, the
        # server parses the user@host itself.
        reply = yield from session.csname_request(
            RequestCode.MAIL_DELIVER, "[mail]cheriton@su-score.ARPA",
            body=b"The naming paper is accepted!", **{"from": "mann"})
        print(f"delivered to {reply['delivered_to']!r} at {reply['host']!r}")

        # Cross-domain: the Stanford server *forwards* to MIT's, using the
        # same convention file servers use for directory links.
        reply = yield from session.csname_request(
            RequestCode.MAIL_DELIVER, "[mail]minsky@mit-ai.ARPA",
            body=b"Society of Mind draft?", **{"from": "mann"})
        print(f"delivered to {reply['delivered_to']!r} at {reply['host']!r}")

        # The STANDARD query operation works on mailboxes unchanged:
        record = yield from session.query("[mail]minsky@mit-ai.ARPA")
        print(f"query across domains: {record.name} has "
              f"{record.message_count} message(s), {record.unread} unread")

        # And mailboxes are a context directory like any other:
        records = yield from session.list_directory("[mail]")
        print("local mailboxes:", [r.name for r in records])

    workstation.run_program(program, name="mailer")
    domain.run()
    domain.check_healthy()
    forwards = domain.metrics.count("ipc.forwards")
    print(f"(protocol forwards used by mail routing + prefixes: {forwards})")


if __name__ == "__main__":
    main()
