"""Quickstart: a one-user V installation in ~60 lines.

Builds the paper's Sec. 6 configuration -- a diskless workstation with a
context prefix server, plus a network file server -- then runs a small
program against the uniform naming API: write a file through ``[home]``,
read it back, query its typed description, and list the directory.

Run:  python examples/quickstart.py
"""

from repro.core.names import as_text
from repro.kernel.domain import Domain
from repro.kernel.ipc import Now
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server


def main() -> None:
    # 1. A V domain: one simulated installation (hosts + 3 Mbit Ethernet).
    domain = Domain(seed=42)

    # 2. A workstation for user "mann" (runs her context prefix server) and
    #    a file server machine.
    workstation = setup_workstation(domain, "mann")
    fileserver = start_server(domain.create_host("vax1"),
                              VFileServer(user="mann"))

    # 3. The standard prefix table: [home], [bin], [tmp], [public], ...
    standard_prefixes(workstation, fileserver)

    # 4. A user program, written as a generator over kernel effects.
    def program(session):
        t0 = yield Now()
        yield from files.write_file(session, "[home]hello.txt",
                                    b"Hello, V-System!")
        content = yield from files.read_file(session, "hello.txt")
        print(f"read back: {content.decode()!r}")

        record = yield from session.query("hello.txt")
        print(f"description: {type(record).__name__} name={record.name!r} "
              f"size={record.size_bytes} owner={record.owner!r}")

        records = yield from session.list_directory(".")
        print(f"[home] directory: {[r.name for r in records]}")

        result = yield from session.current_context_name()
        print(f"current context (inverse-mapped): {result.text!r} "
              f"[{result.status.value}]")
        t1 = yield Now()
        print(f"simulated time used: {(t1 - t0) * 1e3:.2f} ms")

    workstation.run_program(program, name="quickstart")

    # 5. Run the simulation to completion.
    domain.run()
    domain.check_healthy()
    print(f"done at simulated t={domain.now * 1e3:.2f} ms "
          f"({domain.engine.events_processed} events)")


if __name__ == "__main__":
    main()
