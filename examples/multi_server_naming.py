"""The naming forest (paper Figure 4): several servers, one name space view.

Three file servers each own a tree; cross-server links (the curved arrows of
Figure 4) and the per-user prefix table stitch them together.  A single Open
can walk from the workstation through the prefix server into server A,
forward to server B, and forward again to server C -- and the client never
knows.  The example prints the forwarding trace to show it happening.

Run:  python examples/multi_server_naming.py
"""

from repro.core.context import ContextPair, WellKnownContext
from repro.kernel.domain import Domain
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from repro.sim.trace import Tracer


def main() -> None:
    tracer = Tracer()
    domain = Domain(seed=7, tracer=tracer)
    workstation = setup_workstation(domain, "mann")

    # Three storage servers, as in a departmental installation.
    servers = {}
    for name in ("alpha", "beta", "gamma"):
        handle = start_server(domain.create_host(f"vax-{name}"),
                              VFileServer(user="mann"))
        servers[name] = handle
    standard_prefixes(workstation, servers["alpha"])

    # Cross-server links: alpha:/users/mann/projects -> beta's home,
    # beta:/users/mann/archive -> gamma's home.
    servers["alpha"].server.store.link_remote(
        servers["alpha"].server.home, b"projects",
        ContextPair(servers["beta"].pid, int(WellKnownContext.HOME)))
    servers["beta"].server.store.link_remote(
        servers["beta"].server.home, b"archive",
        ContextPair(servers["gamma"].pid, int(WellKnownContext.HOME)))

    def program(session):
        # One name, three servers: [home] -> alpha, projects -> beta,
        # archive -> gamma, then the file.
        deep_name = "[home]projects/archive/ancient.txt"
        yield from files.write_file(session, deep_name, b"carved in stone")
        content = yield from files.read_file(session, deep_name)
        print(f"read through 3 servers: {content.decode()!r}")

        # The file physically lives on gamma:
        node = servers["gamma"].server.store.resolve_path(
            "users/mann/ancient.txt")
        print(f"physically on vax-gamma: users/mann/{node.name.decode()} "
              f"({node.size} bytes)")

        # Listing shows the links as typed records, like any other object.
        records = yield from session.list_directory("[home]")
        for record in records:
            print(f"  [home] entry: {type(record).__name__:<18} "
                  f"{record.name}")

    workstation.run_program(program, name="forest-walker")
    domain.run()
    domain.check_healthy()

    print("\nforwarding trace for the deep open:")
    for event in tracer.select(category="ipc",
                               predicate=lambda e: "Forward" in e.detail)[:6]:
        print(f"  {event.format()}")


if __name__ == "__main__":
    main()
