"""The paper's Sec. 2.2 argument, run as an experiment.

Builds the same name population twice -- once on a V file server
(distributed interpretation) and once in a central name server + UID object
servers (the Sec. 2.1 model) -- then measures the three dimensions the paper
argues on: efficiency (per-open latency), consistency (crash-injected
deletes), and reliability (availability when a server dies).

This is a compact, narrated version of benchmarks E8a/E8b/E8c.

Run:  python examples/centralized_vs_distributed.py
"""

from repro.baseline import (
    BaselineClient,
    CentralNameServer,
    UidObjectServer,
    audit,
)
from repro.baseline.client import ClientCrashed, CrashPoint
from repro.core.context import ContextPair, WellKnownContext
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, Now
from repro.runtime import files
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import VFileServer, start_server
from repro.vio.client import release_instance
from repro.workloads import NameTreeSpec, populate_baseline, populate_fileserver
from repro.workloads.traces import zipf_trace

SPEC = NameTreeSpec(depth=2, fanout=2, files_per_directory=3)
TRACE = 60


def run_client(domain, host, gen):
    box = {}

    def wrapper():
        box["r"] = yield from gen

    host.spawn(wrapper(), "client")
    domain.run()
    domain.check_healthy()
    return box["r"]


def efficiency() -> None:
    print("== Efficiency: mean open latency over a Zipf trace ==")
    # Distributed.
    domain = Domain(seed=1)
    ws = setup_workstation(domain, "mann")
    fs = start_server(domain.create_host("vax"), VFileServer(user="mann"))
    standard_prefixes(ws, fs)
    paths = populate_fileserver(fs.server, SPEC)
    session = ws.session(ContextPair(fs.pid, int(WellKnownContext.DEFAULT)))

    def v_client():
        yield Delay(0.05)
        trace = zipf_trace(paths, TRACE, seed=1)
        t0 = yield Now()
        for __, name in trace:
            stream = yield from session.open(name, "r")
            yield from release_instance(stream.server, stream.instance)
        t1 = yield Now()
        return (t1 - t0) / TRACE * 1e3

    v_ms = run_client(domain, ws.host, v_client())

    # Centralized.
    domain = Domain(seed=1)
    client_host = domain.create_host("ws")
    ns = CentralNameServer()
    ns_handle = start_server(domain.create_host("ns"), ns)
    obj = UidObjectServer(allocator_id=1)
    obj_handle = start_server(domain.create_host("obj"), obj)

    def c_client():
        yield Delay(0.05)
        obj.pid = obj_handle.pid
        paths = populate_baseline(ns, [obj], SPEC, seed=1)
        lib = BaselineClient(ns_handle.pid, domain.latency)
        trace = zipf_trace(paths, TRACE, seed=1)
        t0 = yield Now()
        for __, name in trace:
            stream = yield from lib.open(name)
            yield from release_instance(stream.server, stream.instance)
        t1 = yield Now()
        return (t1 - t0) / TRACE * 1e3

    c_ms = run_client(domain, client_host, c_client())
    print(f"  V distributed interpretation : {v_ms:6.2f} ms/open")
    print(f"  centralized name server      : {c_ms:6.2f} ms/open "
          f"(+{(c_ms / v_ms - 1) * 100:.0f}%: one more server per use)\n")


def consistency() -> None:
    print("== Consistency: 40 create/delete pairs, 25% client crash rate ==")
    domain = Domain(seed=2)
    ws = domain.create_host("ws")
    ns = CentralNameServer()
    ns_handle = start_server(domain.create_host("ns"), ns)
    obj = UidObjectServer(allocator_id=1)
    obj_handle = start_server(domain.create_host("obj"), obj)

    def c_client():
        yield Delay(0.05)
        from repro.sim.rng import DeterministicRng

        rng = DeterministicRng(2)
        for index in range(40):
            lib = BaselineClient(ns_handle.pid, domain.latency)
            try:
                yield from lib.create(f"f{index}", obj_handle.pid)
                crash = rng.uniform("c", 0, 1) < 0.25
                yield from lib.delete(
                    f"f{index}", crash_at=(CrashPoint.AFTER_OBJECT_DELETE
                                           if crash else CrashPoint.NONE))
            except ClientCrashed:
                continue

    run_client(domain, ws, c_client())
    report = audit(ns, [obj])
    print(f"  centralized : {len(report.dangling_names)} dangling names, "
          f"{len(report.orphan_objects)} orphan objects")
    print("  distributed : 0 dangling, 0 orphans -- deletion is one "
          "server-internal operation; there is no window\n")


def reliability() -> None:
    print("== Reliability: which names survive one machine failure? ==")
    print("  distributed : names on the dead server are lost; every other")
    print("                server's names keep working (1/K of the space)")
    print("  centralized : if an OBJECT server dies, 1/K is lost; if the")
    print("                NAME server dies, 100% of names are unreachable")
    print("                while every object still exists (E8c measures")
    print("                exactly 0% reachable).\n")


def main() -> None:
    efficiency()
    consistency()
    reliability()
    print("Full parameter sweeps: pytest benchmarks/bench_e8*.py "
          "--benchmark-only")


if __name__ == "__main__":
    main()
