"""The paper's "single 'list directory' command" (Sec. 6).

"A single 'list directory' command lists the objects in any one of several
different contexts, including programs in execution, disk files, virtual
terminals, TCP connections, and context prefixes."

This example is that command: ONE loop over typed description records,
applied unchanged to six utterly different kinds of context.  The type tags
(Sec. 5.5) let it render each record sensibly without knowing in advance
what lives behind a prefix.

Run:  python examples/uniform_listing.py
"""

from repro.core.descriptors import (
    ContextDescription,
    FileDescription,
    MailboxDescription,
    ObjectDescription,
    PipeDescription,
    PrefixDescription,
    PrintJobDescription,
    ProcessDescription,
    TcpConnectionDescription,
    TerminalDescription,
)
from repro.kernel.domain import Domain
from repro.kernel.ipc import Delay, GetPid, Send
from repro.kernel.messages import Message, RequestCode
from repro.kernel.services import Scope, ServiceId
from repro.runtime import files
from repro.runtime.program import run_program
from repro.runtime.workstation import setup_workstation, standard_prefixes
from repro.servers import (
    InternetServer,
    MailServer,
    PrinterServer,
    TeamServer,
    TerminalServer,
    VFileServer,
    start_server,
)


def render(record: ObjectDescription) -> str:
    """One line per record, dispatching on the type tag."""
    if isinstance(record, FileDescription):
        return f"file      {record.name:<16} {record.size_bytes:>6} bytes  owner={record.owner}"
    if isinstance(record, ContextDescription):
        return f"context   {record.name:<16} {record.entry_count:>6} entries"
    if isinstance(record, ProcessDescription):
        return f"program   {record.name:<16} state={record.state} pid={record.pid_value:#010x}"
    if isinstance(record, TerminalDescription):
        return f"terminal  {record.name:<16} {record.rows}x{record.cols}"
    if isinstance(record, TcpConnectionDescription):
        return f"tcp       {record.name:<16} -> {record.remote_host}:{record.remote_port} ({record.state})"
    if isinstance(record, PrintJobDescription):
        return f"printjob  {record.name:<16} {record.pages} pages, {record.state}"
    if isinstance(record, MailboxDescription):
        return f"mailbox   {record.name:<24} {record.message_count} msgs ({record.unread} unread)"
    if isinstance(record, PrefixDescription):
        kind = "generic" if record.generic else "fixed"
        return f"prefix    [{record.name}]  ({kind})"
    if isinstance(record, PipeDescription):
        return f"pipe      {record.name:<16} {record.buffered_bytes} bytes buffered"
    return f"object    {record.name}"


def main() -> None:
    domain = Domain(seed=8)
    workstation = setup_workstation(domain, "mann")
    fileserver = start_server(domain.create_host("vax1"),
                              VFileServer(user="mann"))
    standard_prefixes(workstation, fileserver)
    start_server(domain.create_host("printhost"), PrinterServer())
    start_server(domain.create_host("teamhost"), TeamServer())
    start_server(domain.create_host("nethost"), InternetServer())
    start_server(workstation.host, TerminalServer("mann"))
    mail = MailServer(hostname="su-score.ARPA")
    mail.add_mailbox("mann")
    mail.add_mailbox("cheriton")
    start_server(domain.create_host("mailhost"), mail)

    def program(session):
        yield Delay(0.05)
        # Populate a little of everything.
        yield from files.write_file(session, "[home]paper.mss", b"x" * 900)
        yield from files.write_file(session, "[home]refs.bib", b"y" * 120)
        yield from session.mkdir("[home]figures")
        team = yield GetPid(int(ServiceId.TEAM), Scope.ANY)
        yield from run_program(team, "editor", duration=120.0)
        yield from run_program(team, "compiler", duration=30.0)
        spool = yield from session.open("[print]paper-draft", "w")
        yield from spool.write(b"z" * 3000)
        yield from spool.close()
        net = yield GetPid(int(ServiceId.INTERNET), Scope.ANY)
        yield Send(net, Message.request(RequestCode.TCP_CONNECT,
                                        host="mit-ai.ARPA", port=23))
        vt = yield GetPid(int(ServiceId.TERMINAL), Scope.LOCAL)
        yield Send(vt, Message.request(RequestCode.TERMINAL_CREATE))

        # THE single list-directory loop, over every kind of context.
        #   "" (the empty name at the prefix server) = the prefix table.
        contexts = ["[home]", "[team]", "[print]", "[tcp]", "[terminal]",
                    "[mail]"]
        for context in contexts:
            records = yield from session.list_directory(context)
            print(f"\n{context}  ({len(records)} objects)")
            for record in records:
                print(f"    {render(record)}")
        prefixes = yield from session.list_prefixes()
        print(f"\n[prefix table]  ({len(prefixes)} entries)")
        for record in prefixes:
            print(f"    {render(record)}")

    workstation.run_program(program, name="lister")
    domain.run()
    domain.check_healthy()


if __name__ == "__main__":
    main()
