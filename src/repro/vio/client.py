"""Client side of the V I/O protocol: block operations and byte streams.

All functions here are generators over kernel effects, composed with
``yield from`` inside a process body.  They speak to any server that
implements the instance operations -- file server, pipe server, terminal
server, context directories -- which is precisely the protocol's point:
"uniform connection of program input and output to a variety of data sources
and sinks."
"""

from __future__ import annotations

from typing import Any, Generator

from repro.kernel.ipc import Send
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.kernel.pids import Pid

Gen = Generator[Any, Any, Any]


class IoError(RuntimeError):
    """An I/O operation failed with the given reply code."""

    def __init__(self, operation: str, code: ReplyCode) -> None:
        super().__init__(f"{operation} failed: {code.name}")
        self.operation = operation
        self.code = code


def read_block(server: Pid, instance: int, block: int) -> Gen:
    """One READ_INSTANCE; returns (ReplyCode, bytes)."""
    reply = yield Send(server, Message.request(
        RequestCode.READ_INSTANCE, instance=instance, block=block))
    data = bytes(reply.segment) if reply.segment is not None else b""
    return reply.reply_code, data


def write_block(server: Pid, instance: int, block: int, data: bytes) -> Gen:
    """One WRITE_INSTANCE; returns (ReplyCode, bytes_written)."""
    reply = yield Send(server, Message.request(
        RequestCode.WRITE_INSTANCE, instance=instance, block=block,
        segment=bytes(data)))
    return reply.reply_code, int(reply.get("bytes", 0))


def query_instance(server: Pid, instance: int) -> Gen:
    """QUERY_INSTANCE; returns the reply Message."""
    reply = yield Send(server, Message.request(
        RequestCode.QUERY_INSTANCE, instance=instance))
    return reply


def release_instance(server: Pid, instance: int) -> Gen:
    """RELEASE_INSTANCE; returns the ReplyCode."""
    reply = yield Send(server, Message.request(
        RequestCode.RELEASE_INSTANCE, instance=instance))
    return reply.reply_code


def read_all_bytes(server: Pid, instance: int, max_blocks: int = 1 << 20) -> Gen:
    """Read an instance sequentially until END_OF_FILE; returns bytes."""
    chunks: list[bytes] = []
    for block in range(max_blocks):
        code, data = yield from read_block(server, instance, block)
        if code is ReplyCode.END_OF_FILE:
            break
        if code is not ReplyCode.OK:
            raise IoError("read", code)
        chunks.append(data)
        if not data:
            break
    return b"".join(chunks)


class FileStream:
    """A sequential byte-stream view over a block instance.

    Mirrors the run-time library's stream package: buffered, positioned
    reads and writes over block-granularity server operations.  All methods
    are generators (``yield from stream.read(n)``).
    """

    def __init__(self, server: Pid, instance: int, block_size: int) -> None:
        self.server = server
        self.instance = instance
        self.block_size = block_size
        self.position = 0
        self._eof = False
        # One-block write-back cache for partial writes.
        self._dirty_block: int | None = None
        self._dirty_data: bytearray | None = None

    @classmethod
    def open(cls, server: Pid, instance: int) -> Gen:
        """Build a stream, querying the server for the block size."""
        reply = yield from query_instance(server, instance)
        if not reply.ok:
            raise IoError("query", reply.reply_code)
        return cls(server, instance, int(reply["block_size"]))

    # ----------------------------------------------------------------- read

    def read(self, nbytes: int) -> Gen:
        """Read up to ``nbytes`` from the current position."""
        out = bytearray()
        while len(out) < nbytes and not self._eof:
            block, offset = divmod(self.position, self.block_size)
            code, data = yield from read_block(self.server, self.instance, block)
            if code is ReplyCode.END_OF_FILE:
                self._eof = True
                break
            if code is not ReplyCode.OK:
                raise IoError("read", code)
            chunk = data[offset : offset + (nbytes - len(out))]
            if not chunk:
                self._eof = True
                break
            out += chunk
            self.position += len(chunk)
            if offset + len(chunk) >= len(data) and len(data) < self.block_size:
                self._eof = True
        return bytes(out)

    def read_all(self) -> Gen:
        """Read from the current position to end of stream."""
        out = bytearray()
        while not self._eof:
            chunk = yield from self.read(self.block_size)
            if not chunk:
                break
            out += chunk
        return bytes(out)

    # ----------------------------------------------------------------- write

    def write(self, data: bytes) -> Gen:
        """Write ``data`` at the current position (read-modify-write on
        partial blocks)."""
        view = memoryview(bytes(data))
        while len(view):
            block, offset = divmod(self.position, self.block_size)
            take = min(self.block_size - offset, len(view))
            if offset == 0 and take == self.block_size:
                payload = bytes(view[:take])
            else:
                # Partial block: fetch, patch, rewrite.
                code, existing = yield from read_block(
                    self.server, self.instance, block)
                if code not in (ReplyCode.OK, ReplyCode.END_OF_FILE):
                    raise IoError("read-modify-write", code)
                buffer = bytearray(existing)
                if len(buffer) < offset + take:
                    buffer.extend(b"\x00" * (offset + take - len(buffer)))
                buffer[offset : offset + take] = bytes(view[:take])
                payload = bytes(buffer)
            code, written = yield from write_block(
                self.server, self.instance, block, payload)
            if code is not ReplyCode.OK:
                raise IoError("write", code)
            self.position += take
            view = view[take:]
        return len(data)

    # ------------------------------------------------------------------ misc

    def seek(self, position: int) -> None:
        if position < 0:
            raise ValueError("negative seek position")
        self.position = position
        self._eof = False

    def close(self) -> Gen:
        code = yield from release_instance(self.server, self.instance)
        if code is not ReplyCode.OK:
            raise IoError("close", code)
