"""The V I/O protocol (paper Sec. 3.2).

"Another V-System standard is the V I/O protocol, which provides uniform
connection of program input and output to a variety of data sources and
sinks, including disk files, terminals, pipes, network connections, graphics
pointing devices, and memory arrays."

The unit of access is an *instance*: a file-like object named by a short
numeric identifier (Sec. 4.3's temporary-object naming), created by a CSname
``OPEN_FILE``/``OPEN_DIRECTORY`` request or a server-specific operation, and
accessed with block-oriented ``READ_INSTANCE``/``WRITE_INSTANCE`` requests.

- :mod:`repro.vio.instance` -- server side: instance objects + id table.
- :mod:`repro.vio.client` -- client side: block operations and a sequential
  byte-stream wrapper.
"""

from repro.vio.instance import Instance, InstanceTable, MemoryInstance
from repro.vio.client import FileStream, read_all_bytes

__all__ = [
    "Instance",
    "InstanceTable",
    "MemoryInstance",
    "FileStream",
    "read_all_bytes",
]
