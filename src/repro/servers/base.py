"""Server wiring helpers.

A server object (a :class:`~repro.core.csnh.CSNHServer`) is pure protocol
logic; :func:`start_server` turns it into a running kernel process on a host
and hands back a :class:`ServerHandle` tying the two together.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.csnh import CSNHServer
from repro.kernel.host import Host
from repro.kernel.pids import Pid
from repro.kernel.process import Process


@dataclass
class ServerHandle:
    """A running server: the protocol object plus its kernel process."""

    server: CSNHServer
    process: Process
    host: Host

    @property
    def pid(self) -> Pid:
        return self.process.pid


def start_server(host: Host, server: CSNHServer,
                 name: str | None = None) -> ServerHandle:
    """Spawn ``server`` as a process on ``host``.

    The server's ``pid`` attribute is populated on its first step (it asks
    the kernel with ``MyPid``); the handle's ``pid`` is valid immediately.
    """
    process = host.spawn(server.body(), name=name or server.server_name)
    handle = ServerHandle(server=server, process=process, host=host)
    if host.domain.obs is not None:
        host.domain.obs.register_actor(handle.pid, server.server_name)
    return handle
