"""The team server / program manager (paper Sec. 6).

"A single 'list directory' command lists the objects in any one of several
different contexts, including *programs in execution*" -- so running
programs are named objects in a context, described by typed records, and the
uniform Delete works on them: removing ``[team]edit.3`` kills the program.

RUN_PROGRAM spawns a (simulated) program process on the server's host;
programs are named ``<program>.<n>`` in a flat context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.core.csnh import CSNHServer
from repro.core.context import WellKnownContext
from repro.core.descriptors import (
    ContextDescription,
    ObjectDescription,
    ProcessDescription,
)
from repro.core.mapping import Leaf, MappingOutcome, ResolvedObject, ResolvedParent
from repro.core.protocol import CSNameHeader
from repro.kernel.ipc import Delay, Delivery, Now, Spawn
from repro.kernel.messages import ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import ServiceId

Gen = Generator[Any, Any, Any]


@dataclass
class RunningProgram:
    name: bytes
    program: str
    pid: Pid
    start_time: float
    state: str = "running"
    priority: int = 8


def _program_body(duration: float):
    """The default simulated program: compute (sleep) then exit."""
    if duration > 0:
        yield Delay(duration)


class _ProgramTable:
    def __init__(self) -> None:
        self.programs: dict[bytes, RunningProgram] = {}


class _ProgramNameSpace:
    def __init__(self, table: _ProgramTable) -> None:
        self.table = table

    def root(self, context_id: int) -> Optional[_ProgramTable]:
        if context_id == int(WellKnownContext.DEFAULT):
            return self.table
        return None

    def lookup(self, context_ref: Any, component: bytes):
        if context_ref is not self.table:
            return None
        program = self.table.programs.get(component)
        return Leaf(program) if program is not None else None


class TeamServer(CSNHServer):
    """Programs in execution as a CSNH context."""

    server_name = "teamserver"
    service_id = int(ServiceId.TEAM)

    def __init__(self) -> None:
        super().__init__()
        self.table = _ProgramTable()
        self._namespace = _ProgramNameSpace(self.table)
        self._counter = 0
        self.contexts.register_well_known(WellKnownContext.DEFAULT, self.table)
        self.register_request_op(RequestCode.RUN_PROGRAM, self.op_run)
        self.register_request_op(RequestCode.KILL_PROGRAM, self.op_kill)
        self.register_csname_op(RequestCode.DELETE_NAME, self.op_delete_program)

    def namespace(self) -> _ProgramNameSpace:
        return self._namespace

    # ------------------------------------------------------------------ ops

    def op_run(self, delivery: Delivery) -> Gen:
        message = delivery.message
        program = str(message.get("program", ""))
        if not program:
            yield from self.reply_error(delivery, ReplyCode.BAD_ARGS)
            return
        duration = float(message.get("duration", 0.0))
        self._counter += 1
        name = f"{program}.{self._counter}".encode()
        body = message.get("body")  # tests can inject a real body
        pid = yield Spawn(body if body is not None else _program_body(duration),
                          name=f"prog-{program}-{self._counter}")
        now = yield Now()
        self.table.programs[name] = RunningProgram(
            name=name, program=program, pid=pid, start_time=now)
        yield from self.reply_ok(delivery, name=name.decode(), pid=pid.value)

    def _kill(self, entry: RunningProgram) -> None:
        entry.state = "killed"

    def op_kill(self, delivery: Delivery) -> Gen:
        name = str(delivery.message.get("name", "")).encode()
        entry = self.table.programs.pop(name, None)
        if entry is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        self._kill(entry)
        yield from self.reply_ok(delivery)

    def op_delete_program(self, delivery: Delivery, header: CSNameHeader,
                          resolution: MappingOutcome) -> Gen:
        """Uniform Delete(object_name) applied to a running program."""
        assert isinstance(resolution, (ResolvedObject, ResolvedParent))
        component = resolution.component
        entry = self.table.programs.pop(component, None)
        if entry is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        self._kill(entry)
        yield from self.reply_ok(delivery)

    # -------------------------------------------------------------- protocol

    def describe(self, resolution: ResolvedObject) -> Optional[ObjectDescription]:
        if resolution.ref is self.table:
            return ContextDescription(name="programs",
                                      entry_count=len(self.table.programs))
        if isinstance(resolution.ref, RunningProgram):
            return self._record(resolution.ref)
        return None

    def apply_description(self, resolution: ResolvedObject,
                          record: ObjectDescription) -> ReplyCode:
        entry = resolution.ref
        if not isinstance(entry, RunningProgram) or not isinstance(
                record, ProcessDescription):
            return ReplyCode.BAD_ARGS
        entry.priority = record.priority  # the one mutable field
        return ReplyCode.OK

    def directory_records(self, context_ref: Any) -> list[ObjectDescription]:
        if context_ref is not self.table:
            return []
        return [self._record(self.table.programs[name])
                for name in sorted(self.table.programs)]

    @staticmethod
    def _record(entry: RunningProgram) -> ProcessDescription:
        return ProcessDescription(
            name=entry.name.decode(), pid_value=entry.pid.value,
            program=entry.program, state=entry.state,
            start_time=entry.start_time, priority=entry.priority)

    def name_of_context(self, context_id: int) -> Optional[bytes]:
        if context_id == int(WellKnownContext.DEFAULT):
            return b""
        return None
