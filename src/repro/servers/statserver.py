"""The ``[obs]`` name space: live introspection served through CSNH itself.

The paper's central claim is that *every server implements the naming of the
objects it provides* (Sec. 5.1) and that context directories read as plain
files over the I/O protocol (Sec. 5.6).  This module applies that claim to
the system's own observability state:

- a :class:`StatServer` per host exposes that kernel's live state as
  readable file-like objects -- ``metrics``, ``services``, ``namecache``,
  ``processes``, ``spans/recent``, and the telemetry collector's
  ``timeseries/<metric>`` ring buffers -- under one name space;
- a :class:`ObsRootServer`, registered under the generic ``[obs]`` prefix
  (service id :data:`~repro.kernel.services.ServiceId.OBS`), implements the
  top of the tree: ``hosts/<host>`` entries are *remote links* to the owning
  host's stat server, so ``open("[obs]/hosts/ws2/metrics")`` travels the
  standard Sec. 5.4 forwarding chain -- prefix server -> root obs server ->
  host ws2's stat server -- and the resolution trace shows every hop.
  ``fleet/`` holds domain-wide roll-ups served by the root itself,
  including the SLO watchdog alert log at ``fleet/alerts``.

Costs are split the V way: *capturing* a snapshot is plain memory reads by
the serving process (zero simulated time, like every other handler body),
while the request, forwards, and payload-block reads are ordinary messages
charged ordinary latency -- introspection is real traffic.

:func:`enable_obs_namespace` wires a whole domain: one root server, one stat
server per existing host, coverage of late-created hosts via
``Domain.on_host_created``, idempotent via ``Domain.obs_namespace``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.core.context import ContextPair, WellKnownContext
from repro.core.csnh import CSNHServer
from repro.core.descriptors import (
    ContextDescription,
    ObjectDescription,
    PrefixDescription,
    StatDescription,
)
from repro.core.mapping import (
    Leaf,
    LookupResult,
    MappingOutcome,
    RemoteLink,
    ResolvedObject,
    SubContext,
)
from repro.core.protocol import CSNameHeader
from repro.kernel.ipc import Delivery
from repro.kernel.messages import ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import ServiceId
from repro.obs import introspect
from repro.obs.telemetry import SERIES_METRICS
from repro.servers.base import ServerHandle, start_server
from repro.vio.instance import MemoryInstance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.domain import Domain
    from repro.kernel.host import Host

Gen = Generator[Any, Any, Any]


# ------------------------------------------------------------- name space


@dataclass
class StatLeaf:
    """One introspection object: a name bound to a snapshot builder."""

    name: str
    format: str                    # "json" | "jsonl"
    build: Callable[[], bytes]


class StatContext:
    """A context of introspection objects (and sub-contexts)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.entries: dict[bytes, Any] = {}

    def add(self, node: Any) -> None:
        self.entries[node.name.encode()] = node


@dataclass
class RemoteHostEntry:
    """A ``hosts/<host>`` entry: a remote link to that host's stat server."""

    name: str
    pair: ContextPair


class _StatNameSpace:
    """The generic-mapping view over a StatContext tree."""

    def __init__(self, root: StatContext) -> None:
        self._root = root

    def root(self, context_id: int) -> Optional[StatContext]:
        if context_id == int(WellKnownContext.DEFAULT):
            return self._root
        return None

    def lookup(self, context_ref: Any, component: bytes) -> LookupResult:
        if not isinstance(context_ref, StatContext):
            return None
        entry = context_ref.entries.get(component)
        if entry is None:
            return None
        if isinstance(entry, StatContext):
            return SubContext(entry)
        if isinstance(entry, RemoteHostEntry):
            return RemoteLink(entry.pair)
        return Leaf(entry)


# ----------------------------------------------------------- server bodies


class _IntrospectionServer(CSNHServer):
    """Shared machinery: OPEN_FILE on leaves, typed records, description.

    Subclasses build a :class:`StatContext` tree and register it as the
    well-known DEFAULT context; everything protocol-side lives here.
    """

    def __init__(self, host: "Host") -> None:
        super().__init__()
        self.host = host
        self.root_ctx = StatContext("")
        self._namespace = _StatNameSpace(self.root_ctx)
        self.contexts.register_well_known(WellKnownContext.DEFAULT,
                                          self.root_ctx)
        self.register_csname_op(RequestCode.OPEN_FILE, self.op_open_file)

    def namespace(self) -> _StatNameSpace:
        return self._namespace

    # ---------------------------------------------------------------- open

    def op_open_file(self, delivery: Delivery, header: CSNameHeader,
                     resolution: MappingOutcome) -> Gen:
        """Open an introspection object for reading.

        The payload is captured *now* (zero cost -- no effects yielded
        while building) into a read-only memory instance; the client then
        pulls it block by block over normal, fully-charged READ_INSTANCE
        traffic.
        """
        assert isinstance(resolution, ResolvedObject)
        if resolution.is_context:
            yield from self.reply_error(delivery, ReplyCode.MODE_ERROR)
            return
        mode = str(delivery.message.get("mode", "r"))
        if "w" in mode or "a" in mode:
            yield from self.reply_error(delivery, ReplyCode.MODE_ERROR)
            return
        leaf: StatLeaf = resolution.ref
        payload = leaf.build()
        instance = MemoryInstance(owner=delivery.sender, data=payload,
                                  writable=False)
        instance_id = self.instances.insert(instance)
        assert self.pid is not None
        yield from self.reply_ok(delivery, instance=instance_id,
                                 block_size=instance.block_size,
                                 size_bytes=len(payload),
                                 server_pid=self.pid.value)

    # ------------------------------------------------------------- protocol

    def describe(self, resolution: ResolvedObject) -> Optional[ObjectDescription]:
        if isinstance(resolution.ref, StatContext):
            return self._context_record(resolution.ref)
        if isinstance(resolution.ref, StatLeaf):
            return self._leaf_record(resolution.ref)
        return None

    def directory_records(self, context_ref: Any) -> list[ObjectDescription]:
        if not isinstance(context_ref, StatContext):
            return []
        records: list[ObjectDescription] = []
        for key in sorted(context_ref.entries):
            entry = context_ref.entries[key]
            if isinstance(entry, StatContext):
                records.append(self._context_record(entry))
            elif isinstance(entry, RemoteHostEntry):
                records.append(PrefixDescription(
                    name=entry.name, server_pid=entry.pair.server.value,
                    context_id=entry.pair.context_id))
            else:
                records.append(self._leaf_record(entry))
        return records

    def _context_record(self, ctx: StatContext) -> ContextDescription:
        return ContextDescription(name=ctx.name,
                                  entry_count=len(ctx.entries),
                                  context_id=self.contexts.id_for(ctx))

    def _leaf_record(self, leaf: StatLeaf) -> StatDescription:
        payload = leaf.build()
        return StatDescription(name=leaf.name, host=self.host.name,
                               format=leaf.format, size_bytes=len(payload),
                               captured=self.host.engine.now)

    def name_of_context(self, context_id: int) -> Optional[bytes]:
        if context_id == int(WellKnownContext.DEFAULT):
            return b""
        return None


class StatServer(_IntrospectionServer):
    """One host's introspection context.

    Unregistered (``service_id=None``): clients reach it only through the
    root obs server's forwarding, mirroring how the paper's per-server name
    spaces are entered through links from upstream contexts.
    """

    server_name = "statserver"
    service_id = None

    def __init__(self, host: "Host") -> None:
        super().__init__(host)
        spans = StatContext("spans")
        spans.add(StatLeaf("recent", "jsonl",
                           lambda: introspect.host_spans_payload(host)))
        timeseries = StatContext("timeseries")
        for metric in SERIES_METRICS:
            timeseries.add(StatLeaf(
                metric, "jsonl",
                lambda metric=metric:
                introspect.host_timeseries_payload(host, metric)))
        for node in (
            StatLeaf("metrics", "json",
                     lambda: introspect.host_metrics_payload(host)),
            StatLeaf("services", "json",
                     lambda: introspect.host_services_payload(host)),
            StatLeaf("namecache", "json",
                     lambda: introspect.host_namecache_payload(host)),
            StatLeaf("coherence", "json",
                     lambda: introspect.host_coherence_payload(host)),
            StatLeaf("processes", "json",
                     lambda: introspect.host_processes_payload(host)),
            StatLeaf("profile", "json",
                     lambda: introspect.host_profile_payload(host)),
            StatLeaf("flightlog", "jsonl",
                     lambda: introspect.host_flightlog_payload(host)),
            spans,
            timeseries,
        ):
            self.root_ctx.add(node)


class ObsRootServer(_IntrospectionServer):
    """The root of ``[obs]``: host links plus fleet-level roll-ups."""

    server_name = "obsserver"
    service_id = int(ServiceId.OBS)

    def __init__(self, host: "Host") -> None:
        super().__init__(host)
        domain = host.domain
        self.hosts_ctx = StatContext("hosts")
        fleet = StatContext("fleet")
        fleet.add(StatLeaf("metrics", "jsonl",
                           lambda: introspect.fleet_metrics_payload(domain)))
        fleet.add(StatLeaf("hosts", "json",
                           lambda: introspect.fleet_hosts_payload(domain)))
        fleet.add(StatLeaf("services", "json",
                           lambda: introspect.fleet_services_payload(domain)))
        fleet.add(StatLeaf("alerts", "jsonl",
                           lambda: introspect.fleet_alerts_payload(domain)))
        self.root_ctx.add(self.hosts_ctx)
        self.root_ctx.add(fleet)

    def register_host(self, name: str, stat_pid: Pid) -> None:
        """Bind ``hosts/<name>`` to that host's stat server (re-bindable)."""
        pair = ContextPair(stat_pid, int(WellKnownContext.DEFAULT))
        self.hosts_ctx.entries[name.encode()] = RemoteHostEntry(name, pair)


# ------------------------------------------------------------------ wiring


class ObsNamespace:
    """The running ``[obs]`` deployment over one domain."""

    def __init__(self, domain: "Domain", root_host: "Host") -> None:
        self.domain = domain
        self.root_host = root_host
        self.root_handle: ServerHandle = start_server(
            root_host, ObsRootServer(root_host))
        self.stat_handles: dict[int, ServerHandle] = {}
        for host in list(domain.hosts.values()):
            self._cover(host)
        domain.on_host_created(self._cover)
        domain.on_host_restarted(self._recover)

    @property
    def root(self) -> ObsRootServer:
        return self.root_handle.server  # type: ignore[return-value]

    def _cover(self, host: "Host") -> None:
        if host.host_id in self.stat_handles or host.crashed:
            return
        handle = start_server(host, StatServer(host))
        self.stat_handles[host.host_id] = handle
        self.root.register_host(host.name, handle.pid)

    def _recover(self, host: "Host") -> None:
        """A crash killed the host's stat server; respawn and rebind.

        The respawned server has a new pid -- exactly the paper's
        "recreated after a crash" case -- so ``hosts/<name>`` is re-bound
        and stale cached routes fall back through the forwarding chain.
        """
        self.stat_handles.pop(host.host_id, None)
        self._cover(host)

    def stat_pid(self, host: "Host | str") -> Optional[Pid]:
        """The stat-server pid covering ``host`` (by object or name)."""
        if isinstance(host, str):
            for handle in self.stat_handles.values():
                if handle.host.name == host:
                    return handle.pid
            return None
        handle = self.stat_handles.get(host.host_id)
        return handle.pid if handle is not None else None


def enable_obs_namespace(domain: "Domain",
                         root_host: "Host | None" = None) -> ObsNamespace:
    """Deploy the ``[obs]`` name space over ``domain`` (idempotent).

    The root obs server runs on ``root_host`` (default: the first host);
    every host -- current and future -- gets a stat server.  Names only
    resolve once a ``[obs]`` prefix binding exists, which
    :func:`repro.runtime.workstation.standard_prefixes` installs as a
    generic binding on every workstation unconditionally (it faults with
    NO_SERVER, harmlessly, when this function was never called).
    """
    if domain.obs_namespace is not None:
        return domain.obs_namespace
    if root_host is None:
        if not domain.hosts:
            raise ValueError("enable_obs_namespace needs at least one host")
        root_host = next(iter(domain.hosts.values()))
    # Attribution costs zero simulated time, so serving live profiles keeps
    # the instrumented/uninstrumented timelines identical (the E13 property).
    domain.enable_profiler()
    domain.obs_namespace = ObsNamespace(domain, root_host)
    return domain.obs_namespace
