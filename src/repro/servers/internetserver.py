"""The internet server (paper Sec. 6: "an Internet server that runs a V
kernel-based implementation of IP/TCP").

TCP connections are named, transient, file-like objects: TCP_CONNECT creates
``tcp-N``, opening the name yields a bidirectional stream instance, and the
connection context directory lists live connections with their endpoints and
byte counts -- one of the object kinds the paper's single "list directory"
command displays.

The remote end is simulated by a pluggable :class:`RemoteEndpoint`; the
default echoes.  What the reproduction needs from TCP is not congestion
control but *named connection objects behind the uniform protocol*.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.core.csnh import CSNHServer
from repro.core.context import WellKnownContext
from repro.core.descriptors import (
    ContextDescription,
    ObjectDescription,
    TcpConnectionDescription,
)
from repro.core.mapping import Leaf, MappingOutcome, ResolvedObject, ResolvedParent
from repro.core.protocol import CSNameHeader
from repro.kernel.ipc import Delivery
from repro.kernel.messages import ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import ServiceId
from repro.vio.instance import Instance

Gen = Generator[Any, Any, Any]

#: remote(data) -> response bytes pushed into the receive queue.
RemoteEndpoint = Callable[[bytes], bytes]


def echo_endpoint(data: bytes) -> bytes:
    """The default simulated remote host: echoes what it receives."""
    return data


@dataclass
class TcpConnection:
    name: bytes
    local_port: int
    remote_host: str
    remote_port: int
    state: str = "established"
    bytes_in: int = 0
    bytes_out: int = 0
    receive_queue: deque = field(default_factory=deque)
    endpoint: RemoteEndpoint = echo_endpoint

    def send(self, data: bytes) -> None:
        self.bytes_out += len(data)
        response = self.endpoint(data)
        if response:
            self.receive_queue.append(response)
            self.bytes_in += len(response)

    def recv(self, limit: int) -> bytes:
        out = bytearray()
        while self.receive_queue and len(out) < limit:
            chunk = self.receive_queue[0]
            take = min(len(chunk), limit - len(out))
            out += chunk[:take]
            if take == len(chunk):
                self.receive_queue.popleft()
            else:
                self.receive_queue[0] = chunk[take:]
        return bytes(out)


class TcpInstance(Instance):
    """An open connection stream."""

    def __init__(self, owner: Pid, connection: TcpConnection) -> None:
        super().__init__(owner, block_size=1024, readable=True, writable=True)
        self.connection = connection

    def read_block(self, block: int) -> Gen:
        yield from ()
        if self.connection.state != "established":
            return ReplyCode.END_OF_FILE, b""
        data = self.connection.recv(self.block_size)
        if not data:
            return ReplyCode.RETRY, b""
        return ReplyCode.OK, data

    def write_block(self, block: int, data: bytes) -> Gen:
        yield from ()
        if self.connection.state != "established":
            return ReplyCode.MODE_ERROR, 0
        self.connection.send(data)
        return ReplyCode.OK, len(data)


class _ConnectionTable:
    def __init__(self) -> None:
        self.connections: dict[bytes, TcpConnection] = {}


class _TcpNameSpace:
    def __init__(self, table: _ConnectionTable) -> None:
        self.table = table

    def root(self, context_id: int) -> Optional[_ConnectionTable]:
        if context_id == int(WellKnownContext.DEFAULT):
            return self.table
        return None

    def lookup(self, context_ref: Any, component: bytes):
        if context_ref is not self.table:
            return None
        connection = self.table.connections.get(component)
        return Leaf(connection) if connection is not None else None


class InternetServer(CSNHServer):
    """IP/TCP service with connections as named objects."""

    server_name = "internetserver"
    service_id = int(ServiceId.INTERNET)

    def __init__(self, endpoint: RemoteEndpoint = echo_endpoint) -> None:
        super().__init__()
        self.table = _ConnectionTable()
        self._namespace = _TcpNameSpace(self.table)
        self._counter = 0
        self._next_local_port = 1024
        self.default_endpoint = endpoint
        self.contexts.register_well_known(WellKnownContext.DEFAULT, self.table)
        self.register_request_op(RequestCode.TCP_CONNECT, self.op_connect)
        self.register_request_op(RequestCode.TCP_DISCONNECT, self.op_disconnect)
        self.register_csname_op(RequestCode.OPEN_FILE, self.op_open_connection)

    def namespace(self) -> _TcpNameSpace:
        return self._namespace

    # ------------------------------------------------------------------ ops

    def op_connect(self, delivery: Delivery) -> Gen:
        message = delivery.message
        remote_host = str(message.get("host", ""))
        if not remote_host:
            yield from self.reply_error(delivery, ReplyCode.BAD_ARGS)
            return
        self._counter += 1
        self._next_local_port += 1
        name = f"tcp-{self._counter}".encode()
        connection = TcpConnection(
            name=name, local_port=self._next_local_port,
            remote_host=remote_host, remote_port=int(message.get("port", 0)),
            endpoint=self.default_endpoint)
        self.table.connections[name] = connection
        yield from self.reply_ok(delivery, connection=name.decode(),
                                 local_port=connection.local_port)

    def op_disconnect(self, delivery: Delivery) -> Gen:
        name = str(delivery.message.get("connection", "")).encode()
        connection = self.table.connections.get(name)
        if connection is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        connection.state = "closed"
        del self.table.connections[name]
        yield from self.reply_ok(delivery)

    def op_open_connection(self, delivery: Delivery, header: CSNameHeader,
                           resolution: MappingOutcome) -> Gen:
        if not isinstance(resolution, ResolvedObject) or not isinstance(
                resolution.ref, TcpConnection):
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        instance = TcpInstance(delivery.sender, resolution.ref)
        instance_id = self.instances.insert(instance)
        assert self.pid is not None
        yield from self.reply_ok(delivery, instance=instance_id,
                                 block_size=instance.block_size,
                                 server_pid=self.pid.value)

    # -------------------------------------------------------------- protocol

    def describe(self, resolution: ResolvedObject) -> Optional[ObjectDescription]:
        if resolution.ref is self.table:
            return ContextDescription(name="tcp-connections",
                                      entry_count=len(self.table.connections))
        if isinstance(resolution.ref, TcpConnection):
            return self._record(resolution.ref)
        return None

    def directory_records(self, context_ref: Any) -> list[ObjectDescription]:
        if context_ref is not self.table:
            return []
        return [self._record(self.table.connections[name])
                for name in sorted(self.table.connections)]

    @staticmethod
    def _record(connection: TcpConnection) -> TcpConnectionDescription:
        return TcpConnectionDescription(
            name=connection.name.decode(), local_port=connection.local_port,
            remote_host=connection.remote_host,
            remote_port=connection.remote_port, state=connection.state,
            bytes_in=connection.bytes_in, bytes_out=connection.bytes_out)

    def name_of_context(self, context_id: int) -> Optional[bytes]:
        if context_id == int(WellKnownContext.DEFAULT):
            return b""
        return None
