"""The time server (paper Sec. 4.2).

The paper's example of a *simple* service: "With simple services like time,
the client typically translates from service to real server pid on each
operation" -- no name space, no instances, just GET_TIME/SET_TIME.  It
participates in the CSNH world only in that unknown requests get the
standard ILLEGAL_REQUEST reply.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.csnh import CSNHServer
from repro.kernel.ipc import Delivery, Now, Send
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import ServiceId

Gen = Generator[Any, Any, Any]


class TimeServer(CSNHServer):
    """Serves the (simulated) time of day."""

    server_name = "timeserver"
    service_id = int(ServiceId.TIME)

    def __init__(self, epoch_offset: float = 0.0) -> None:
        super().__init__()
        self.epoch_offset = epoch_offset
        self.queries_served = 0
        self.register_request_op(RequestCode.GET_TIME, self.op_get_time)
        self.register_request_op(RequestCode.SET_TIME, self.op_set_time)

    def op_get_time(self, delivery: Delivery) -> Gen:
        now = yield Now()
        self.queries_served += 1
        yield from self.reply_ok(delivery, time=now + self.epoch_offset)

    def op_set_time(self, delivery: Delivery) -> Gen:
        new_time = delivery.message.get("time")
        if new_time is None:
            yield from self.reply_error(delivery, ReplyCode.BAD_ARGS)
            return
        now = yield Now()
        self.epoch_offset = float(new_time) - now
        yield from self.reply_ok(delivery)


def get_time(server: Pid) -> Gen:
    """Client helper: one GET_TIME transaction; returns the server's time."""
    reply = yield Send(server, Message.request(RequestCode.GET_TIME))
    if not reply.ok:
        raise RuntimeError(f"GET_TIME failed: {reply.reply_code.name}")
    return float(reply["time"])
