"""The mail server: a pre-existing name space grafted into V (paper Sec. 2.2).

"The names for mailboxes, such as 'cheriton@su-score.ARPA', may be imposed
by standards established outside of the system in question.  Such
preexisting servers fit well into a model in which names are normally
interpreted by the server providing the named objects."

This server exercises exactly that extensibility claim:

- its name *syntax* is ``user@host.DOMAIN`` -- not slash-separated, not
  left-to-right component-structured -- and the protocol does not care,
  because interpretation belongs to the server (Sec. 5.4's escape clause);
- mail for hosts this server does not serve is *forwarded* to the server
  that does (via a route table), using the ordinary forwarding convention
  but with the name index left where it was: the next server re-parses the
  whole address itself;
- MAIL_DELIVER/MAIL_CHECK are *new* CSname request codes, registered with
  :func:`repro.core.protocol.register_csname_request` -- "there is no limit
  to the number of request message types that may contain CSnames."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.core.csnh import CSNHServer
from repro.core.context import ContextPair, WellKnownContext
from repro.core.descriptors import (
    ContextDescription,
    MailboxDescription,
    ObjectDescription,
)
from repro.core.mapping import ForwardName, MappingFault, MappingOutcome, ResolvedObject
from repro.core.names import as_text
from repro.core.protocol import CSNameHeader, register_csname_request
from repro.kernel.ipc import Delivery, Now
from repro.kernel.messages import ReplyCode, RequestCode
from repro.kernel.services import ServiceId

Gen = Generator[Any, Any, Any]

#: Mail operations carry CSnames (addresses) and the standard header.
MAIL_DELIVER = register_csname_request(RequestCode.MAIL_DELIVER)
MAIL_CHECK = register_csname_request(RequestCode.MAIL_CHECK)


@dataclass
class MailMessage:
    sender: str
    body: bytes
    delivered_at: float
    read: bool = False


@dataclass
class Mailbox:
    user: str
    messages: list[MailMessage] = field(default_factory=list)

    @property
    def unread(self) -> int:
        return sum(1 for m in self.messages if not m.read)


@dataclass(frozen=True)
class _MailTarget:
    """A parsed local address (the 'resolution' for mail ops)."""

    user: str
    mailbox: Optional[Mailbox]


class MailServer(CSNHServer):
    """ARPA-style mail behind the V name-handling protocol."""

    server_name = "mailserver"
    service_id = int(ServiceId.MAIL)

    def __init__(self, hostname: str = "su-score.ARPA") -> None:
        super().__init__()
        self.hostname = hostname.lower()
        self.mailboxes: dict[str, Mailbox] = {}
        #: host -> ContextPair of the mail server that handles it.
        self.routes: dict[str, ContextPair] = {}
        self.register_csname_op(MAIL_DELIVER, self.op_deliver)
        self.register_csname_op(MAIL_CHECK, self.op_check)

    # ---------------------------------------------------------- local admin

    def add_mailbox(self, user: str) -> Mailbox:
        box = self.mailboxes.setdefault(user.lower(), Mailbox(user=user.lower()))
        return box

    def add_route(self, host: str, pair: ContextPair) -> None:
        """Teach this server where another mail domain lives."""
        self.routes[host.lower()] = pair

    # --------------------------------------------------------------- mapping

    def map_request(self, delivery: Delivery, header: CSNameHeader) -> Gen:
        """Parse ``user@host`` ourselves -- no slashes, no components.

        Forwarding leaves the name index untouched: the receiving mail
        server re-parses the full address.  The protocol permits this; only
        the standard header fields are constrained, not how a server reads
        the name (Sec. 5.4).
        """
        yield from ()
        address = as_text(header.remaining).strip()
        if not address:
            # The empty address names the mailbox context itself (listing).
            return ResolvedObject(ref=self.mailboxes, is_context=True,
                                  parent_ref=None, component=b"",
                                  index=header.name_index)
        if address.startswith("@"):
            return MappingFault(ReplyCode.BAD_NAME,
                                f"malformed address {address!r}")
        user, __, host = address.partition("@")
        host = host.lower()
        if host and host != self.hostname:
            route = self.routes.get(host)
            if route is None:
                return MappingFault(ReplyCode.NOT_FOUND,
                                    f"no route to mail host {host!r}")
            return ForwardName(route, header.name_index)
        mailbox = self.mailboxes.get(user.lower())
        if mailbox is None and delivery.message.code != int(MAIL_DELIVER):
            return MappingFault(ReplyCode.NOT_FOUND,
                                f"no mailbox {user!r} on {self.hostname}")
        return ResolvedObject(ref=_MailTarget(user.lower(), mailbox),
                              is_context=False, parent_ref=None,
                              component=user.encode(),
                              index=len(header.name))

    # ------------------------------------------------------------------- ops

    def op_deliver(self, delivery: Delivery, header: CSNameHeader,
                   resolution: MappingOutcome) -> Gen:
        assert isinstance(resolution, ResolvedObject)
        target = resolution.ref
        assert isinstance(target, _MailTarget)
        mailbox = target.mailbox or self.add_mailbox(target.user)
        now = yield Now()
        mailbox.messages.append(MailMessage(
            sender=str(delivery.message.get("from", "unknown")),
            body=bytes(delivery.message.get("body", b"")),
            delivered_at=now))
        yield from self.reply_ok(delivery, delivered_to=mailbox.user,
                                 host=self.hostname)

    def op_check(self, delivery: Delivery, header: CSNameHeader,
                 resolution: MappingOutcome) -> Gen:
        assert isinstance(resolution, ResolvedObject)
        target = resolution.ref
        assert isinstance(target, _MailTarget) and target.mailbox is not None
        mailbox = target.mailbox
        unread = mailbox.unread
        for message in mailbox.messages:
            message.read = True
        yield from self.reply_ok(delivery, user=mailbox.user,
                                 messages=len(mailbox.messages), unread=unread)

    # -------------------------------------------------------------- protocol

    def describe(self, resolution: ResolvedObject) -> Optional[ObjectDescription]:
        target = resolution.ref
        if target is self.mailboxes:
            return ContextDescription(name=self.hostname,
                                      entry_count=len(self.mailboxes))
        if isinstance(target, _MailTarget) and target.mailbox is not None:
            return self._record(target.mailbox)
        return None

    def directory_records(self, context_ref: Any) -> list[ObjectDescription]:
        return [self._record(self.mailboxes[user])
                for user in sorted(self.mailboxes)]

    def _record(self, mailbox: Mailbox) -> MailboxDescription:
        return MailboxDescription(
            name=f"{mailbox.user}@{self.hostname}", owner=mailbox.user,
            message_count=len(mailbox.messages), unread=mailbox.unread)

    def name_of_context(self, context_id: int) -> Optional[bytes]:
        if context_id == int(WellKnownContext.DEFAULT):
            return b""
        return None
