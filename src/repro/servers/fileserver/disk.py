"""Disk timing (paper Sec. 3.1: "a disk delivering a 512 byte page every
15 milliseconds").

The store itself is in memory; what the disk model adds is *time*: every
page-granularity access costs ``disk_page_seconds`` unless it hits the
read-ahead buffer.  The read-ahead discipline reproduces the paper's
sequential-read figure (E3): after the server pushes a reply out, it
prefetches the next page while the client's next request is in flight,
giving the steady-state 17.1 ms/page instead of the naive 18.9 ms.

``NullDisk`` removes disk time entirely, for experiments that isolate naming
costs (E4 and the E8 family measure name handling, not storage).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.kernel.ipc import Delay
from repro.net.latency import DISK_PAGE_BYTES

Gen = Generator[Any, Any, Any]


class DiskModel:
    """A single spindle with one-page read-ahead."""

    def __init__(self, page_seconds: float = 15e-3,
                 page_bytes: int = DISK_PAGE_BYTES) -> None:
        self.page_seconds = page_seconds
        self.page_bytes = page_bytes
        #: (inode, block) of the single read-ahead page, if any.
        self._buffered: tuple[int, int] | None = None
        self.reads = 0
        self.writes = 0
        self.readahead_hits = 0

    def read_page(self, inode: int, block: int) -> Gen:
        """Charge one page read (free if the read-ahead buffer holds it)."""
        if self._buffered == (inode, block):
            self.readahead_hits += 1
            self._buffered = None
            yield from ()
            return
        self.reads += 1
        yield Delay(self.page_seconds)

    def write_page(self, inode: int, block: int) -> Gen:
        """Charge one page write (write-through; invalidates read-ahead)."""
        self.writes += 1
        if self._buffered == (inode, block):
            self._buffered = None
        yield Delay(self.page_seconds)

    def prefetch(self, inode: int, block: int) -> Gen:
        """Read a page into the read-ahead buffer (server-side, post-reply)."""
        if self._buffered == (inode, block):
            yield from ()
            return
        self.reads += 1
        yield Delay(self.page_seconds)
        self._buffered = (inode, block)

    @property
    def timed(self) -> bool:
        return self.page_seconds > 0


class NullDisk(DiskModel):
    """A disk with no access time: isolates protocol costs."""

    def __init__(self, page_bytes: int = DISK_PAGE_BYTES) -> None:
        super().__init__(page_seconds=0.0, page_bytes=page_bytes)

    def read_page(self, inode: int, block: int) -> Gen:
        yield from ()

    def write_page(self, inode: int, block: int) -> Gen:
        yield from ()

    def prefetch(self, inode: int, block: int) -> Gen:
        yield from ()
