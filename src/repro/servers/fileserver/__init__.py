"""The V storage server.

The paper's archetype of the distributed naming model: "it is convenient to
store file names in directory files on the same storage medium as the files
they name, and to implement the naming within the storage server"
(Sec. 2.2).

- :mod:`repro.servers.fileserver.storage` -- the inode store: files,
  directories, cross-server links.
- :mod:`repro.servers.fileserver.disk` -- the disk timing model (Sec. 3.1's
  512-byte page every 15 ms) with a read-ahead buffer.
- :mod:`repro.servers.fileserver.server` -- the CSNH file server: contexts
  map to directories, pathnames act as context prefixes for the final
  component (Sec. 6).
"""

from repro.servers.fileserver.disk import DiskModel, NullDisk
from repro.servers.fileserver.server import VFileServer
from repro.servers.fileserver.storage import DirectoryNode, FileNode, FileStore, RemoteLinkEntry

__all__ = [
    "VFileServer",
    "FileStore",
    "FileNode",
    "DirectoryNode",
    "RemoteLinkEntry",
    "DiskModel",
    "NullDisk",
]
