"""The inode store backing a file server.

Mirrors the design the paper sketches in Sec. 5.6: "a file server may store
file names separate from their descriptions with an association maintained by
internal indices, such as the 'i-node numbers' in Unix" -- names live in
directory nodes, content and attributes in file nodes, and description
records are fabricated from both on demand.

Directories may also hold :class:`RemoteLinkEntry` pointers -- contexts
implemented by *other* servers (the curved arrow of Figure 4) -- which is
what makes cross-server forwarding arise inside an ordinary pathname walk.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.context import ContextPair
from repro.core.names import BadName, validate_component


class StorageError(RuntimeError):
    """Invariant violation inside the store (protocol errors map to replies)."""


_inode_counter = itertools.count(2)


@dataclass
class FileNode:
    """One regular file: content plus attributes."""

    name: bytes
    owner: str = ""
    access: int = 0o644
    created: float = 0.0
    modified: float = 0.0
    data: bytearray = field(default_factory=bytearray)
    inode: int = field(default_factory=lambda: next(_inode_counter))
    parent: Optional["DirectoryNode"] = None

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class RemoteLinkEntry:
    """A pointer to a context on another server (Figure 4's curved arrow)."""

    name: bytes
    pair: ContextPair
    parent: Optional["DirectoryNode"] = None


class DirectoryNode:
    """One directory: a context full of named entries."""

    def __init__(self, name: bytes, owner: str = "", access: int = 0o755,
                 parent: Optional["DirectoryNode"] = None) -> None:
        self.name = name
        self.owner = owner
        self.access = access
        self.parent = parent
        self.inode = next(_inode_counter)
        self.entries: dict[bytes, Union[FileNode, "DirectoryNode", RemoteLinkEntry]] = {}

    def __repr__(self) -> str:
        return f"DirectoryNode({self.name!r}, {len(self.entries)} entries)"


Entry = Union[FileNode, DirectoryNode, RemoteLinkEntry]


class FileStore:
    """A file server's entire storage state."""

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self.root = DirectoryNode(b"", owner=owner)
        self.file_count = 0
        self.directory_count = 1

    # ----------------------------------------------------------------- lookup

    def get(self, directory: DirectoryNode, component: bytes) -> Optional[Entry]:
        if component == b".":
            return directory
        if component == b"..":
            return directory.parent or directory
        return directory.entries.get(component)

    def path_of(self, node: Union[FileNode, DirectoryNode]) -> bytes:
        """Root-relative pathname of a node (the server's inverse mapping).

        Many-to-one caveats apply exactly as Sec. 6 warns: this is *a* name
        for the node, not necessarily the one a client used.
        """
        parts: list[bytes] = []
        current: Optional[Union[FileNode, DirectoryNode]] = node
        while current is not None and current is not self.root:
            parts.append(current.name)
            current = current.parent
        if current is None:
            raise StorageError(f"{node!r} is detached from the root")
        return b"/".join(reversed(parts))

    # ----------------------------------------------------------------- create

    def _claim_name(self, directory: DirectoryNode, name: bytes) -> bytes:
        component = validate_component(name)
        if component in (b".", b".."):
            raise BadName(f"{component!r} is reserved")
        if component in directory.entries:
            raise StorageError(f"name {component!r} already bound")
        return component

    def create_file(self, directory: DirectoryNode, name: bytes,
                    owner: str = "", now: float = 0.0) -> FileNode:
        component = self._claim_name(directory, name)
        node = FileNode(name=component, owner=owner or directory.owner,
                        created=now, modified=now, parent=directory)
        directory.entries[component] = node
        self.file_count += 1
        return node

    def create_directory(self, directory: DirectoryNode, name: bytes,
                         owner: str = "") -> DirectoryNode:
        component = self._claim_name(directory, name)
        node = DirectoryNode(component, owner=owner or directory.owner,
                             parent=directory)
        directory.entries[component] = node
        self.directory_count += 1
        return node

    def link_remote(self, directory: DirectoryNode, name: bytes,
                    pair: ContextPair) -> RemoteLinkEntry:
        component = self._claim_name(directory, name)
        entry = RemoteLinkEntry(name=component, pair=pair, parent=directory)
        directory.entries[component] = entry
        return entry

    # ----------------------------------------------------------------- remove

    def remove(self, directory: DirectoryNode, component: bytes) -> Entry:
        """Unbind ``component``; directories must be empty."""
        entry = directory.entries.get(component)
        if entry is None:
            raise StorageError(f"no entry {component!r}")
        if isinstance(entry, DirectoryNode):
            if entry.entries:
                raise StorageError(f"directory {component!r} is not empty")
            self.directory_count -= 1
        elif isinstance(entry, FileNode):
            self.file_count -= 1
        del directory.entries[component]
        if not isinstance(entry, RemoteLinkEntry):
            entry.parent = None
        return entry

    # ----------------------------------------------------------------- rename

    def rename(self, directory: DirectoryNode, component: bytes,
               new_directory: DirectoryNode, new_component: bytes) -> Entry:
        entry = directory.entries.get(component)
        if entry is None:
            raise StorageError(f"no entry {component!r}")
        new_component = self._claim_name(new_directory, new_component)
        del directory.entries[component]
        entry.name = new_component
        entry.parent = new_directory
        new_directory.entries[new_component] = entry
        return entry

    # ----------------------------------------------------------------- setup

    def make_path(self, path: str, directory: bool = True) -> Union[FileNode, DirectoryNode]:
        """Setup-time helper: mkdir -p (plus optional final file)."""
        parts = [p.encode() for p in path.strip("/").split("/") if p]
        current = self.root
        for index, part in enumerate(parts):
            is_last = index == len(parts) - 1
            existing = current.entries.get(part)
            if existing is None:
                if is_last and not directory:
                    return self.create_file(current, part)
                current = self.create_directory(current, part)
            elif isinstance(existing, DirectoryNode):
                current = existing
            elif isinstance(existing, FileNode) and is_last and not directory:
                return existing
            else:
                raise StorageError(f"path component {part!r} is not a directory")
        return current

    def resolve_path(self, path: str) -> Optional[Entry]:
        """Setup/test helper: resolve a slash path from the root."""
        current: Entry = self.root
        for part in (p.encode() for p in path.strip("/").split("/") if p):
            if not isinstance(current, DirectoryNode):
                return None
            found = self.get(current, part)
            if found is None:
                return None
            current = found
        return current

    def total_bytes(self) -> int:
        return self._total_bytes(self.root)

    def _total_bytes(self, directory: DirectoryNode) -> int:
        total = 0
        for entry in directory.entries.values():
            if isinstance(entry, FileNode):
                total += entry.size
            elif isinstance(entry, DirectoryNode):
                total += self._total_bytes(entry)
        return total
