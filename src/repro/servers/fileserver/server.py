"""The V file server: storage plus naming in one server (paper Sec. 2.2, 6).

"The file server software maps context identifiers onto directories that act
as starting points for interpreting relative pathnames, similar to the
current working directory in Unix.  A pathname is interpreted as a context
prefix specifying the directory with the final file name component being
interpreted in the context defined by the directory."

Contexts are directories; well-known context ids bind to the standard
directories (home, programs, public, temp); cross-server links in any
directory trigger the protocol's forwarding; and every object fabricates its
description record on demand.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.context import WellKnownContext
from repro.core.csnh import CSNHServer
from repro.core.descriptors import (
    ContextDescription,
    FileDescription,
    ObjectDescription,
    PrefixDescription,
)
from repro.core.context import ContextPair
from repro.core.mapping import (
    ForwardName,
    Leaf,
    MappingFault,
    MappingOutcome,
    RemoteLink,
    ResolvedObject,
    ResolvedParent,
    SubContext,
    map_name,
)
from repro.core.names import BadName, as_name_bytes, as_text
from repro.core.protocol import CSNameHeader, register_csname_request
from repro.kernel.ipc import Delivery, MoveTo, Now
from repro.kernel.messages import ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import ServiceId
from repro.servers.fileserver.disk import DiskModel, NullDisk
from repro.servers.fileserver.storage import (
    DirectoryNode,
    FileNode,
    FileStore,
    RemoteLinkEntry,
    StorageError,
)
from repro.vio.instance import Instance

Gen = Generator[Any, Any, Any]


class FileInstance(Instance):
    """An open file: block access with disk timing and read-ahead."""

    def __init__(self, owner: Pid, node: FileNode, disk: DiskModel,
                 mode: str) -> None:
        super().__init__(owner, block_size=disk.page_bytes,
                         readable=True, writable=mode in ("w", "a"))
        self.node = node
        self.disk = disk
        self.mode = mode

    def size_bytes(self) -> int:
        return self.node.size

    def read_block(self, block: int) -> Gen:
        start = block * self.block_size
        if start >= self.node.size:
            return ReplyCode.END_OF_FILE, b""
        yield from self.disk.read_page(self.node.inode, block)
        return ReplyCode.OK, bytes(self.node.data[start : start + self.block_size])

    def readahead(self, block: int) -> Gen:
        """Prefetch the next page (called by the server *after* replying)."""
        next_start = (block + 1) * self.block_size
        if next_start < self.node.size:
            yield from self.disk.prefetch(self.node.inode, block + 1)

    def write_block(self, block: int, data: bytes) -> Gen:
        if not self.writable:
            return ReplyCode.MODE_ERROR, 0
        if len(data) > self.block_size:
            return ReplyCode.BAD_ARGS, 0
        yield from self.disk.write_page(self.node.inode, block)
        start = block * self.block_size
        end = start + len(data)
        if end > self.node.size:
            self.node.data.extend(b"\x00" * (end - self.node.size))
        self.node.data[start:end] = data
        self.node.modified = yield Now()
        return ReplyCode.OK, len(data)


class _FileServerNameSpace:
    """Adapter from the store to the generic mapping procedure."""

    def __init__(self, server: "VFileServer") -> None:
        self.server = server

    def root(self, context_id: int) -> Optional[DirectoryNode]:
        ref = self.server.contexts.resolve(context_id)
        return ref if isinstance(ref, DirectoryNode) else None

    def lookup(self, context_ref: Any, component: bytes):
        if not isinstance(context_ref, DirectoryNode):
            return None
        entry = self.server.store.get(context_ref, component)
        if entry is None:
            return None
        if isinstance(entry, FileNode):
            return Leaf(entry)
        if isinstance(entry, RemoteLinkEntry):
            return RemoteLink(entry.pair)
        return SubContext(entry)


class VFileServer(CSNHServer):
    """A storage server implementing the full name-handling protocol."""

    server_name = "fileserver"
    service_id = int(ServiceId.STORAGE)

    #: Standard directory layout created at construction.
    STANDARD_DIRECTORIES = ("bin", "tmp", "public")

    def __init__(self, user: str = "user", disk: DiskModel | None = None,
                 group_ids: tuple[int, ...] = (),
                 readahead: bool = True) -> None:
        super().__init__()
        self.user = user
        self.disk = disk if disk is not None else NullDisk()
        #: Ablation switch for the post-reply prefetch (E3 / bench_ablation).
        self.readahead_enabled = readahead
        self.store = FileStore(owner=user)
        self._group_ids = list(group_ids)
        self._namespace = _FileServerNameSpace(self)

        for directory in self.STANDARD_DIRECTORIES:
            self.store.make_path(directory)
        home = self.store.make_path(f"users/{user}")
        assert isinstance(home, DirectoryNode)
        self.home = home

        self.contexts.register_well_known(WellKnownContext.DEFAULT, self.store.root)
        self.contexts.register_well_known(WellKnownContext.HOME, home)
        self.contexts.register_well_known(
            WellKnownContext.PROGRAMS, self.store.resolve_path("bin"))
        self.contexts.register_well_known(
            WellKnownContext.PUBLIC, self.store.resolve_path("public"))
        self.contexts.register_well_known(
            WellKnownContext.TEMP, self.store.resolve_path("tmp"))

        self.register_csname_op(RequestCode.OPEN_FILE, self.op_open_file)
        self.register_csname_op(RequestCode.CREATE_FILE, self.op_create_file)
        self.register_csname_op(RequestCode.DELETE_NAME, self.op_delete_name)
        self.register_csname_op(RequestCode.RENAME_OBJECT, self.op_rename)
        self.register_csname_op(RequestCode.CREATE_CONTEXT, self.op_create_context)
        self.register_csname_op(RequestCode.DELETE_CONTEXT, self.op_delete_context)
        self.register_csname_op(RequestCode.ADD_CONTEXT_NAME, self.op_add_remote_link)
        self.register_csname_op(RequestCode.DELETE_CONTEXT_NAME, self.op_delete_remote_link)
        self.register_csname_op(register_csname_request(RequestCode.LOAD_PROGRAM),
                                self.op_load_program)

    # ----------------------------------------------------------------- hooks

    def namespace(self) -> _FileServerNameSpace:
        return self._namespace

    def group_ids(self) -> list[int]:
        return list(self._group_ids)

    def map_request(self, delivery: Delivery, header: CSNameHeader) -> Gen:
        """Like the base procedure, but creating opens resolve the parent."""
        code = delivery.message.code
        want_parent = code in {
            int(RequestCode.CREATE_FILE), int(RequestCode.CREATE_CONTEXT),
            int(RequestCode.DELETE_NAME), int(RequestCode.DELETE_CONTEXT),
            int(RequestCode.RENAME_OBJECT), int(RequestCode.ADD_CONTEXT_NAME),
            int(RequestCode.DELETE_CONTEXT_NAME),
        }
        if code == int(RequestCode.OPEN_FILE):
            mode = str(delivery.message.get("mode", "r"))
            want_parent = mode != "r"
        return (yield from self.run_mapping(delivery, header,
                                            want_parent=want_parent))

    # ------------------------------------------------------------------ open

    def op_open_file(self, delivery: Delivery, header: CSNameHeader,
                     resolution: MappingOutcome) -> Gen:
        mode = str(delivery.message.get("mode", "r"))
        if mode not in ("r", "w", "a"):
            yield from self.reply_error(delivery, ReplyCode.BAD_ARGS)
            return
        if mode == "r":
            assert isinstance(resolution, ResolvedObject)
            if resolution.is_context:
                yield from self.reply_error(delivery, ReplyCode.MODE_ERROR)
                return
            node = resolution.ref
        else:
            assert isinstance(resolution, ResolvedParent)
            node = yield from self._file_for_writing(delivery, resolution, mode)
            if node is None:
                return  # error already replied
        instance = FileInstance(delivery.sender, node, self.disk, mode)
        instance_id = self.instances.insert(instance)
        assert self.pid is not None
        yield from self.reply_ok(delivery, instance=instance_id,
                                 block_size=instance.block_size,
                                 size_bytes=node.size,
                                 server_pid=self.pid.value)

    def _file_for_writing(self, delivery: Delivery,
                          resolution: ResolvedParent, mode: str) -> Gen:
        """Find or create the file a w/a-mode open names.  None on error."""
        parent = resolution.parent_ref
        if not isinstance(parent, DirectoryNode):
            yield from self.reply_error(delivery, ReplyCode.NOT_A_CONTEXT)
            return None
        entry = self.store.get(parent, resolution.component)
        if entry is None:
            now = yield Now()
            try:
                node = self.store.create_file(parent, resolution.component,
                                              owner=self.user, now=now)
            except (BadName, StorageError):
                yield from self.reply_error(delivery, ReplyCode.BAD_NAME)
                return None
            # Directory update hits the disk.
            yield from self.disk.write_page(parent.inode, 0)
            return node
        if not isinstance(entry, FileNode):
            yield from self.reply_error(delivery, ReplyCode.MODE_ERROR)
            return None
        if mode == "w" and entry.size:
            entry.data.clear()
            entry.modified = yield Now()
            yield from self.disk.write_page(entry.inode, 0)
        return entry

    # ------------------------------------------------------- create / delete

    def op_create_file(self, delivery: Delivery, header: CSNameHeader,
                       resolution: MappingOutcome) -> Gen:
        assert isinstance(resolution, ResolvedParent)
        parent = resolution.parent_ref
        if not isinstance(parent, DirectoryNode):
            yield from self.reply_error(delivery, ReplyCode.NOT_A_CONTEXT)
            return
        now = yield Now()
        try:
            self.store.create_file(parent, resolution.component,
                                   owner=self.user, now=now)
        except StorageError:
            yield from self.reply_error(delivery, ReplyCode.NAME_EXISTS)
            return
        except BadName:
            yield from self.reply_error(delivery, ReplyCode.BAD_NAME)
            return
        yield from self.disk.write_page(parent.inode, 0)
        yield from self.reply_ok(delivery)

    def op_create_context(self, delivery: Delivery, header: CSNameHeader,
                          resolution: MappingOutcome) -> Gen:
        assert isinstance(resolution, ResolvedParent)
        parent = resolution.parent_ref
        if not isinstance(parent, DirectoryNode):
            yield from self.reply_error(delivery, ReplyCode.NOT_A_CONTEXT)
            return
        try:
            self.store.create_directory(parent, resolution.component,
                                        owner=self.user)
        except StorageError:
            yield from self.reply_error(delivery, ReplyCode.NAME_EXISTS)
            return
        except BadName:
            yield from self.reply_error(delivery, ReplyCode.BAD_NAME)
            return
        yield from self.disk.write_page(parent.inode, 0)
        yield from self.reply_ok(delivery)

    def _delete_common(self, delivery: Delivery,
                       resolution: MappingOutcome,
                       require=None) -> Gen:
        """Shared unbind path for DELETE_NAME / DELETE_CONTEXT / link removal.

        Deletion is purely local: name and object live on the same server, so
        there is no registry to keep consistent -- the property E8b measures
        against the centralized baseline.
        """
        assert isinstance(resolution, ResolvedParent)
        parent = resolution.parent_ref
        if not isinstance(parent, DirectoryNode):
            yield from self.reply_error(delivery, ReplyCode.NOT_A_CONTEXT)
            return
        entry = self.store.get(parent, resolution.component)
        if entry is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        if require is not None and not isinstance(entry, require):
            yield from self.reply_error(delivery, ReplyCode.BAD_ARGS)
            return
        try:
            removed = self.store.remove(parent, resolution.component)
        except StorageError:
            yield from self.reply_error(delivery, ReplyCode.CONTEXT_NOT_EMPTY)
            return
        if isinstance(removed, DirectoryNode):
            self.contexts.drop_ref(removed)
        yield from self.disk.write_page(parent.inode, 0)
        yield from self.reply_ok(delivery)

    def op_delete_name(self, delivery: Delivery, header: CSNameHeader,
                       resolution: MappingOutcome) -> Gen:
        """The paper's uniform Delete(object_name): works on any entry kind."""
        yield from self._delete_common(delivery, resolution)

    def op_delete_context(self, delivery: Delivery, header: CSNameHeader,
                          resolution: MappingOutcome) -> Gen:
        yield from self._delete_common(delivery, resolution,
                                       require=DirectoryNode)

    def op_delete_remote_link(self, delivery: Delivery, header: CSNameHeader,
                              resolution: MappingOutcome) -> Gen:
        yield from self._delete_common(delivery, resolution,
                                       require=RemoteLinkEntry)

    # ----------------------------------------------------------------- rename

    def op_rename(self, delivery: Delivery, header: CSNameHeader,
                  resolution: MappingOutcome) -> Gen:
        assert isinstance(resolution, ResolvedParent)
        parent = resolution.parent_ref
        new_name = delivery.message.get("new_name")
        if new_name is None or not isinstance(parent, DirectoryNode):
            yield from self.reply_error(delivery, ReplyCode.BAD_ARGS)
            return
        target = map_name(self._namespace, header.context_id,
                          as_name_bytes(new_name), 0, want_parent=True)
        if isinstance(target, ForwardName):
            # Cross-server rename would need a multi-server transaction the
            # protocol deliberately does not promise (Sec. 2.2 Consistency).
            yield from self.reply_error(delivery, ReplyCode.NOT_SUPPORTED)
            return
        if isinstance(target, MappingFault):
            yield from self.reply_error(delivery, target.code)
            return
        assert isinstance(target, ResolvedParent)
        if not isinstance(target.parent_ref, DirectoryNode):
            yield from self.reply_error(delivery, ReplyCode.NOT_A_CONTEXT)
            return
        try:
            self.store.rename(parent, resolution.component,
                              target.parent_ref, target.component)
        except StorageError:
            yield from self.reply_error(delivery, ReplyCode.NAME_EXISTS)
            return
        yield from self.disk.write_page(parent.inode, 0)
        yield from self.reply_ok(delivery)

    # ----------------------------------------------------- cross-server links

    def op_add_remote_link(self, delivery: Delivery, header: CSNameHeader,
                           resolution: MappingOutcome) -> Gen:
        """ADD_CONTEXT_NAME: bind a name to a context on another server."""
        assert isinstance(resolution, ResolvedParent)
        parent = resolution.parent_ref
        message = delivery.message
        target_pid = message.get("target_pid")
        if target_pid is None or not isinstance(parent, DirectoryNode):
            yield from self.reply_error(delivery, ReplyCode.BAD_ARGS)
            return
        pair = ContextPair(Pid(int(target_pid)),
                           int(message.get("target_context", 0)))
        try:
            self.store.link_remote(parent, resolution.component, pair)
        except StorageError:
            yield from self.reply_error(delivery, ReplyCode.NAME_EXISTS)
            return
        except BadName:
            yield from self.reply_error(delivery, ReplyCode.BAD_NAME)
            return
        yield from self.disk.write_page(parent.inode, 0)
        yield from self.reply_ok(delivery)

    # --------------------------------------------------------- program load

    def op_load_program(self, delivery: Delivery, header: CSNameHeader,
                        resolution: MappingOutcome) -> Gen:
        """Load a program image into the requester's memory with MoveTo.

        This is Sec. 3.1's diskless program-loading path (E2): the client
        exposes a writable segment with its request; the server moves the
        whole image in one bulk transfer, then replies.  The paper's number
        assumes "the program text is already in the file server's memory
        buffers", so no disk time is charged here.
        """
        assert isinstance(resolution, ResolvedObject)
        if resolution.is_context:
            yield from self.reply_error(delivery, ReplyCode.MODE_ERROR)
            return
        node = resolution.ref
        if node.size:
            yield MoveTo(delivery.sender, 0, bytes(node.data))
        yield from self.reply_ok(delivery, size_bytes=node.size)

    # ---------------------------------------------------- descriptions (5.5)

    def describe(self, resolution: ResolvedObject) -> Optional[ObjectDescription]:
        return self._describe_entry(resolution.ref)

    def _describe_entry(self, entry: Any) -> Optional[ObjectDescription]:
        if isinstance(entry, FileNode):
            return FileDescription(
                name=as_text(entry.name), size_bytes=entry.size,
                owner=entry.owner, access=entry.access,
                created=entry.created, modified=entry.modified,
                block_size=self.disk.page_bytes)
        if isinstance(entry, DirectoryNode):
            return ContextDescription(
                name=as_text(entry.name) or "/",
                entry_count=len(entry.entries), owner=entry.owner,
                access=entry.access,
                context_id=self.contexts.id_for(entry))
        if isinstance(entry, RemoteLinkEntry):
            return PrefixDescription(
                name=as_text(entry.name), server_pid=entry.pair.server.value,
                context_id=entry.pair.context_id, generic=False)
        return None

    def apply_description(self, resolution: ResolvedObject,
                          record: ObjectDescription) -> ReplyCode:
        return self._apply_to_entry(resolution.ref, record)

    def _apply_to_entry(self, entry: Any, record: ObjectDescription) -> ReplyCode:
        current = self._describe_entry(entry)
        if current is None or type(current) is not type(record):
            return ReplyCode.BAD_ARGS
        updated = current.apply_modification(record)
        if isinstance(entry, (FileNode, DirectoryNode)):
            entry.owner = updated.owner        # type: ignore[union-attr]
            entry.access = updated.access      # type: ignore[union-attr]
            return ReplyCode.OK
        # Remote links have no mutable fields; ignoring the write is the
        # protocol-sanctioned behaviour.
        return ReplyCode.OK

    # -------------------------------------------------- context directories

    def directory_records(self, context_ref: Any) -> list[ObjectDescription]:
        if not isinstance(context_ref, DirectoryNode):
            return []
        records = []
        for name in sorted(context_ref.entries):
            record = self._describe_entry(context_ref.entries[name])
            if record is not None:
                records.append(record)
        return records

    def modify_record(self, context_ref: Any,
                      record: ObjectDescription) -> ReplyCode:
        if not isinstance(context_ref, DirectoryNode):
            return ReplyCode.BAD_ARGS
        entry = context_ref.entries.get(record.name.encode())
        if entry is None:
            return ReplyCode.NOT_FOUND
        return self._apply_to_entry(entry, record)

    # ------------------------------------------------------- inverse mapping

    def name_of_context(self, context_id: int) -> Optional[bytes]:
        ref = self.contexts.resolve(context_id)
        if not isinstance(ref, DirectoryNode):
            return None
        try:
            return self.store.path_of(ref)
        except StorageError:
            return None

    def name_of_instance(self, instance_id: int) -> Optional[bytes]:
        instance = self.instances.get(instance_id)
        if not isinstance(instance, FileInstance):
            return None
        try:
            return self.store.path_of(instance.node)
        except StorageError:
            # The file was deleted while open: no inverse exists (Sec. 6).
            return None

    # -------------------------------------------------- read-ahead modelling

    def op_read_instance(self, delivery: Delivery) -> Gen:
        instance = self._instance_for(delivery)
        if not isinstance(instance, FileInstance):
            yield from CSNHServer.op_read_instance(self, delivery)
            return
        block = int(delivery.message.get("block", 0))
        code, data = yield from instance.read_block(block)
        if code is ReplyCode.OK:
            yield from self.reply_ok(delivery, segment=data, bytes=len(data))
            # Prefetch the next page after the reply is on the wire; the
            # server is busy for the duration, which is exactly the E3
            # steady-state the paper measured (17.1 ms/page).
            if self.readahead_enabled:
                yield from instance.readahead(block)
        else:
            yield from self.reply_error(delivery, code)
