"""Concrete V servers, every one a CSNH server (paper Sec. 6).

"All of the servers that deal with CSnames implement the name-handling
protocol described in the previous section."

- :mod:`repro.servers.fileserver` -- the storage server (inode store,
  directory contexts, cross-server links, disk timing, read-ahead).
- :mod:`repro.servers.pipeserver` -- pipes as file-like objects.
- :mod:`repro.servers.printerserver` -- the laser printer spooler.
- :mod:`repro.servers.terminalserver` -- virtual graphics terminals
  (transient objects, Sec. 4.3).
- :mod:`repro.servers.internetserver` -- IP/TCP connections as named objects.
- :mod:`repro.servers.mailserver` -- ARPA mail names (extensibility demo).
- :mod:`repro.servers.teamserver` -- the program manager: programs in
  execution as a context.
- :mod:`repro.servers.timeserver` / :mod:`repro.servers.exceptionserver` --
  simple services.
- :mod:`repro.servers.statserver` -- the ``[obs]`` introspection name space:
  live observability state served through the CSNH protocol itself.
- :mod:`repro.servers.base` -- spawn/wiring helpers.
"""

from repro.servers.base import ServerHandle, start_server
from repro.servers.fileserver import VFileServer
from repro.servers.pipeserver import PipeServer
from repro.servers.printerserver import PrinterServer
from repro.servers.terminalserver import TerminalServer
from repro.servers.internetserver import InternetServer
from repro.servers.mailserver import MailServer
from repro.servers.teamserver import TeamServer
from repro.servers.timeserver import TimeServer
from repro.servers.exceptionserver import ExceptionServer
from repro.servers.statserver import (
    ObsNamespace,
    ObsRootServer,
    StatServer,
    enable_obs_namespace,
)

__all__ = [
    "ServerHandle",
    "start_server",
    "VFileServer",
    "PipeServer",
    "PrinterServer",
    "TerminalServer",
    "InternetServer",
    "MailServer",
    "TeamServer",
    "TimeServer",
    "ExceptionServer",
    "StatServer",
    "ObsRootServer",
    "ObsNamespace",
    "enable_obs_namespace",
]
