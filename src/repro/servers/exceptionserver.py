"""The exception server (paper Sec. 6's workstation server roster).

Processes report faults with RAISE_EXCEPTION; incidents become named,
queryable objects -- the naming model's "distributed database" view applied
to something as un-file-like as a crash report.  The incident context is a
flat name space (``exc-1``, ``exc-2``, ...) served through the standard
protocol, so the same list-directory program that lists files lists faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.core.csnh import CSNHServer
from repro.core.context import WellKnownContext
from repro.core.descriptors import (
    ContextDescription,
    ObjectDescription,
    ProcessDescription,
)
from repro.core.mapping import Leaf, ResolvedObject
from repro.kernel.ipc import Delivery, Now
from repro.kernel.messages import ReplyCode, RequestCode
from repro.kernel.services import ServiceId

Gen = Generator[Any, Any, Any]


@dataclass
class Incident:
    """One reported exception."""

    name: bytes
    reporter_pid: int
    code: str
    detail: str
    time: float


class _IncidentTable:
    def __init__(self) -> None:
        self.incidents: dict[bytes, Incident] = {}


class _IncidentNameSpace:
    def __init__(self, table: _IncidentTable) -> None:
        self.table = table

    def root(self, context_id: int) -> Optional[_IncidentTable]:
        if context_id == int(WellKnownContext.DEFAULT):
            return self.table
        return None

    def lookup(self, context_ref: Any, component: bytes):
        if context_ref is not self.table:
            return None
        incident = self.table.incidents.get(component)
        return Leaf(incident) if incident is not None else None


class ExceptionServer(CSNHServer):
    """Collects and names exception reports."""

    server_name = "exceptionserver"
    service_id = int(ServiceId.EXCEPTION)

    def __init__(self) -> None:
        super().__init__()
        self.table = _IncidentTable()
        self._namespace = _IncidentNameSpace(self.table)
        self._counter = 0
        self.contexts.register_well_known(WellKnownContext.DEFAULT, self.table)
        self.register_request_op(RequestCode.RAISE_EXCEPTION, self.op_raise)
        self.register_csname_op(RequestCode.DELETE_NAME, self.op_dismiss)

    def namespace(self) -> _IncidentNameSpace:
        return self._namespace

    def op_raise(self, delivery: Delivery) -> Gen:
        message = delivery.message
        self._counter += 1
        name = f"exc-{self._counter}".encode()
        now = yield Now()
        self.table.incidents[name] = Incident(
            name=name,
            reporter_pid=delivery.sender.value,
            code=str(message.get("exc_code", "unknown")),
            detail=str(message.get("detail", "")),
            time=now)
        yield from self.reply_ok(delivery, incident=name.decode())

    def op_dismiss(self, delivery: Delivery, header, resolution) -> Gen:
        """Uniform Delete on an incident: dismiss it from the log."""
        component = resolution.component
        if self.table.incidents.pop(component, None) is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        yield from self.reply_ok(delivery)

    # ------------------------------------------------------------- protocol

    def describe(self, resolution: ResolvedObject) -> Optional[ObjectDescription]:
        if resolution.ref is self.table:
            return ContextDescription(name="exceptions",
                                      entry_count=len(self.table.incidents))
        if isinstance(resolution.ref, Incident):
            incident = resolution.ref
            return ProcessDescription(
                name=incident.name.decode(), pid_value=incident.reporter_pid,
                program=incident.detail, state=f"faulted:{incident.code}",
                start_time=incident.time)
        return None

    def directory_records(self, context_ref: Any) -> list[ObjectDescription]:
        if context_ref is not self.table:
            return []
        records = []
        for name in sorted(self.table.incidents):
            incident = self.table.incidents[name]
            records.append(ProcessDescription(
                name=name.decode(), pid_value=incident.reporter_pid,
                program=incident.detail, state=f"faulted:{incident.code}",
                start_time=incident.time))
        return records

    def name_of_context(self, context_id: int) -> Optional[bytes]:
        if context_id == int(WellKnownContext.DEFAULT):
            return b""
        return None
