"""The virtual graphics terminal server (paper Sec. 4.3, 6).

The paper's example of *transient* objects: "servers that provide a small
number of transient objects -- for instance, virtual terminal servers -- can
store names and attributes of the objects in memory."  Terminals are created
with TERMINAL_CREATE, named ``vt1``, ``vt2``, ... in a flat context, opened
as file-like display streams, and disappear with the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.core.csnh import CSNHServer
from repro.core.context import WellKnownContext
from repro.core.descriptors import (
    ContextDescription,
    ObjectDescription,
    TerminalDescription,
)
from repro.core.mapping import Leaf, MappingOutcome, ResolvedObject, ResolvedParent
from repro.core.protocol import CSNameHeader
from repro.kernel.ipc import Delivery
from repro.kernel.messages import ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import Scope, ServiceId
from repro.vio.instance import Instance

Gen = Generator[Any, Any, Any]


@dataclass
class VirtualTerminal:
    """One virtual terminal: a scrollback buffer plus geometry."""

    name: bytes
    terminal_id: int
    owner: str
    rows: int = 24
    cols: int = 80
    lines: list[bytes] = field(default_factory=list)

    def display(self, data: bytes) -> None:
        for line in data.split(b"\n"):
            if line:
                self.lines.append(line[: self.cols])
        overflow = len(self.lines) - 1000
        if overflow > 0:
            del self.lines[:overflow]


class TerminalInstance(Instance):
    """An open terminal: writes display, reads return the scrollback."""

    def __init__(self, owner: Pid, terminal: VirtualTerminal) -> None:
        super().__init__(owner, block_size=1024, readable=True, writable=True)
        self.terminal = terminal

    def _image(self) -> bytes:
        return b"\n".join(self.terminal.lines)

    def size_bytes(self) -> int:
        return len(self._image())

    def read_block(self, block: int) -> Gen:
        yield from ()
        image = self._image()
        start = block * self.block_size
        if start >= len(image):
            return ReplyCode.END_OF_FILE, b""
        return ReplyCode.OK, image[start : start + self.block_size]

    def write_block(self, block: int, data: bytes) -> Gen:
        yield from ()
        self.terminal.display(data)
        return ReplyCode.OK, len(data)


class _TerminalTable:
    def __init__(self) -> None:
        self.terminals: dict[bytes, VirtualTerminal] = {}


class _TerminalNameSpace:
    def __init__(self, table: _TerminalTable) -> None:
        self.table = table

    def root(self, context_id: int) -> Optional[_TerminalTable]:
        if context_id == int(WellKnownContext.DEFAULT):
            return self.table
        return None

    def lookup(self, context_ref: Any, component: bytes):
        if context_ref is not self.table:
            return None
        terminal = self.table.terminals.get(component)
        return Leaf(terminal) if terminal is not None else None


class TerminalServer(CSNHServer):
    """Per-workstation virtual terminal service (registered locally)."""

    server_name = "terminalserver"
    service_id = int(ServiceId.TERMINAL)
    service_scope = Scope.LOCAL

    def __init__(self, user: str = "user") -> None:
        super().__init__()
        self.user = user
        self.table = _TerminalTable()
        self._namespace = _TerminalNameSpace(self.table)
        self._counter = 0
        self.contexts.register_well_known(WellKnownContext.DEFAULT, self.table)
        self.register_request_op(RequestCode.TERMINAL_CREATE, self.op_create)
        self.register_request_op(RequestCode.TERMINAL_DRAW, self.op_draw)
        self.register_csname_op(RequestCode.OPEN_FILE, self.op_open_terminal)
        self.register_csname_op(RequestCode.DELETE_NAME, self.op_delete_terminal)

    def namespace(self) -> _TerminalNameSpace:
        return self._namespace

    # ------------------------------------------------------------------- ops

    def op_create(self, delivery: Delivery) -> Gen:
        message = delivery.message
        self._counter += 1
        name = f"vt{self._counter}".encode()
        terminal = VirtualTerminal(
            name=name, terminal_id=self._counter, owner=self.user,
            rows=int(message.get("rows", 24)), cols=int(message.get("cols", 80)))
        self.table.terminals[name] = terminal
        yield from self.reply_ok(delivery, terminal=name.decode(),
                                 terminal_id=terminal.terminal_id)

    def op_draw(self, delivery: Delivery) -> Gen:
        name = delivery.message.get("terminal", "")
        terminal = self.table.terminals.get(str(name).encode())
        if terminal is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        terminal.display(bytes(delivery.message.segment or b""))
        yield from self.reply_ok(delivery)

    def op_open_terminal(self, delivery: Delivery, header: CSNameHeader,
                         resolution: MappingOutcome) -> Gen:
        if not isinstance(resolution, ResolvedObject) or not isinstance(
                resolution.ref, VirtualTerminal):
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        instance = TerminalInstance(delivery.sender, resolution.ref)
        instance_id = self.instances.insert(instance)
        assert self.pid is not None
        yield from self.reply_ok(delivery, instance=instance_id,
                                 block_size=instance.block_size,
                                 server_pid=self.pid.value)

    def op_delete_terminal(self, delivery: Delivery, header: CSNameHeader,
                           resolution: MappingOutcome) -> Gen:
        assert isinstance(resolution, (ResolvedObject, ResolvedParent))
        component = resolution.component
        if self.table.terminals.pop(component, None) is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        yield from self.reply_ok(delivery)

    # -------------------------------------------------------------- protocol

    def describe(self, resolution: ResolvedObject) -> Optional[ObjectDescription]:
        if resolution.ref is self.table:
            return ContextDescription(name="terminals", owner=self.user,
                                      entry_count=len(self.table.terminals))
        if isinstance(resolution.ref, VirtualTerminal):
            return self._record(resolution.ref)
        return None

    def apply_description(self, resolution: ResolvedObject,
                          record: ObjectDescription) -> ReplyCode:
        terminal = resolution.ref
        if not isinstance(terminal, VirtualTerminal) or not isinstance(
                record, TerminalDescription):
            return ReplyCode.BAD_ARGS
        # rows/cols are the mutable fields (a window resize).
        terminal.rows = record.rows
        terminal.cols = record.cols
        return ReplyCode.OK

    def directory_records(self, context_ref: Any) -> list[ObjectDescription]:
        if context_ref is not self.table:
            return []
        return [self._record(self.table.terminals[name])
                for name in sorted(self.table.terminals)]

    @staticmethod
    def _record(terminal: VirtualTerminal) -> TerminalDescription:
        return TerminalDescription(
            name=terminal.name.decode(), terminal_id=terminal.terminal_id,
            rows=terminal.rows, cols=terminal.cols, owner=terminal.owner)

    def name_of_context(self, context_id: int) -> Optional[bytes]:
        if context_id == int(WellKnownContext.DEFAULT):
            return b""
        return None
