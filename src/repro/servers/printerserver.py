"""The printer spooler (paper Sec. 6: "a V kernel-based laser printer server").

Jobs are submitted by opening ``[print]jobname`` for writing and writing the
document bytes; releasing the instance queues the job.  Each queued job is
printed at a fixed page rate, with state transitions (queued -> printing ->
done) visible through the standard query operation and the job-queue context
directory.  The modify operation on a job description supports exactly one
state change -- writing ``state="cancelled"`` -- demonstrating Sec. 5.5's
field-wise modification rule on a non-file object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.core.csnh import CSNHServer
from repro.core.context import WellKnownContext
from repro.core.descriptors import (
    ContextDescription,
    ObjectDescription,
    PrintJobDescription,
)
from repro.core.mapping import Leaf, MappingOutcome, ResolvedObject, ResolvedParent
from repro.core.names import BadName, validate_component
from repro.core.protocol import CSNameHeader
from repro.kernel.ipc import Delay, Delivery, Now
from repro.kernel.messages import ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import ServiceId
from repro.vio.instance import Instance

Gen = Generator[Any, Any, Any]

#: Bytes per printed page and seconds per page (an early laser printer).
PAGE_BYTES = 2048
SECONDS_PER_PAGE = 0.5


@dataclass
class PrintJob:
    name: bytes
    owner: str
    submitted: float = 0.0
    data: bytearray = field(default_factory=bytearray)
    state: str = "receiving"

    @property
    def pages(self) -> int:
        return max(1, -(-len(self.data) // PAGE_BYTES)) if self.data else 0


class PrintJobInstance(Instance):
    """The write stream a client spools a job through."""

    def __init__(self, owner: Pid, job: PrintJob, server: "PrinterServer") -> None:
        super().__init__(owner, block_size=1024, readable=False, writable=True)
        self.job = job
        self.server = server

    def size_bytes(self) -> int:
        return len(self.job.data)

    def write_block(self, block: int, data: bytes) -> Gen:
        yield from ()
        if self.job.state != "receiving":
            return ReplyCode.MODE_ERROR, 0
        start = block * self.block_size
        end = start + len(data)
        if end > len(self.job.data):
            self.job.data.extend(b"\x00" * (end - len(self.job.data)))
        self.job.data[start:end] = data
        return ReplyCode.OK, len(data)

    def release(self) -> Gen:
        """Closing the spool stream queues the job and prints it."""
        self.job.state = "queued"
        yield from self.server.print_job(self.job)


class _JobTable:
    def __init__(self) -> None:
        self.jobs: dict[bytes, PrintJob] = {}


class _JobNameSpace:
    def __init__(self, table: _JobTable) -> None:
        self.table = table

    def root(self, context_id: int) -> Optional[_JobTable]:
        if context_id == int(WellKnownContext.DEFAULT):
            return self.table
        return None

    def lookup(self, context_ref: Any, component: bytes):
        if context_ref is not self.table:
            return None
        job = self.table.jobs.get(component)
        return Leaf(job) if job is not None else None


class PrinterServer(CSNHServer):
    """The shared laser printer."""

    server_name = "printerserver"
    service_id = int(ServiceId.PRINT)

    def __init__(self, user: str = "operator") -> None:
        super().__init__()
        self.user = user
        self.table = _JobTable()
        self._namespace = _JobNameSpace(self.table)
        self.pages_printed = 0
        self.contexts.register_well_known(WellKnownContext.DEFAULT, self.table)
        self.register_csname_op(RequestCode.OPEN_FILE, self.op_open_job)
        self.register_csname_op(RequestCode.DELETE_NAME, self.op_delete_job)
        self.register_request_op(RequestCode.PRINT_STATUS, self.op_status)

    def namespace(self) -> _JobNameSpace:
        return self._namespace

    def map_request(self, delivery: Delivery, header: CSNameHeader) -> Gen:
        code = delivery.message.code
        want_parent = code == int(RequestCode.DELETE_NAME)
        if code == int(RequestCode.OPEN_FILE):
            want_parent = str(delivery.message.get("mode", "r")) != "r"
        return (yield from self.run_mapping(delivery, header,
                                            want_parent=want_parent))

    # ------------------------------------------------------------------ ops

    def op_open_job(self, delivery: Delivery, header: CSNameHeader,
                    resolution: MappingOutcome) -> Gen:
        mode = str(delivery.message.get("mode", "r"))
        if mode == "r":
            yield from self.reply_error(delivery, ReplyCode.MODE_ERROR)
            return
        assert isinstance(resolution, ResolvedParent)
        try:
            component = validate_component(resolution.component)
        except BadName:
            yield from self.reply_error(delivery, ReplyCode.BAD_NAME)
            return
        if component in self.table.jobs:
            yield from self.reply_error(delivery, ReplyCode.NAME_EXISTS)
            return
        now = yield Now()
        job = PrintJob(name=component, owner=self.user, submitted=now)
        self.table.jobs[component] = job
        instance = PrintJobInstance(delivery.sender, job, self)
        instance_id = self.instances.insert(instance)
        assert self.pid is not None
        yield from self.reply_ok(delivery, instance=instance_id,
                                 block_size=instance.block_size,
                                 server_pid=self.pid.value)

    def print_job(self, job: PrintJob) -> Gen:
        """Run the job through the print engine (the server is busy)."""
        if job.state != "queued":
            yield from ()
            return
        job.state = "printing"
        yield Delay(job.pages * SECONDS_PER_PAGE)
        if job.state == "printing":  # may have been cancelled meanwhile
            job.state = "done"
            self.pages_printed += job.pages

    def op_delete_job(self, delivery: Delivery, header: CSNameHeader,
                      resolution: MappingOutcome) -> Gen:
        assert isinstance(resolution, ResolvedParent)
        if self.table.jobs.pop(resolution.component, None) is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        yield from self.reply_ok(delivery)

    def op_status(self, delivery: Delivery) -> Gen:
        states: dict[str, int] = {}
        for job in self.table.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        yield from self.reply_ok(delivery, jobs=len(self.table.jobs),
                                 pages_printed=self.pages_printed, **states)

    # -------------------------------------------------------------- protocol

    def describe(self, resolution: ResolvedObject) -> Optional[ObjectDescription]:
        if resolution.ref is self.table:
            return ContextDescription(name="print-queue", owner=self.user,
                                      entry_count=len(self.table.jobs))
        if isinstance(resolution.ref, PrintJob):
            return self._record(resolution.ref)
        return None

    def apply_description(self, resolution: ResolvedObject,
                          record: ObjectDescription) -> ReplyCode:
        job = resolution.ref
        if not isinstance(job, PrintJob) or not isinstance(
                record, PrintJobDescription):
            return ReplyCode.BAD_ARGS
        if record.state == "cancelled" and job.state in ("queued", "printing"):
            job.state = "cancelled"
            return ReplyCode.OK
        # All other field changes make no sense; ignore them (Sec. 5.5).
        return ReplyCode.OK

    def modify_record(self, context_ref: Any,
                      record: ObjectDescription) -> ReplyCode:
        if context_ref is not self.table:
            return ReplyCode.BAD_ARGS
        job = self.table.jobs.get(record.name.encode())
        if job is None:
            return ReplyCode.NOT_FOUND
        return self.apply_description(
            ResolvedObject(ref=job, is_context=False, parent_ref=self.table,
                           component=record.name.encode(), index=0),
            record)

    def directory_records(self, context_ref: Any) -> list[ObjectDescription]:
        if context_ref is not self.table:
            return []
        return [self._record(self.table.jobs[name])
                for name in sorted(self.table.jobs)]

    @staticmethod
    def _record(job: PrintJob) -> PrintJobDescription:
        return PrintJobDescription(name=job.name.decode(), owner=job.owner,
                                   pages=job.pages, state=job.state,
                                   submitted=job.submitted)

    def name_of_context(self, context_id: int) -> Optional[bytes]:
        if context_id == int(WellKnownContext.DEFAULT):
            return b""
        return None
