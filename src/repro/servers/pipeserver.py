"""The pipe server: pipes as named file-like objects (paper Sec. 3.2).

Pipes are one of the I/O protocol's advertised sources/sinks.  Here they are
*named* transient objects in a flat context: create a pipe by opening
``[pipe]name`` for writing, attach a reader by opening it for reading, and
the ordinary READ/WRITE_INSTANCE operations move the data.

A read on an empty pipe that still has writers answers ``RETRY`` (the V I/O
protocol's flow-control reply) rather than blocking the single-threaded
server; :func:`drain_pipe` shows the client-side retry idiom.  A read on an
empty pipe with no writers is END_OF_FILE.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.core.csnh import CSNHServer
from repro.core.context import WellKnownContext
from repro.core.descriptors import (
    ContextDescription,
    ObjectDescription,
    PipeDescription,
)
from repro.core.mapping import Leaf, MappingOutcome, ResolvedObject, ResolvedParent
from repro.core.names import BadName, validate_component
from repro.core.protocol import CSNameHeader
from repro.kernel.ipc import Delay, Delivery
from repro.kernel.messages import ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import ServiceId
from repro.vio.instance import Instance

Gen = Generator[Any, Any, Any]

#: Maximum bytes a pipe buffers before writers get RETRY.
PIPE_CAPACITY = 16 * 1024


@dataclass
class PipeObject:
    """One pipe: a bounded byte queue plus attachment counts."""

    name: bytes
    chunks: deque = field(default_factory=deque)
    buffered: int = 0
    readers: int = 0
    writers: int = 0

    def push(self, data: bytes) -> bool:
        if self.buffered + len(data) > PIPE_CAPACITY:
            return False
        self.chunks.append(bytes(data))
        self.buffered += len(data)
        return True

    def pull(self, limit: int) -> bytes:
        out = bytearray()
        while self.chunks and len(out) < limit:
            chunk = self.chunks[0]
            take = min(len(chunk), limit - len(out))
            out += chunk[:take]
            if take == len(chunk):
                self.chunks.popleft()
            else:
                self.chunks[0] = chunk[take:]
            self.buffered -= take
        return bytes(out)


class PipeInstance(Instance):
    """One end of a pipe."""

    def __init__(self, owner: Pid, pipe: PipeObject, mode: str) -> None:
        super().__init__(owner, block_size=1024,
                         readable=mode == "r", writable=mode in ("w", "a"))
        self.pipe = pipe
        if self.readable:
            pipe.readers += 1
        if self.writable:
            pipe.writers += 1

    def size_bytes(self) -> int:
        return self.pipe.buffered

    def read_block(self, block: int) -> Gen:
        yield from ()
        if not self.readable:
            return ReplyCode.MODE_ERROR, b""
        data = self.pipe.pull(self.block_size)
        if data:
            return ReplyCode.OK, data
        if self.pipe.writers > 0:
            return ReplyCode.RETRY, b""
        return ReplyCode.END_OF_FILE, b""

    def write_block(self, block: int, data: bytes) -> Gen:
        yield from ()
        if not self.writable:
            return ReplyCode.MODE_ERROR, 0
        if not self.pipe.push(data):
            return ReplyCode.RETRY, 0
        return ReplyCode.OK, len(data)

    def release(self) -> Gen:
        yield from ()
        if self.readable:
            self.pipe.readers -= 1
        if self.writable:
            self.pipe.writers -= 1


class _PipeTable:
    def __init__(self) -> None:
        self.pipes: dict[bytes, PipeObject] = {}


class _PipeNameSpace:
    def __init__(self, table: _PipeTable) -> None:
        self.table = table

    def root(self, context_id: int) -> Optional[_PipeTable]:
        if context_id == int(WellKnownContext.DEFAULT):
            return self.table
        return None

    def lookup(self, context_ref: Any, component: bytes):
        if context_ref is not self.table:
            return None
        pipe = self.table.pipes.get(component)
        return Leaf(pipe) if pipe is not None else None


class PipeServer(CSNHServer):
    """Named pipes behind the standard protocol."""

    server_name = "pipeserver"
    service_id = int(ServiceId.PIPE)

    def __init__(self) -> None:
        super().__init__()
        self.table = _PipeTable()
        self._namespace = _PipeNameSpace(self.table)
        self.contexts.register_well_known(WellKnownContext.DEFAULT, self.table)
        self.register_csname_op(RequestCode.OPEN_FILE, self.op_open_pipe)
        self.register_csname_op(RequestCode.DELETE_NAME, self.op_delete_pipe)

    def namespace(self) -> _PipeNameSpace:
        return self._namespace

    def map_request(self, delivery: Delivery, header: CSNameHeader) -> Gen:
        code = delivery.message.code
        want_parent = code == int(RequestCode.DELETE_NAME)
        if code == int(RequestCode.OPEN_FILE):
            want_parent = str(delivery.message.get("mode", "r")) != "r"
        return (yield from self.run_mapping(delivery, header,
                                            want_parent=want_parent))

    # ------------------------------------------------------------------- ops

    def op_open_pipe(self, delivery: Delivery, header: CSNameHeader,
                     resolution: MappingOutcome) -> Gen:
        mode = str(delivery.message.get("mode", "r"))
        if mode == "r":
            assert isinstance(resolution, ResolvedObject)
            if not isinstance(resolution.ref, PipeObject):
                yield from self.reply_error(delivery, ReplyCode.MODE_ERROR)
                return
            pipe = resolution.ref
        else:
            assert isinstance(resolution, ResolvedParent)
            try:
                component = validate_component(resolution.component)
            except BadName:
                yield from self.reply_error(delivery, ReplyCode.BAD_NAME)
                return
            pipe = self.table.pipes.get(component)
            if pipe is None:
                pipe = PipeObject(name=component)
                self.table.pipes[component] = pipe
        instance = PipeInstance(delivery.sender, pipe, mode)
        instance_id = self.instances.insert(instance)
        assert self.pid is not None
        yield from self.reply_ok(delivery, instance=instance_id,
                                 block_size=instance.block_size,
                                 server_pid=self.pid.value)

    def op_delete_pipe(self, delivery: Delivery, header: CSNameHeader,
                       resolution: MappingOutcome) -> Gen:
        assert isinstance(resolution, ResolvedParent)
        pipe = self.table.pipes.get(resolution.component)
        if pipe is None:
            yield from self.reply_error(delivery, ReplyCode.NOT_FOUND)
            return
        if pipe.readers or pipe.writers:
            yield from self.reply_error(delivery, ReplyCode.BUSY)
            return
        del self.table.pipes[resolution.component]
        yield from self.reply_ok(delivery)

    # -------------------------------------------------------------- protocol

    def describe(self, resolution: ResolvedObject) -> Optional[ObjectDescription]:
        if resolution.ref is self.table:
            return ContextDescription(name="pipes",
                                      entry_count=len(self.table.pipes))
        if isinstance(resolution.ref, PipeObject):
            return self._pipe_record(resolution.ref)
        return None

    def directory_records(self, context_ref: Any) -> list[ObjectDescription]:
        if context_ref is not self.table:
            return []
        return [self._pipe_record(self.table.pipes[name])
                for name in sorted(self.table.pipes)]

    @staticmethod
    def _pipe_record(pipe: PipeObject) -> PipeDescription:
        return PipeDescription(name=pipe.name.decode(),
                               buffered_bytes=pipe.buffered,
                               readers=pipe.readers, writers=pipe.writers)

    def name_of_context(self, context_id: int) -> Optional[bytes]:
        if context_id == int(WellKnownContext.DEFAULT):
            return b""
        return None


def pipe_write(stream, data: bytes) -> Gen:
    """Client helper: push bytes into a pipe stream.

    Pipes are sequential, so the FileStream read-modify-write path does not
    apply; writes go block-op by block-op, retrying when the pipe is full.
    """
    from repro.vio.client import read_block, write_block  # noqa: F401

    view = memoryview(bytes(data))
    while len(view):
        chunk = bytes(view[: stream.block_size])
        code, written = yield from write_block(stream.server, stream.instance,
                                               0, chunk)
        if code is ReplyCode.RETRY:
            yield Delay(0.001)
            continue
        if code is not ReplyCode.OK:
            raise RuntimeError(f"pipe write failed: {code.name}")
        view = view[written:]
    return len(data)


def drain_pipe(stream, poll_interval: float = 0.001,
               max_polls: int = 10_000) -> Gen:
    """Client helper: read a pipe to EOF, retrying on RETRY replies."""
    from repro.vio.client import read_block

    out = bytearray()
    polls = 0
    while True:
        code, data = yield from read_block(stream.server, stream.instance, 0)
        if code is ReplyCode.OK:
            out += data
            polls = 0
        elif code is ReplyCode.RETRY:
            polls += 1
            if polls > max_polls:
                raise RuntimeError("pipe reader starved")
            yield Delay(poll_interval)
        elif code is ReplyCode.END_OF_FILE:
            return bytes(out)
        else:
            raise RuntimeError(f"pipe read failed: {code.name}")
