"""The V executive: a command interpreter over the naming API (paper Sec. 6-7).

"The functionality matches well with our multiple window and executive
system" -- the executive was the V user's shell.  This one implements the
commands the paper's workflow implies, every one a thin veneer over the
uniform protocol:

==============  ============================================================
``cd NAME``     change the current context (NAME_TO_CONTEXT + set current)
``pwd``         inverse-map the current context (with Sec. 6's caveats)
``ls [NAME]``   read a context directory; ``ls NAME PATTERN`` uses the
                Sec. 5.6 pattern extension
``cat NAME``    open + sequential read
``cp A B``      uniform copy (works across servers unnoticed)
``rm NAME``     the uniform Delete -- files, programs, print jobs, ...
``mkdir NAME``  create a sub-context
``define P N``  bind prefix [P] to the context named N
``undefine P``  remove prefix [P]
``run PROG``    start a program via the team service
``print N F``   spool file F as print job N
``mail TO``     deliver a message (ARPA syntax)
==============  ============================================================

The executive is itself an ordinary user program: a generator over kernel
effects, built from a :class:`~repro.runtime.session.Session`.  Output lines
are accumulated so tests and examples can assert on them.
"""

from __future__ import annotations

import shlex
from typing import Any, Callable, Generator, List

from repro.core.descriptors import (
    ContextDescription,
    FileDescription,
    ObjectDescription,
    PrefixDescription,
)
from repro.core.resolver import NameError_
from repro.kernel.ipc import GetPid
from repro.kernel.messages import RequestCode
from repro.kernel.services import Scope, ServiceId
from repro.runtime import files
from repro.runtime.program import run_program
from repro.runtime.session import Session

Gen = Generator[Any, Any, Any]


class ExecutiveError(RuntimeError):
    """A command failed; the message is the user-visible diagnostic."""


class Executive:
    """One interactive session's command interpreter."""

    def __init__(self, session: Session, user: str = "user") -> None:
        self.session = session
        self.user = user
        self.output: List[str] = []

    # ------------------------------------------------------------- plumbing

    def emit(self, line: str) -> None:
        self.output.append(line)

    def execute(self, line: str) -> Gen:
        """Run one command line; appends to :attr:`output`.

        Unknown commands and failed operations produce diagnostics rather
        than exceptions -- an executive keeps running.
        """
        words = shlex.split(line)
        if not words:
            yield from ()
            return
        command, args = words[0], words[1:]
        handler = getattr(self, f"cmd_{command}", None)
        if handler is None:
            self.emit(f"{command}: unknown command")
            return
        try:
            yield from handler(args)
        except NameError_ as err:
            self.emit(f"{command}: {err.name}: {err.code.name}")
        except ExecutiveError as err:
            self.emit(f"{command}: {err}")

    def run_script(self, script: str) -> Gen:
        """Run a newline-separated sequence of commands."""
        for line in script.splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                yield from self.execute(line)

    @staticmethod
    def _need(args: list, count: int, usage: str) -> None:
        if len(args) < count:
            raise ExecutiveError(f"usage: {usage}")

    # ------------------------------------------------------------- commands

    def cmd_cd(self, args: list) -> Gen:
        self._need(args, 1, "cd NAME")
        yield from self.session.chdir(args[0])

    def cmd_pwd(self, args: list) -> Gen:
        result = yield from self.session.current_context_name()
        if result.name is None:
            self.emit(f"pwd: no name for the current context "
                      f"({result.caveat})")
        else:
            self.emit(result.text or "(root)")

    def cmd_ls(self, args: list) -> Gen:
        name = args[0] if args else "."
        pattern = args[1] if len(args) > 1 else None
        records = yield from self.session.list_directory(name,
                                                         pattern=pattern)
        for record in records:
            self.emit(self._render(record))
        if not records:
            self.emit("(empty)")

    def cmd_cat(self, args: list) -> Gen:
        self._need(args, 1, "cat NAME")
        data = yield from files.read_file(self.session, args[0])
        self.emit(data.decode(errors="replace"))

    def cmd_cp(self, args: list) -> Gen:
        self._need(args, 2, "cp SOURCE DESTINATION")
        written = yield from files.copy_file(self.session, args[0], args[1])
        self.emit(f"{written} bytes")

    def cmd_rm(self, args: list) -> Gen:
        self._need(args, 1, "rm NAME")
        yield from self.session.remove(args[0])

    def cmd_mkdir(self, args: list) -> Gen:
        self._need(args, 1, "mkdir NAME")
        yield from self.session.mkdir(args[0])

    def cmd_write(self, args: list) -> Gen:
        """write NAME TEXT...: create a file with contents (test/demo aid)."""
        self._need(args, 2, "write NAME TEXT")
        yield from files.write_file(self.session, args[0],
                                    " ".join(args[1:]).encode())

    def cmd_query(self, args: list) -> Gen:
        self._need(args, 1, "query NAME")
        record = yield from self.session.query(args[0])
        self.emit(self._render(record))

    def cmd_define(self, args: list) -> Gen:
        self._need(args, 2, "define PREFIX NAME")
        pair = yield from self.session.name_to_context(args[1])
        yield from self.session.add_prefix(args[0], pair, replace=True)

    def cmd_undefine(self, args: list) -> Gen:
        self._need(args, 1, "undefine PREFIX")
        yield from self.session.delete_prefix(args[0])

    def cmd_prefixes(self, args: list) -> Gen:
        records = yield from self.session.list_prefixes()
        for record in records:
            self.emit(self._render(record))

    def cmd_run(self, args: list) -> Gen:
        self._need(args, 1, "run PROGRAM [DURATION]")
        team = yield GetPid(int(ServiceId.TEAM), Scope.ANY)
        if team is None:
            raise ExecutiveError("no team server")
        duration = float(args[1]) if len(args) > 1 else 1.0
        name, pid = yield from run_program(team, args[0], duration=duration)
        self.emit(f"[{name}] pid {pid.value:#010x}")

    def cmd_print(self, args: list) -> Gen:
        self._need(args, 2, "print JOBNAME FILE")
        data = yield from files.read_file(self.session, args[1])
        spool = yield from self.session.open(f"[print]{args[0]}", "w")
        yield from spool.write(data)
        yield from spool.close()
        record = yield from self.session.query(f"[print]{args[0]}")
        self.emit(f"{args[0]}: {record.pages} page(s), {record.state}")

    def cmd_mail(self, args: list) -> Gen:
        self._need(args, 2, "mail ADDRESS TEXT")
        reply = yield from self.session.csname_request(
            RequestCode.MAIL_DELIVER, f"[mail]{args[0]}",
            body=" ".join(args[1:]).encode(), **{"from": self.user})
        if not reply.ok:
            raise ExecutiveError(f"delivery failed: {reply.reply_code.name}")
        self.emit(f"delivered to {reply['delivered_to']}@{reply['host']}")

    # ------------------------------------------------------------ rendering

    @staticmethod
    def _render(record: ObjectDescription) -> str:
        if isinstance(record, FileDescription):
            return (f"-  {record.name:<20} {record.size_bytes:>8}  "
                    f"{record.owner}")
        if isinstance(record, ContextDescription):
            return f"d  {record.name:<20} {record.entry_count:>8} entries"
        if isinstance(record, PrefixDescription):
            kind = "generic" if record.generic else "fixed"
            return f"p  [{record.name}] ({kind})"
        return f"?  {record.name}  [{type(record).__name__}]"
