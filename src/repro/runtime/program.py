"""Program loading and execution (paper Sec. 3.1 and 6).

"we are using diskless personal workstations with all file access and
program loading via IPC messages to network file servers" -- loading uses
``MoveTo`` into the requester's memory, which is E2's 64 KB / 338 ms path.
Execution goes through the team server (the "program manager"), which names
running programs as context objects.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.core.names import as_name_bytes
from repro.core.protocol import make_csname_request
from repro.core.resolver import expect_ok
from repro.kernel.ipc import Delay, GetPid, Segment, Send
from repro.kernel.messages import Message, ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.kernel.services import Scope, ServiceId
from repro.runtime.session import Session

Gen = Generator[Any, Any, Any]


def load_program(session: Session, name: str | bytes) -> Gen:
    """Load a program image by CSname; returns its bytes.

    Two steps, as a real loader would do: query the image size, then issue
    LOAD_PROGRAM exposing a buffer that size for the server's ``MoveTo``.
    """
    record = yield from session.query(name)
    size = int(getattr(record, "size_bytes", 0))
    buffer = Segment(size=size, writable=True)

    data = as_name_bytes(name)
    dst, context_id = session.env.route(data)
    yield Delay(session.env.latency.stub_pre)
    request = make_csname_request(RequestCode.LOAD_PROGRAM, data, context_id)
    reply = yield Send(dst, request, buffer)
    yield Delay(session.env.latency.stub_post)
    expect_ok("load_program", name, reply)
    loaded = int(reply.get("size_bytes", 0))
    return buffer.read(0, loaded)


def find_team_server(scope: Scope = Scope.ANY) -> Gen:
    """Locate the program manager via kernel service naming."""
    pid = yield GetPid(int(ServiceId.TEAM), scope)
    return pid


def run_program(team_server: Pid, program: str, duration: float = 0.0,
                body: Optional[Any] = None) -> Gen:
    """Start a program; returns (name, pid) of the running instance."""
    reply = yield Send(team_server, Message.request(
        RequestCode.RUN_PROGRAM, program=program, duration=duration,
        body=body))
    if not reply.ok:
        raise RuntimeError(f"RUN_PROGRAM failed: {reply.reply_code.name}")
    return str(reply["name"]), Pid(int(reply["pid"]))


def kill_program(team_server: Pid, name: str) -> Gen:
    """Kill by low-level operation (the CSname route is session.remove)."""
    reply = yield Send(team_server, Message.request(
        RequestCode.KILL_PROGRAM, name=name))
    if not reply.ok:
        raise RuntimeError(f"KILL_PROGRAM failed: {reply.reply_code.name}")
