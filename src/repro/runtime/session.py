"""Per-program naming state and the CSname-handling routines (paper Sec. 6).

"When a new program is executed, it is passed a process identifier and
context identifier specifying its current context.  It may change this
during the course of execution using a function that is analogous to the
'change directory' function in Unix."

A :class:`Session` is that state plus the stub routines: ``open``, ``chdir``,
``remove``, ``rename``, ``query``, ``list_directory`` and friends, every one
a generator over kernel effects and every one routed through the single
'['-checking common routine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.core.context import ContextPair, WellKnownContext
from repro.core.descriptors import ObjectDescription
from repro.core.inverse import InverseResult, absolute_name
from repro.core.query import list_directory as _list_directory
from repro.core.query import modify_name as _modify_name
from repro.core.query import query_name as _query_name
from repro.core.resolver import (
    NamingEnvironment,
    expect_ok,
    name_to_context as _name_to_context,
    send_csname_request,
)
from repro.kernel.messages import ReplyCode, RequestCode
from repro.kernel.pids import Pid
from repro.net.latency import LatencyModel
from repro.vio.client import FileStream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.namecache import NameCache
    from repro.obs import Observability

Gen = Generator[Any, Any, Any]


class Session:
    """One program's view of the name space."""

    def __init__(self, current: ContextPair, prefix_server: Optional[Pid],
                 latency: LatencyModel,
                 obs: Optional["Observability"] = None,
                 cache: Optional["NameCache"] = None) -> None:
        self.env = NamingEnvironment(current=current,
                                     prefix_server=prefix_server,
                                     latency=latency, obs=obs, cache=cache)

    # ------------------------------------------------------------ properties

    @property
    def current(self) -> ContextPair:
        return self.env.current

    @property
    def prefix_server(self) -> Optional[Pid]:
        return self.env.prefix_server

    # ------------------------------------------------------------------ files

    def open(self, name: str | bytes, mode: str = "r") -> Gen:
        """Open a file-like object by CSname; returns a FileStream."""
        reply = yield from send_csname_request(
            self.env, RequestCode.OPEN_FILE, name, mode=mode)
        expect_ok("open", name, reply)
        return FileStream(server=Pid(int(reply["server_pid"])),
                          instance=int(reply["instance"]),
                          block_size=int(reply["block_size"]))

    def read_file(self, name: str | bytes) -> Gen:
        """Open, read to EOF, and close; returns the object's bytes.

        The one-call read used all over the ``[obs]`` introspection tree
        (``yield from session.read_file("[obs]/hosts/ws1/metrics")``), but
        it works on any readable named object.
        """
        stream = yield from self.open(name)
        try:
            data = yield from stream.read_all()
        finally:
            yield from stream.close()
        return data

    def create(self, name: str | bytes) -> Gen:
        reply = yield from send_csname_request(
            self.env, RequestCode.CREATE_FILE, name)
        expect_ok("create", name, reply)

    def remove(self, name: str | bytes) -> Gen:
        """The paper's uniform Delete(object_name)."""
        reply = yield from send_csname_request(
            self.env, RequestCode.DELETE_NAME, name)
        expect_ok("remove", name, reply)

    def rename(self, name: str | bytes, new_name: str | bytes) -> Gen:
        new = new_name if isinstance(new_name, bytes) else new_name.encode()
        reply = yield from send_csname_request(
            self.env, RequestCode.RENAME_OBJECT, name, new_name=new)
        expect_ok("rename", name, reply)

    # ------------------------------------------------------------- contexts

    def mkdir(self, name: str | bytes) -> Gen:
        reply = yield from send_csname_request(
            self.env, RequestCode.CREATE_CONTEXT, name)
        expect_ok("mkdir", name, reply)

    def rmdir(self, name: str | bytes) -> Gen:
        reply = yield from send_csname_request(
            self.env, RequestCode.DELETE_CONTEXT, name)
        expect_ok("rmdir", name, reply)

    def name_to_context(self, name: str | bytes) -> Gen:
        return (yield from _name_to_context(self.env, name))

    def chdir(self, name: str | bytes) -> Gen:
        """Change the current context (Unix chdir analogue, Sec. 6)."""
        pair = yield from _name_to_context(self.env, name)
        self.env.current = pair
        return pair

    def current_context_name(self) -> Gen:
        """Best-effort absolute name of the current context (Sec. 6)."""
        result: InverseResult = yield from absolute_name(
            self.env, self.current.server, self.current.context_id)
        return result

    # ---------------------------------------------------- queries & listing

    def query(self, name: str | bytes) -> Gen:
        return (yield from _query_name(self.env, name))

    def modify(self, name: str | bytes, record: ObjectDescription) -> Gen:
        return (yield from _modify_name(self.env, name, record))

    def list_directory(self, name: str | bytes = b".",
                       pattern: str | None = None) -> Gen:
        return (yield from _list_directory(self.env, name, pattern=pattern))

    def list_prefixes(self) -> Gen:
        """List the user's context prefixes (the prefix server's directory)."""
        from repro.core.query import read_prefix_records

        return (yield from read_prefix_records(self.env))

    # ------------------------------------------------------ prefix management

    def add_prefix(self, prefix: str, pair: ContextPair,
                   replace: bool = False) -> Gen:
        """Define ``[prefix]`` -> pair in the user's prefix server."""
        reply = yield from send_csname_request(
            self.env, RequestCode.ADD_CONTEXT_NAME, f"[{prefix}]",
            target_pid=pair.server.value, target_context=pair.context_id,
            replace=replace)
        expect_ok("add_prefix", prefix, reply)

    def add_generic_prefix(self, prefix: str, service_id: int,
                           context_id: int = int(WellKnownContext.DEFAULT),
                           replace: bool = False) -> Gen:
        """Define a generic ``[prefix]`` resolved by GetPid at each use."""
        reply = yield from send_csname_request(
            self.env, RequestCode.ADD_CONTEXT_NAME, f"[{prefix}]",
            service_id=int(service_id), target_context=context_id,
            replace=replace)
        expect_ok("add_generic_prefix", prefix, reply)

    def delete_prefix(self, prefix: str) -> Gen:
        reply = yield from send_csname_request(
            self.env, RequestCode.DELETE_CONTEXT_NAME, f"[{prefix}]")
        expect_ok("delete_prefix", prefix, reply)

    # ----------------------------------------------------------- raw escape

    def csname_request(self, code: int, name: str | bytes,
                       **fields: Any) -> Gen:
        """Send an arbitrary CSname request (extensibility escape hatch)."""
        return (yield from send_csname_request(self.env, code, name, **fields))
