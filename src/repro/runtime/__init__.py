"""The client run-time library (paper Sec. 6).

"The system run-time routines provide several types of support for the
system naming conventions" -- a program is handed its current context and
the workstation's context prefix server, and every CSname routine funnels
through the single '['-checking routine in :mod:`repro.core.resolver`.

- :mod:`repro.runtime.session` -- per-program naming state and operations
  (open, chdir, remove, rename, query, list_directory, ...).
- :mod:`repro.runtime.files` -- whole-file conveniences over streams.
- :mod:`repro.runtime.workstation` -- wiring for a standard user
  workstation: context prefix server with the standard prefixes.
- :mod:`repro.runtime.program` -- program loading and execution helpers.
"""

from repro.runtime.session import Session
from repro.runtime.workstation import Workstation, standard_prefixes

__all__ = ["Session", "Workstation", "standard_prefixes"]
