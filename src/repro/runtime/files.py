"""Whole-file conveniences over sessions and streams."""

from __future__ import annotations

from typing import Any, Generator

from repro.runtime.session import Session

Gen = Generator[Any, Any, Any]


def read_file(session: Session, name: str | bytes) -> Gen:
    """Open, read entirely, and close; returns the file's bytes."""
    stream = yield from session.open(name, mode="r")
    try:
        data = yield from stream.read_all()
    finally:
        yield from stream.close()
    return data


def write_file(session: Session, name: str | bytes, data: bytes) -> Gen:
    """Create/truncate and write ``data``; returns bytes written."""
    stream = yield from session.open(name, mode="w")
    try:
        written = yield from stream.write(data)
    finally:
        yield from stream.close()
    return written


def append_file(session: Session, name: str | bytes, data: bytes) -> Gen:
    """Append ``data`` to a (possibly new) file."""
    stream = yield from session.open(name, mode="a")
    try:
        record = yield from session.query(name)
        stream.seek(int(getattr(record, "size_bytes", 0)))
        written = yield from stream.write(data)
    finally:
        yield from stream.close()
    return written


def copy_file(session: Session, source: str | bytes,
              destination: str | bytes) -> Gen:
    """Copy one file to another name -- possibly across servers.

    Because both names resolve through the same uniform protocol, the copy
    works unchanged whether the two names land on one server or two.
    """
    data = yield from read_file(session, source)
    written = yield from write_file(session, destination, data)
    return written
