"""Workstation wiring (paper Sec. 6).

"Each workstation also runs one or more simple local server processes,
including a virtual graphics terminal server, exception server, program
manager, and context prefix server."  And: "Normally these include some
standard context prefixes and some corresponding to the file servers being
used, plus some special contexts within the file servers, such as home
directory, etc."

:func:`setup_workstation` builds the per-user machine; :func:`standard_prefixes`
installs the conventional prefix table against a file server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.context import ContextPair, WellKnownContext
from repro.core.namecache import NameCache
from repro.core.prefix_server import ContextPrefixServer
from repro.kernel.domain import Domain
from repro.kernel.host import Host
from repro.kernel.pids import Pid
from repro.kernel.process import Process
from repro.kernel.services import ServiceId
from repro.runtime.session import Session
from repro.servers.base import ServerHandle, start_server


@dataclass
class Workstation:
    """One user's machine: host + context prefix server."""

    host: Host
    prefix: ServerHandle
    user: str
    default_context: Optional[ContextPair] = None
    extra_servers: list = field(default_factory=list)
    #: Shared client-side binding cache for this workstation's sessions,
    #: or None (the default: uncached, the paper's E4 behaviour).  Enable
    #: with :meth:`enable_name_cache`.
    name_cache: Optional[NameCache] = None

    @property
    def prefix_server(self) -> ContextPrefixServer:
        server = self.prefix.server
        assert isinstance(server, ContextPrefixServer)
        return server

    @property
    def prefix_pid(self) -> Pid:
        return self.prefix.pid

    def session(self, current: Optional[ContextPair] = None) -> Session:
        """A naming session for a program on this workstation."""
        context = current or self.default_context
        if context is None:
            raise ValueError(
                "no current context: pass one or set default_context "
                "(standard_prefixes does this)")
        return Session(current=context, prefix_server=self.prefix_pid,
                       latency=self.host.latency,
                       obs=self.host.domain.obs,
                       cache=self.name_cache)

    def run_program(self, body_factory, name: str = "program") -> Process:
        """Spawn a user program; ``body_factory(session)`` returns its body."""
        return self.host.spawn(body_factory(self.session()), name=name)

    def enable_name_cache(self, getpid_ttl: float = 5.0, max_hints: int = 512,
                          watch_registry: bool = True) -> NameCache:
        """Turn on client-side binding caching for this workstation.

        Every session created afterwards shares one :class:`NameCache`,
        which is attached to the local prefix server for proactive
        delete/rebind notices and (when ``watch_registry`` is true) to the
        domain's registration-removal hub so dead generic bindings drop
        immediately.  ``watch_registry=False`` leaves staleness to the
        optimistic-send recovery path -- what the fault benchmarks exercise.
        """
        if self.name_cache is None:
            domain = self.host.domain
            registry = domain.obs.registry if domain.obs is not None else None
            cache = NameCache(getpid_ttl=getpid_ttl, max_hints=max_hints,
                              registry=registry)
            self.name_cache = cache
            prefix_server = self.prefix_server
            prefix_server.attach_cache(cache)
            if watch_registry:
                domain.on_pid_removed(cache.note_pid_removed)
            # Let the [obs] stat server serve this cache's contents live
            # as [obs]/hosts/<this-host>/namecache.
            domain.name_caches[self.host.host_id] = cache

            def on_crash(crashed: Host) -> None:
                # This machine died, and its cache dies with it: sever the
                # prefix-server attachment and the domain-hub subscription,
                # or invalidation notices keep landing on a dead cache (and
                # the hub entry pins it) forever.  A post-restart
                # enable_name_cache() starts cold, as a rebooted machine
                # would.
                if crashed is not self.host or self.name_cache is not cache:
                    return
                prefix_server.detach_cache(cache)
                domain.off_pid_removed(cache.note_pid_removed)
                if domain.name_caches.get(self.host.host_id) is cache:
                    del domain.name_caches[self.host.host_id]
                cache.clear()
                self.name_cache = None

            domain.on_host_crashed(on_crash)
        return self.name_cache


def setup_workstation(domain: Domain, user: str,
                      name: str | None = None,
                      name_cache: bool = False,
                      obs_namespace: bool = False) -> Workstation:
    """Create a diskless workstation running the user's prefix server.

    ``obs_namespace=True`` deploys the ``[obs]`` introspection name space
    over the whole domain (root obs server on this host, one stat server
    per machine -- idempotent, so only the first workstation's flag wins).
    """
    host = domain.create_host(name or f"ws-{user}")
    prefix = ContextPrefixServer(parse_cpu=domain.latency.prefix_server_cpu,
                                 user=user)
    handle = start_server(host, prefix, name="prefix-server")
    workstation = Workstation(host=host, prefix=handle, user=user)
    if name_cache:
        workstation.enable_name_cache()
    if obs_namespace:
        from repro.servers.statserver import enable_obs_namespace

        enable_obs_namespace(domain, root_host=host)
    return workstation


def standard_prefixes(workstation: Workstation,
                      fileserver: ServerHandle) -> None:
    """Install the conventional prefix table (Sec. 6).

    Fixed prefixes bind into the file server's well-known contexts; generic
    prefixes name services resolved by GetPid at each use ("several of the
    standard, predefined prefixes are of this type").
    """
    prefix = workstation.prefix_server
    fs = fileserver.pid
    prefix.define_prefix("home", ContextPair(fs, int(WellKnownContext.HOME)))
    prefix.define_prefix("bin", ContextPair(fs, int(WellKnownContext.PROGRAMS)))
    prefix.define_prefix("public", ContextPair(fs, int(WellKnownContext.PUBLIC)))
    prefix.define_prefix("tmp", ContextPair(fs, int(WellKnownContext.TEMP)))
    prefix.define_prefix("root", ContextPair(fs, int(WellKnownContext.DEFAULT)))
    prefix.define_generic_prefix("storage", ServiceId.STORAGE,
                                 int(WellKnownContext.DEFAULT))
    prefix.define_generic_prefix("print", ServiceId.PRINT)
    prefix.define_generic_prefix("mail", ServiceId.MAIL)
    prefix.define_generic_prefix("tcp", ServiceId.INTERNET)
    prefix.define_generic_prefix("team", ServiceId.TEAM)
    prefix.define_generic_prefix("terminal", ServiceId.TERMINAL)
    # Introspection: harmless NO_SERVER fault until enable_obs_namespace()
    # has deployed a root obs server somewhere in the domain.
    prefix.define_generic_prefix("obs", ServiceId.OBS)
    workstation.default_context = ContextPair(fs, int(WellKnownContext.HOME))
