"""Time-travel replay + divergence bisection over flight records.

``python -m repro.obs.replay`` re-runs a seeded chaos scenario
(:func:`repro.faults.chaos.run_chaos` with ``flight=True``) under the
deterministic engine, so the flight-record stream *is* the original run --
replay in this simulator is re-execution, bit for bit.  On top of that:

- the default mode renders a **time window** of the run as an interleaved
  multi-host timeline: one lane root per host, one instant span per flight
  record, through the same :func:`repro.obs.report.render_timeline`
  renderer the trace reports use (``--at SEQ`` / ``--around N`` pick the
  window, default: the crash neighbourhood, else the final records);
- ``--verify`` runs the scenario **twice** and diffs the two digest chains;
  identical chains prove the rerun reproduced every recorded kernel event
  (CI's replay smoke), a differing chain names the first divergent window;
- ``--bisect KNOB=A,B`` runs two *variants* (e.g. ``seed=7,8`` or
  ``drop=0.1,0.3``) and reports the **first event seq where behaviour
  forks**, printing both flight records at the fork -- the digest chains
  bracket the divergent window, the retained records pin the exact event;
- ``--postmortem dump.json`` time-travels into a crash dump written by
  ``python -m repro.faults.chaos --flight`` instead of re-running.

Chains are only comparable between runs recorded under the same
instrumentation config (recorder-only vs profiler-attached runs stamp
batched entries differently; see ``sim/engine.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

from repro.obs.flight import (
    KIND_NAMES,
    PHASE_NAMES,
    FlightRecorder,
    compare,
    load_postmortem,
    record_code,
)
from repro.obs.report import render_timeline
from repro.obs.span import Span, SpanContext, build_tree

REPLAY_SCHEMA = 1

#: Scenario knobs ``--bisect`` can fork on, mapped to run_chaos kwargs.
BISECT_KNOBS = {
    "seed": ("seed", int),
    "duration": ("duration", float),
    "drop": ("drop", float),
    "dup": ("dup", float),
    "delay-rate": ("delay_rate", float),
}


def replay(seed: int = 7, duration: float = 5.0, drop: float = 0.10,
           dup: float = 0.02, delay_rate: float = 0.05,
           crash: bool = True) -> "FlightRecorder":
    """Re-run the seeded chaos scenario; its finalized flight recorder.

    Determinism does the heavy lifting: the same knobs drive the same
    engine timeline, so the recorder that comes back holds the same
    records, digests and postmortems as the original run's.
    """
    from repro.faults.chaos import run_chaos

    report = run_chaos(seed=seed, duration=duration, drop=drop, dup=dup,
                       delay_rate=delay_rate, crash=crash, flight=True)
    return report.recorder


# ------------------------------------------------------------- timelines


def window_records(recorder: "FlightRecorder", at: Optional[int] = None,
                   at_time: Optional[float] = None,
                   around: int = 12) -> dict[str, list[tuple]]:
    """Per-host retained records inside a window.

    ``at`` centres on an event seq (``around`` records of slack each side,
    per host).  ``at_time`` centres on a simulated instant instead: the
    last ``around`` records at or before it plus the first ``around``
    after, per host -- the crash neighbourhood.  (Record seqs stamp the
    *scheduling* order of the causing event, not firing order, so a seq
    window near a long-armed timer would show the run's opening moves --
    time is the right axis for "what was happening when it died".)
    ``None``/``None`` takes the last ``around`` records per host.
    """
    picked: dict[str, list[tuple]] = {}
    for host in recorder.hosts():
        records = recorder.records(host)
        if at is not None:
            chosen = [r for r in records if abs(r[0] - at) <= around]
        elif at_time is not None:
            before = [r for r in records if r[1] <= at_time]
            after = [r for r in records if r[1] > at_time]
            chosen = before[-around:] + after[:around]
        else:
            chosen = records[-around:]
        if chosen:
            picked[host] = chosen
    return picked


def timeline_spans(picked: dict[str, list[tuple]]) -> list[Span]:
    """Flight records as pseudo-spans: one lane root per host.

    Each record becomes an instant span (start == end) under its host's
    lane root, so :func:`repro.obs.report.render_timeline` renders the
    interleaved multi-host window exactly like a trace report.
    """
    spans: list[Span] = []
    next_id = 1
    t_lo = min(r[1] for records in picked.values() for r in records)
    t_hi = max(r[1] for records in picked.values() for r in records)
    for host in sorted(picked):
        records = picked[host]
        root_id = next_id
        next_id += 1
        spans.append(Span(name=f"lane {host}",
                          context=SpanContext(trace_id=1, span_id=root_id),
                          start=t_lo, end=t_hi, actor=host))
        for seq, t, kind, src, dst, txn in records:
            label = f"#{seq} {KIND_NAMES[kind]} {src}->{dst}"
            if txn:
                label += f" txn={txn}"
            spans.append(Span(
                name=label,
                context=SpanContext(trace_id=1, span_id=next_id,
                                    parent_id=root_id),
                start=t, end=t, actor=host,
                attrs={"seq": seq, "phase": PHASE_NAMES[kind]}))
            next_id += 1
    return spans


def render_window(recorder: "FlightRecorder", at: Optional[int] = None,
                  at_time: Optional[float] = None,
                  around: int = 12) -> str:
    """One interleaved multi-host timeline for a seq or time window."""
    picked = window_records(recorder, at=at, at_time=at_time, around=around)
    if not picked:
        return "(no flight records in window)"
    return render_timeline(build_tree(timeline_spans(picked)))


class _DumpLane:
    """A loaded postmortem dump wearing the recorder's read interface."""

    def __init__(self, dump: dict) -> None:
        self._dump = dump
        # Dumps store named records; rebuild the recorder's numeric
        # tuples (the phase disambiguates "reply" packet vs effect).
        self._records = [
            (r["seq"], r["t"], record_code(r["kind"], r.get("phase", "")),
             r["src"], r["dst"], r["txn"])
            for r in dump.get("records", [])]

    def hosts(self) -> list[str]:
        return [self._dump.get("host", "?")]

    def records(self, host: str) -> list[tuple]:
        return list(self._records)

    def chain(self, host: str) -> list[tuple]:
        return [(c["window"], c["end_seq"], c["end_t"], int(c["digest"], 16))
                for c in self._dump.get("chain", [])]


# --------------------------------------------------------------- verdicts


def default_focus(recorder: "FlightRecorder") -> Optional[float]:
    """The instant to centre the default timeline on: the first freeze."""
    freezes = [dump.get("frozen_t")
               for dumps in recorder.postmortems.values() for dump in dumps
               if dump.get("frozen_t") is not None]
    return min(freezes) if freezes else None


def summary_lines(recorder: "FlightRecorder") -> list[str]:
    lines = []
    for host in recorder.hosts():
        snap = recorder.snapshot(host)
        chain = recorder.chain(host)
        head = f"{chain[-1][3]:016x}" if chain else "-"
        frozen = len(recorder.postmortems.get(host, ()))
        lines.append(
            f"  {host:<10} {snap['records_seen']:>6} records "
            f"({snap['dropped']} dropped), {len(chain)} windows, "
            f"chain head {head}"
            + (f", {frozen} postmortem(s)" if frozen else ""))
    return lines


def render_verdict(verdict: dict) -> str:
    if verdict["identical"]:
        return "digest chains identical -- runs are bit-identical"
    lines = ["digest chains DIVERGE:"]
    for host, entry in sorted(verdict["hosts"].items()):
        if entry["chains_equal"] and "fork_index" not in entry:
            lines.append(f"  {host}: identical")
            continue
        window = entry.get("first_divergent_window")
        lines.append(f"  {host}: first divergent window "
                     f"{window if window is not None else '(records only)'}")
    fork = verdict.get("fork")
    if fork:
        lines.append(f"fork: event seq {fork['seq']} on {fork['host']}")
        for side in ("a", "b"):
            record = fork[side]
            lines.append(f"  run {side}: "
                         + (json.dumps(record, sort_keys=True)
                            if record else "(no record -- stream ended)"))
    return "\n".join(lines)


def parse_bisect(spec: str) -> tuple[str, Any, Any]:
    """``knob=a,b`` -> (run_chaos kwarg, value_a, value_b)."""
    try:
        knob, values = spec.split("=", 1)
        raw_a, raw_b = values.split(",", 1)
        kwarg, cast = BISECT_KNOBS[knob.strip()]
        return kwarg, cast(raw_a), cast(raw_b)
    except KeyError:
        raise ValueError(
            f"unknown bisect knob {spec.split('=', 1)[0]!r}; "
            f"one of: {', '.join(sorted(BISECT_KNOBS))}") from None
    except ValueError as err:
        if "unknown bisect knob" in str(err):
            raise
        raise ValueError(
            f"--bisect wants knob=a,b (e.g. seed=7,8), got {spec!r}"
        ) from None


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.replay",
        description="Deterministically re-run a seeded chaos scenario and "
                    "time-travel through its flight records; verify or "
                    "bisect divergence between two runs.")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--drop", type=float, default=0.10)
    parser.add_argument("--dup", type=float, default=0.02)
    parser.add_argument("--delay-rate", type=float, default=0.05)
    parser.add_argument("--no-crash", action="store_true")
    parser.add_argument("--at", type=int, default=None,
                        help="centre the timeline window on this event seq "
                             "(default: the crash freeze, else the tail)")
    parser.add_argument("--around", type=int, default=12,
                        help="records of context each side of --at")
    parser.add_argument("--verify", action="store_true",
                        help="run the scenario twice and diff the digest "
                             "chains; nonzero exit on any divergence")
    parser.add_argument("--bisect", metavar="KNOB=A,B", default=None,
                        help="run two variants (seed=7,8, drop=0.1,0.3 ...) "
                             "and report the first event seq where their "
                             "behaviour forks, with both flight records")
    parser.add_argument("--postmortem", metavar="DUMP", default=None,
                        help="time-travel into a postmortem dump file "
                             "instead of re-running the scenario")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    args = parser.parse_args(argv)

    knobs = dict(seed=args.seed, duration=args.duration, drop=args.drop,
                 dup=args.dup, delay_rate=args.delay_rate,
                 crash=not args.no_crash)

    if args.postmortem:
        dump = load_postmortem(args.postmortem)
        lane = _DumpLane(dump)
        if args.json:
            print(json.dumps({"kind": "flight-postmortem",
                              "schema": REPLAY_SCHEMA, **dump},
                             indent=2, sort_keys=True))
            return 0
        host = lane.hosts()[0]
        print(f"postmortem: host {host} frozen at "
              f"t={dump.get('frozen_t')} seq={dump.get('frozen_seq')} "
              f"({dump.get('records_seen')} records seen, "
              f"{dump.get('dropped')} dropped)")
        picked = {host: lane.records(host)[-args.around * 2:]
                  if args.at is None else
                  [r for r in lane.records(host)
                   if abs(r[0] - args.at) <= args.around]}
        if picked[host]:
            print()
            print(render_timeline(build_tree(timeline_spans(picked))))
        return 0

    if args.bisect:
        try:
            kwarg, value_a, value_b = parse_bisect(args.bisect)
        except ValueError as err:
            parser.error(str(err))
        recorder_a = replay(**{**knobs, kwarg: value_a})
        recorder_b = replay(**{**knobs, kwarg: value_b})
        verdict = compare(recorder_a, recorder_b)
        if args.json:
            print(json.dumps({"kind": "flight-bisect",
                              "schema": REPLAY_SCHEMA,
                              "knob": kwarg, "a": value_a, "b": value_b,
                              **verdict}, indent=2, sort_keys=True))
        else:
            print(f"bisect {kwarg}: {value_a} vs {value_b}")
            print(render_verdict(verdict))
            fork = verdict.get("fork")
            if fork:
                print()
                print(f"timeline around seq {fork['seq']} (run a):")
                print(render_window(recorder_a, at=fork["seq"],
                                    around=args.around))
        # A bisect that finds no fork is itself a verdict, not a failure.
        return 0

    recorder = replay(**knobs)
    if args.verify:
        rerun = replay(**knobs)
        verdict = compare(recorder, rerun)
        if args.json:
            print(json.dumps({"kind": "flight-verify",
                              "schema": REPLAY_SCHEMA, "scenario": knobs,
                              **verdict}, indent=2, sort_keys=True))
        else:
            print(f"replayed seed={args.seed} twice "
                  f"({args.duration}s simulated):")
            print("\n".join(summary_lines(recorder)))
            print(render_verdict(verdict))
        return 0 if verdict["identical"] else 1

    if args.json:
        document = {
            "kind": "flight-replay", "schema": REPLAY_SCHEMA,
            "scenario": knobs,
            "hosts": {host: recorder.snapshot(host)
                      for host in recorder.hosts()},
            "postmortems": {host: len(dumps) for host, dumps in
                            sorted(recorder.postmortems.items())},
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(f"replayed chaos scenario seed={args.seed} "
          f"({args.duration}s simulated):")
    print("\n".join(summary_lines(recorder)))
    print()
    if args.at is not None:
        print(f"interleaved timeline (around seq {args.at}):")
        print(render_window(recorder, at=args.at, around=args.around))
    else:
        focus = default_focus(recorder)
        where = (f"around the crash at t={focus:.3f}s"
                 if focus is not None else "tail of the flight")
        print(f"interleaved timeline ({where}):")
        print(render_window(recorder, at_time=focus, around=args.around))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
