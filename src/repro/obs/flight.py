"""Deterministic flight recorder: bounded per-host black boxes + digests.

The live observability stack (spans, ``[obs]``, telemetry) answers "what is
the system doing *now*"; this module answers "what was it doing when things
went wrong, and where did two runs first part ways" -- the forensic layer.

Each host gets a *lane*: a bounded ring of compact flight records fed from
the kernel's Send/Forward/Reply/complete/packet paths, each stamped with the
engine event that caused it.  A record is a plain all-numeric tuple::

    (seq, t, kind, src, dst, txn)

- ``seq``  -- engine sequence number of the firing event (``Engine._fire_seq``,
  maintained by the recording dispatch variants; see ``sim/engine.py``);
- ``t``    -- simulated time of the record;
- ``kind`` -- a small code from :data:`KIND_NAMES`: what happened
  (``send``/``reply``/``forward``/``complete`` or an arriving packet kind);
- ``src``/``dst`` -- 32-bit pid values (0 when not applicable);
- ``txn``  -- kernel transaction id (0 when not applicable).

The resolution-phase label the profiler vocabulary uses (``phase:send``,
``phase:packet`` ...) is a pure function of ``kind`` and is re-derived at
export time (:func:`record_dict`) rather than stored.

**The hot path is a bound C call, not a method.**  When a recorder is
attached, every host carries ``host._flight_append`` -- its lane tail's
bound ``list.append``.  A kernel record site is one attribute load, a
tuple build, and one C call; no Python frame is entered per record.  Window
sealing (and therefore digesting) happens *off* the record path: the
engine's recording run loop calls :meth:`FlightRecorder.flush` every couple
thousand events, which moves full windows out of the tails.  Because a seal
always consumes exactly ``window`` records, the chain is a pure function of
the record stream -- flush timing cannot perturb it.

Determinism is the whole point: every field is a pure function of the seed,
so the record stream is byte-identical across same-seed runs.  To compare
two runs without shipping both streams, each lane maintains a **digest
chain**: every ``window`` records the lane seals the oldest window with
``hash((prev_digest, window_records))`` and appends ``(window_index,
end_seq, end_t, digest)`` to its chain.  Chaining makes window ``n``'s
digest depend on every record since the lane was born, so the *first*
differing chain entry brackets the first divergent record even after the
ring has dropped the records themselves.  Records are all-numeric
tuples, and Python's numeric/tuple hashing does not consult
``PYTHONHASHSEED`` (only str/bytes hashing is randomized), so the digests
are deterministic across processes -- and one C-level tuple hash per window
amortizes to a few ns per record, which is what keeps an attached recorder
inside the E15/E17 <=2% observer-effect budget.

On :meth:`Host.crash` the host's lane is frozen into a postmortem dump (a
JSON-ready snapshot of the ring + chain at the instant of death) without
disturbing the live lane; live lanes are served as JSONL at
``[obs]/hosts/<host>/flightlog`` through the paper's own protocol (see
``obs/introspect.py`` / ``servers/statserver.py``).  Replay and divergence
bisection over these chains live in :mod:`repro.obs.replay`.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.domain import Domain
    from repro.kernel.host import Host

#: Version stamp on every exported flightlog / postmortem document.
FLIGHT_SCHEMA = 1

#: Default ring capacity (records kept per host) and digest window.
DEFAULT_CAPACITY = 4096
DEFAULT_WINDOW = 256

#: Field names of one exported record, in order (see :func:`record_dict`;
#: ``phase`` is derived from ``kind``, not stored).
RECORD_FIELDS = ("seq", "t", "kind", "src", "dst", "txn", "phase")

#: Kind codes for the kernel's IPC record sites.
KIND_SEND = 0
KIND_COMPLETE = 1
KIND_REPLY = 2
KIND_FORWARD = 3

#: First packet-kind code; arriving packets record ``PACKET_BASE + index``
#: for their :class:`~repro.kernel.messages.PacketKind` (definition order).
PACKET_BASE = 4

#: Packet-kind names in PacketKind definition order -- a static copy so
#: this module (and postmortem dumps) decode without a kernel import.
#: ``tests/obs/test_flight.py`` pins this against the real enum.
_PACKET_NAMES = (
    "request", "reply", "nack", "probe", "probe_ok", "probe_forwarded",
    "probe_missing", "getpid_query", "getpid_response", "group_request",
    "move_data", "move_request", "move_response",
)

#: Code -> display name.  Note packet REPLY shares the name ``reply`` with
#: the Reply-effect kind (as the V wire does); their phases differ.
KIND_NAMES = ("send", "complete", "reply", "forward", *_PACKET_NAMES)

#: Code -> resolution-phase label (the profiler's phase vocabulary).
PHASE_PACKET = "phase:packet"
PHASE_NAMES = ("phase:send", "phase:complete", "phase:reply",
               "phase:forward", *(PHASE_PACKET,) * len(_PACKET_NAMES))

#: Name -> code, first occurrence wins (the IPC-effect codes).
KIND_CODES: dict = {}
for _code, _name in enumerate(KIND_NAMES):
    KIND_CODES.setdefault(_name, _code)
_PACKET_CODES = {name: PACKET_BASE + index
                 for index, name in enumerate(_PACKET_NAMES)}
del _code, _name

#: Digests are 64-bit: Python hashes masked to an unsigned word.
_DIGEST_MASK = 0xFFFFFFFFFFFFFFFF


def record_code(kind: str, phase: str = "") -> int:
    """Kind name (+ disambiguating phase) -> stored kind code.

    The phase matters only for ``reply``, which names both the Reply
    effect (``phase:reply``) and the arriving REPLY packet
    (``phase:packet``).
    """
    if phase == PHASE_PACKET:
        return _PACKET_CODES[kind]
    return KIND_CODES[kind]


def record_dict(record: tuple) -> dict:
    """One stored record tuple as a JSON-ready dict (names + phase)."""
    seq, t, kind, src, dst, txn = record
    return {"seq": seq, "t": t, "kind": KIND_NAMES[kind], "src": src,
            "dst": dst, "txn": txn, "phase": PHASE_NAMES[kind]}


def chain_dict(entry: tuple) -> dict:
    """One digest-chain entry ``(window, end_seq, end_t, digest)`` as a dict."""
    window, end_seq, end_t, digest = entry
    return {"window": window, "end_seq": end_seq, "end_t": end_t,
            "digest": f"{digest:016x}"}


class _Lane:
    """One host's black box: ring + unsealed tail + digest chain.

    ``tail`` is a *stable* list object -- the host's bound
    ``_flight_append`` points at it for the lane's whole life, so sealing
    must slice-delete from it (``del tail[:window]``), never rebind it.
    """

    __slots__ = ("host", "ring", "tail", "chain", "sealed", "crc")

    def __init__(self, host: str, capacity: int) -> None:
        self.host = host
        #: Sealed records, oldest dropped first once capacity is reached.
        self.ring: deque = deque(maxlen=capacity)
        #: Records not yet sealed into a window (the hot append target).
        self.tail: list = []
        #: Sealed windows: (window_index, end_seq, end_t, digest) tuples.
        self.chain: list = []
        #: Records sealed into windows so far (ring drops don't forget).
        self.sealed = 0
        #: Running digest carried across windows -- the chain in "hash chain".
        self.crc = 0

    @property
    def seen(self) -> int:
        """Total records ever fed to this lane."""
        return self.sealed + len(self.tail)

    @property
    def dropped(self) -> int:
        return self.sealed - len(self.ring)


class FlightRecorder:
    """Bounded per-host flight-record lanes with rolling digest chains.

    Attach via :func:`enable_flight_recorder`; every host is then handed
    its lane tail's bound ``list.append`` as ``host._flight_append`` (see
    :meth:`bind`), which is both the kernel record sites' gate and their
    sink.  A domain without a recorder pays one attribute read per site
    and nothing else.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 window: int = DEFAULT_WINDOW) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.capacity = capacity
        self.window = window
        self._lanes: dict[str, _Lane] = {}
        #: Postmortem dumps by host name, in crash order (a host can die
        #: more than once across restarts).
        self.postmortems: dict[str, list[dict]] = {}

    # -------------------------------------------------------------- capture

    def _lane(self, host: str) -> _Lane:
        lane = self._lanes.get(host)
        if lane is None:
            lane = self._lanes[host] = _Lane(host, self.capacity)
        return lane

    def bind(self, host: "Host") -> None:
        """Hand ``host`` its lane's bound tail append -- the hot path.

        Called by :func:`enable_flight_recorder` for existing hosts and by
        ``Host.__init__`` for hosts born under an attached recorder.  The
        binding survives crash/restart (same kernel object, same lane).
        """
        host._flight_append = self._lane(host.name).tail.append

    def record(self, host: "Host", kind, src: int, dst: int,
               txn: int, phase: str = "") -> None:
        """Append one flight record for ``host`` -- the readable path.

        Kernel sites bypass this method entirely (they call the bound
        append from :meth:`bind` with an inline-built tuple); this is the
        equivalent single-record entry point for tests and tooling.
        ``kind`` may be a name or a code; ``seq``/``t`` are read off the
        engine, exactly as the kernel sites do.
        """
        engine = host.engine
        lane = self._lane(host.name)
        code = record_code(kind, phase) if isinstance(kind, str) else kind
        lane.tail.append(
            (engine._fire_seq, engine._now, code, src, dst, txn))
        if len(lane.tail) >= self.window:
            self._seal(lane, self.window)

    def _seal(self, lane: _Lane, count: int) -> None:
        """Seal the oldest ``count`` tail records: chain digest, ring them.

        ``count`` is ``window`` except for the final partial window at
        :meth:`finalize`.  The digest folds the previous digest with the
        window's records through one C-level tuple hash (deterministic:
        all-numeric tuples never touch string hash randomization).
        """
        tail = lane.tail
        chunk = tail[:count]
        del tail[:count]
        digest = hash((lane.crc, tuple(chunk))) & _DIGEST_MASK
        lane.crc = digest
        last = chunk[-1]
        lane.chain.append((len(lane.chain), last[0], last[1], digest))
        lane.ring.extend(chunk)
        lane.sealed += len(chunk)

    def _drain(self, lane: _Lane) -> None:
        window = self.window
        while len(lane.tail) >= window:
            self._seal(lane, window)

    def flush(self) -> None:
        """Seal every full window in every lane.

        The engine's recording run loop calls this every couple thousand
        events, which is what bounds tail growth and amortizes digesting
        off the record path.  Seals consume exactly ``window`` records, so
        chains (and every read below, all of which drain first) are
        independent of *when* flushes happen.
        """
        window = self.window
        for lane in self._lanes.values():
            if len(lane.tail) >= window:
                self._drain(lane)

    def finalize(self) -> None:
        """Seal every tail, including final partial windows (end of run).

        Two identical runs finalize to identical chains even when their
        record counts are not multiples of the window.  Idempotent: empty
        tails are skipped, so a second call changes nothing.
        """
        for lane in self._lanes.values():
            self._drain(lane)
            if lane.tail:
                self._seal(lane, len(lane.tail))

    # ------------------------------------------------------------ inspection

    def hosts(self) -> list[str]:
        return sorted(self._lanes)

    def records(self, host: str) -> list[tuple]:
        """All retained records for ``host`` (sealed ring + open tail)."""
        lane = self._lanes.get(host)
        if lane is None:
            return []
        self._drain(lane)
        return list(lane.ring) + list(lane.tail)

    def chain(self, host: str) -> list[tuple]:
        """The sealed digest chain for ``host``."""
        lane = self._lanes.get(host)
        if lane is None:
            return []
        self._drain(lane)
        return list(lane.chain)

    def chains(self) -> dict[str, list[tuple]]:
        return {name: self.chain(name) for name in self._lanes}

    def stats(self, host: str) -> dict:
        """Lane accounting only -- no record materialization.

        ``snapshot`` builds JSON dicts for every retained record; summaries
        (the chaos report, bench tables) want just the counters.
        """
        lane = self._lanes.get(host)
        if lane is None:
            return {"records_seen": 0, "dropped": 0, "windows": 0}
        self._drain(lane)
        return {"records_seen": lane.seen, "dropped": lane.dropped,
                "windows": len(lane.chain)}

    def snapshot(self, host: str) -> dict:
        """JSON-ready live view of one lane (the ``[obs]`` flightlog leaf)."""
        lane = self._lanes.get(host)
        if lane is None:
            return {"host": host, "schema": FLIGHT_SCHEMA, "records_seen": 0,
                    "dropped": 0, "capacity": self.capacity,
                    "window": self.window, "records": [], "chain": []}
        self._drain(lane)
        return {
            "host": host,
            "schema": FLIGHT_SCHEMA,
            "records_seen": lane.seen,
            "dropped": lane.dropped,
            "capacity": self.capacity,
            "window": self.window,
            "records": [record_dict(r) for r in self.records(host)],
            "chain": [chain_dict(c) for c in lane.chain],
        }

    # ------------------------------------------------------------ postmortem

    def freeze(self, host: "Host") -> dict:
        """Freeze ``host``'s lane into a postmortem dump (crash time).

        The live lane keeps recording if the host restarts; the dump is
        the black box recovered from the wreck.  Full windows are sealed
        first, so the dump's chain is the same whatever the flush cadence
        was; a partial tail gets a *provisional* seal in the dump only
        (the same digest :meth:`finalize` would produce had the run ended
        here), so every black box carries a chain covering all its
        records even when the host died inside its first window -- the
        live lane is left unsealed and keeps its own window cadence.
        Records and chain are frozen as raw tuples -- crash time is
        *inside* the measured run, so the dump is copied in a few C calls
        and only converted to named JSON form by :func:`export_dump` when
        actually written or served.
        """
        lane = self._lanes.get(host.name)
        chain = []
        if lane is not None:
            self._drain(lane)
            chain = list(lane.chain)
            if lane.tail:
                tail = tuple(lane.tail)
                digest = hash((lane.crc, tail)) & _DIGEST_MASK
                chain.append((len(chain), tail[-1][0], tail[-1][1], digest))
        dump = {
            "kind": "postmortem",
            "schema": FLIGHT_SCHEMA,
            "host": host.name,
            "frozen_t": host.engine.now,
            "frozen_seq": host.engine._fire_seq,
            "records_seen": lane.seen if lane else 0,
            "dropped": lane.dropped if lane else 0,
            "records": self.records(host.name),
            "chain": chain,
        }
        self.postmortems.setdefault(host.name, []).append(dump)
        return dump


# ------------------------------------------------------------------ wiring


def enable_flight_recorder(domain: "Domain",
                           capacity: int = DEFAULT_CAPACITY,
                           window: int = DEFAULT_WINDOW) -> FlightRecorder:
    """Attach a flight recorder to ``domain`` (idempotent).

    Installs the engine's recording dispatch variants (``_fire_seq``
    maintenance + periodic flush), publishes the recorder at
    ``domain.flight``, and hands every existing host its lane's bound
    append (hosts created later bind themselves in ``Host.__init__``).
    """
    if domain.flight is None:
        recorder = FlightRecorder(capacity=capacity, window=window)
        domain.flight = recorder
        domain.engine.attach_recorder(recorder)
        for host in domain.hosts.values():
            recorder.bind(host)
    return domain.flight


def disable_flight_recorder(domain: "Domain") -> None:
    """Detach and discard ``domain``'s flight recorder, if any."""
    recorder = domain.flight
    if recorder is not None:
        domain.engine.detach_recorder(recorder)
        domain.flight = None
        for host in domain.hosts.values():
            host._flight_append = None


# ------------------------------------------------------------- divergence


def chain_divergence(chain_a: list, chain_b: list) -> Optional[int]:
    """Index of the first differing digest-chain entry, or None if equal.

    A length mismatch with an equal shared prefix diverges at the first
    missing entry (one run simply recorded more windows).
    """
    for index, (a, b) in enumerate(zip(chain_a, chain_b)):
        if a != b:
            return index
    if len(chain_a) != len(chain_b):
        return min(len(chain_a), len(chain_b))
    return None


def record_divergence(records_a: list, records_b: list) -> Optional[tuple]:
    """First position where two record streams disagree.

    Returns ``(index, record_a, record_b)`` with ``None`` standing in for
    the missing side when one stream is a strict prefix of the other, or
    ``None`` when the streams are identical.
    """
    for index, (a, b) in enumerate(zip(records_a, records_b)):
        if a != b:
            return index, a, b
    if len(records_a) != len(records_b):
        index = min(len(records_a), len(records_b))
        longer = records_a if len(records_a) > len(records_b) else records_b
        extra = longer[index]
        if longer is records_a:
            return index, extra, None
        return index, None, extra
    return None


def compare(recorder_a: FlightRecorder,
            recorder_b: FlightRecorder) -> dict:
    """Full divergence verdict between two finalized recorders.

    Per host: the first divergent chain window (digest comparison) and,
    where records are still retained, the exact fork -- the first record
    pair that disagrees.  The overall ``fork`` is the lowest-seq fork
    across hosts: the first event where the two runs' behaviour split.
    """
    hosts = sorted(set(recorder_a.hosts()) | set(recorder_b.hosts()))
    verdict: dict[str, Any] = {"identical": True, "hosts": {}, "fork": None}
    best: Optional[tuple] = None  # (fork_seq, host, index, rec_a, rec_b)
    for host in hosts:
        window = chain_divergence(recorder_a.chain(host),
                                  recorder_b.chain(host))
        fork = record_divergence(recorder_a.records(host),
                                 recorder_b.records(host))
        entry: dict[str, Any] = {
            "chains_equal": window is None,
            "first_divergent_window": window,
        }
        if fork is not None:
            index, rec_a, rec_b = fork
            entry["fork_index"] = index
            entry["fork_a"] = record_dict(rec_a) if rec_a else None
            entry["fork_b"] = record_dict(rec_b) if rec_b else None
            fork_seq = min(r[0] for r in (rec_a, rec_b) if r is not None)
            entry["fork_seq"] = fork_seq
            if best is None or fork_seq < best[0]:
                best = (fork_seq, host, index, rec_a, rec_b)
        if window is not None or fork is not None:
            verdict["identical"] = False
        verdict["hosts"][host] = entry
    if best is not None:
        fork_seq, host, index, rec_a, rec_b = best
        verdict["fork"] = {
            "host": host,
            "seq": fork_seq,
            "index": index,
            "a": record_dict(rec_a) if rec_a else None,
            "b": record_dict(rec_b) if rec_b else None,
        }
    return verdict


# ----------------------------------------------------------------- dumps


def export_dump(dump: dict) -> dict:
    """A postmortem dump with records/chain in named JSON form.

    :meth:`FlightRecorder.freeze` keeps raw tuples (crash time is inside
    the measured run); exporting converts them.  Idempotent: dumps loaded
    back from disk are already named.
    """
    records = dump.get("records", [])
    if records and not isinstance(records[0], dict):
        dump = dict(dump)
        dump["records"] = [record_dict(r) for r in records]
        dump["chain"] = [chain_dict(c) for c in dump.get("chain", [])]
    return dump


def write_postmortem(path: str, dump: dict) -> None:
    """Write one postmortem dump as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(export_dump(dump), fh, indent=2, sort_keys=True)
        fh.write("\n")


def dump_postmortems(recorder: FlightRecorder, directory: str,
                     seed: Optional[int] = None) -> list[str]:
    """Write every lane's black box under ``directory``; the paths written.

    Crash-frozen dumps go out as recorded (one file per crash); hosts that
    never crashed get an end-of-run dump built from their live lane, so an
    invariant failure always yields a complete set of black boxes.
    """
    os.makedirs(directory, exist_ok=True)
    tag = f"seed{seed}-" if seed is not None else ""
    paths = []
    for host in recorder.hosts():
        dumps = recorder.postmortems.get(host)
        if not dumps:
            snap = recorder.snapshot(host)
            dumps = [{"kind": "postmortem", "schema": FLIGHT_SCHEMA,
                      "host": host, "frozen_t": None, "frozen_seq": None,
                      "records_seen": snap["records_seen"],
                      "dropped": snap["dropped"],
                      "records": snap["records"], "chain": snap["chain"]}]
        for index, dump in enumerate(dumps):
            path = os.path.join(
                directory, f"postmortem-{tag}{host}-{index}.json")
            write_postmortem(path, dump)
            paths.append(path)
    return paths


def load_postmortem(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
