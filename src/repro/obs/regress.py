"""Regression gate over BENCH_<n>.json trajectory snapshots.

``python -m repro.obs.regress`` diffs the newest snapshot against a
committed baseline (by default ``BENCH_0.json`` vs the highest-numbered
snapshot at the repo root) and exits nonzero when any metric regressed
beyond its tolerance, naming the metric.

Tolerances are assigned by metric-name suffix; the simulation is
deterministic, so most drift *is* a behavior change:

==============================  ============================================
``*_ms``, ``*_s``               lower is better; fail above +2% relative
``*_kbs``                       higher is better; fail below -2% relative
``*_rate``, ``*_fraction``      higher is better; fail below -0.005 absolute
``*_ratio``                     two-sided, 2% relative (shape metrics)
everything else                 two-sided, exact (counts, bytes, txns)
==============================  ============================================

:data:`OVERRIDES` loosens specific metrics whose drift is legitimate
(e.g. E5's code-size footprint moves whenever the module is edited).

Only the intersection of experiments/metrics present in both snapshots is
compared -- quick-mode snapshots simply omit the secondary metrics -- but
an experiment present in the baseline and absent from a *non-quick*
candidate is itself a failure (a silently dropped experiment must not pass
the gate).
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.obs.bench import BENCH_SCHEMA, repo_root, snapshot_paths

#: (direction, kind, tolerance) by metric-name suffix, first match wins.
#: direction: "lower" = lower is better, "higher" = higher is better,
#: "both" = any drift counts.  kind: "rel" or "abs".
SUFFIX_RULES: tuple[tuple[str, tuple[str, str, float]], ...] = (
    ("_ms", ("lower", "rel", 0.02)),
    ("_s", ("lower", "rel", 0.02)),
    ("_kbs", ("higher", "rel", 0.02)),
    ("_rate", ("higher", "abs", 0.005)),
    ("_fraction", ("higher", "abs", 0.005)),
    ("_ratio", ("both", "rel", 0.02)),
)

#: Per-metric overrides ("<experiment>.<metric>") for legitimate drift.
OVERRIDES: dict[str, tuple[str, str, float]] = {
    # Footprints move with any edit to the measured module or interpreter
    # internals; gate only on order-of-magnitude growth.
    "e5.code_bytes": ("both", "rel", 0.50),
    "e5.table_bytes_12_prefixes": ("both", "rel", 0.50),
}

DEFAULT_RULE = ("both", "abs", 0.0)  # counts: exact


def rule_for(experiment: str, metric: str) -> tuple[str, str, float]:
    override = OVERRIDES.get(f"{experiment}.{metric}")
    if override is not None:
        return override
    for suffix, rule in SUFFIX_RULES:
        if metric.endswith(suffix):
            return rule
    return DEFAULT_RULE


@dataclass
class Finding:
    """One metric's verdict."""

    experiment: str
    metric: str
    baseline: float
    candidate: float
    allowed: float
    verdict: str  # "regressed" | "improved" | "missing"

    @property
    def name(self) -> str:
        return f"{self.experiment}.{self.metric}"

    def describe(self) -> str:
        if self.verdict == "missing":
            return (f"{self.name}: present in baseline, missing from "
                    f"candidate")
        delta = self.candidate - self.baseline
        rel = (delta / self.baseline * 100) if self.baseline else float("inf")
        return (f"{self.name}: {self.baseline:g} -> {self.candidate:g} "
                f"({rel:+.2f}%, allowed ±{self.allowed:g})")


def compare(baseline: dict, candidate: dict) -> list[Finding]:
    """Pure comparison: findings for every out-of-tolerance metric.

    ``verdict == "regressed"`` findings are what the gate fails on;
    "improved" findings are reported but pass.
    """
    for name, snapshot in (("baseline", baseline), ("candidate", candidate)):
        if snapshot.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"{name} snapshot has schema {snapshot.get('schema')!r}, "
                f"this tool understands {BENCH_SCHEMA}")
    findings: list[Finding] = []
    base_experiments = baseline.get("experiments", {})
    cand_experiments = candidate.get("experiments", {})
    candidate_quick = bool(candidate.get("quick"))
    for experiment, base_entry in sorted(base_experiments.items()):
        cand_entry = cand_experiments.get(experiment)
        if cand_entry is None:
            if not candidate_quick:
                findings.append(Finding(experiment, "(all)", 0.0, 0.0, 0.0,
                                        "missing"))
            continue
        cand_metrics = cand_entry.get("metrics", {})
        for metric, base_value in sorted(base_entry["metrics"].items()):
            if metric not in cand_metrics:
                # Quick candidates legitimately omit secondary metrics.
                if not candidate_quick:
                    findings.append(Finding(experiment, metric,
                                            float(base_value), float("nan"),
                                            0.0, "missing"))
                continue
            cand_value = float(cand_metrics[metric])
            base_value = float(base_value)
            direction, kind, tolerance = rule_for(experiment, metric)
            if kind == "rel":
                allowed = abs(base_value) * tolerance
            else:
                allowed = tolerance
            delta = cand_value - base_value
            if abs(delta) <= allowed:
                continue
            worse = {"lower": delta > 0, "higher": delta < 0,
                     "both": True}[direction]
            findings.append(Finding(experiment, metric, base_value,
                                    cand_value, allowed,
                                    "regressed" if worse else "improved"))
    return findings


def load_snapshot(path: Path) -> dict:
    with open(path) as handle:
        return json.load(handle)


def default_pair(root: Path) -> tuple[Path, Path]:
    """(baseline, candidate) = (lowest, highest) BENCH_<n>.json index."""
    snapshots = snapshot_paths(root)
    if len(snapshots) < 2:
        raise FileNotFoundError(
            f"need two BENCH_<n>.json snapshots at {root}, "
            f"found {len(snapshots)}")
    return snapshots[0][1], snapshots[-1][1]


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Gate the newest BENCH_<n>.json against a baseline")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline snapshot (default: lowest index)")
    parser.add_argument("--candidate", metavar="PATH",
                        help="candidate snapshot (default: highest index)")
    args = parser.parse_args(argv)

    if args.baseline and args.candidate:
        baseline_path = Path(args.baseline)
        candidate_path = Path(args.candidate)
    else:
        root = repo_root()
        default_base, default_cand = default_pair(root)
        baseline_path = Path(args.baseline) if args.baseline else default_base
        candidate_path = (Path(args.candidate) if args.candidate
                          else default_cand)
    baseline = load_snapshot(baseline_path)
    candidate = load_snapshot(candidate_path)
    findings = compare(baseline, candidate)

    print(f"baseline:  {baseline_path} (sha {baseline.get('git_sha')}, "
          f"quick={bool(baseline.get('quick'))})")
    print(f"candidate: {candidate_path} (sha {candidate.get('git_sha')}, "
          f"quick={bool(candidate.get('quick'))})")
    regressions = [f for f in findings if f.verdict != "improved"]
    improvements = [f for f in findings if f.verdict == "improved"]
    for finding in improvements:
        print(f"improved:  {finding.describe()}")
    for finding in regressions:
        print(f"REGRESSED: {finding.describe()}")
    if regressions:
        names = ", ".join(f.name for f in regressions)
        print(f"FAIL: {len(regressions)} metric(s) regressed: {names}")
        return 1
    compared = sum(len(e.get("metrics", {}))
                   for e in baseline.get("experiments", {}).values())
    print(f"OK: no regressions ({compared} baseline metrics, "
          f"{len(improvements)} improved)")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
