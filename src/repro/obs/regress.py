"""Regression gate over BENCH_<n>.json trajectory snapshots.

``python -m repro.obs.regress`` diffs the newest snapshot against a
committed baseline (by default ``BENCH_0.json`` vs the highest-numbered
snapshot at the repo root) and exits nonzero when any metric regressed
beyond its tolerance, naming the metric.

Tolerances are assigned by metric-name suffix; the simulation is
deterministic, so most drift *is* a behavior change:

==============================  ============================================
``*_ms``, ``*_s``               lower is better; fail above +2% relative
``*_kbs``                       higher is better; fail below -2% relative
``*_rate``, ``*_fraction``      higher is better; fail below -0.005 absolute
``*_ratio``                     two-sided, 2% relative (shape metrics)
everything else                 two-sided, exact (counts, bytes, txns)
==============================  ============================================

:data:`OVERRIDES` loosens specific metrics whose drift is legitimate but
bounded (e.g. E5's prefix-table footprint).  :data:`EXEMPTIONS` removes a
metric from the gate entirely, with a mandatory written rationale; exempt
metrics still appear in every report (verdict ``"exempt"``) so the
exclusion can never go unnoticed.

Only the intersection of experiments/metrics present in both snapshots is
compared -- quick-mode snapshots simply omit the secondary metrics -- but
an experiment present in the baseline and absent from a *non-quick*
candidate is itself a failure (a silently dropped experiment must not pass
the gate).

The wall-clock dimension is gated separately: when both snapshots carry an
experiment's ``wall`` section, ``wall_events_per_sec`` is compared
higher-is-better with the deliberately loose ``--wall-tolerance`` (default
:data:`DEFAULT_WALL_TOLERANCE`, i.e. fail only when throughput halves) --
wall rates are machine-dependent, so the gate exists to catch an
engine-speed *collapse*, not 2% noise.  A snapshot without ``wall``
(pre-telemetry baselines) simply skips the wall comparison.

``--json`` emits the full per-metric verdict document (baseline,
candidate, delta, allowed tolerance, pass/fail for *every* compared
metric) so CI can annotate failures instead of parsing stderr.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.obs.bench import BENCH_SCHEMA, repo_root, snapshot_paths

#: (direction, kind, tolerance) by metric-name suffix, first match wins.
#: direction: "lower" = lower is better, "higher" = higher is better,
#: "both" = any drift counts.  kind: "rel" or "abs".
SUFFIX_RULES: tuple[tuple[str, tuple[str, str, float]], ...] = (
    ("_ms", ("lower", "rel", 0.02)),
    ("_s", ("lower", "rel", 0.02)),
    ("_kbs", ("higher", "rel", 0.02)),
    ("_rate", ("higher", "abs", 0.005)),
    ("_fraction", ("higher", "abs", 0.005)),
    ("_ratio", ("both", "rel", 0.02)),
)

#: Per-metric overrides ("<experiment>.<metric>") for legitimate drift.
OVERRIDES: dict[str, tuple[str, str, float]] = {
    # Footprints move with any edit to the measured module or interpreter
    # internals; gate only on order-of-magnitude growth.
    "e5.table_bytes_12_prefixes": ("both", "rel", 0.50),
}

#: Metrics excluded from the gate entirely ("<experiment>.<metric>" ->
#: rationale).  Exemption is stronger than an :data:`OVERRIDES` loosening:
#: the metric is still *reported* (verdict ``"exempt"``, always passing)
#: so the exclusion stays visible in every ``--json`` document, but no
#: tolerance -- however wide -- applies.  Reserve it for measurements that
#: track the source tree itself rather than simulated behavior; a metric
#: that can regress meaningfully belongs in OVERRIDES, not here.
EXEMPTIONS: dict[str, str] = {
    # Byte size of the live resolver module: it moves with every comment,
    # docstring, or instrumentation edit anywhere in the file, so it
    # tracks the tree, not the protocol.  The paper's Sec. 6 point (the
    # interpreter stays small) is covered by table_bytes, which measures
    # the *data* footprint and stays gated above.
    "e5.code_bytes": "source-tree footprint; moves with any edit to the "
                     "measured module, not with protocol behavior",
}

DEFAULT_RULE = ("both", "abs", 0.0)  # counts: exact

#: The wall-clock throughput metric inside each experiment's ``wall``
#: section, and its default relative tolerance (higher is better; fail
#: when the candidate loses more than this fraction of the baseline rate).
WALL_METRIC = "wall_events_per_sec"
DEFAULT_WALL_TOLERANCE = 0.5


def rule_for(experiment: str, metric: str) -> tuple[str, str, float]:
    override = OVERRIDES.get(f"{experiment}.{metric}")
    if override is not None:
        return override
    for suffix, rule in SUFFIX_RULES:
        if metric.endswith(suffix):
            return rule
    return DEFAULT_RULE


@dataclass
class Finding:
    """One metric's verdict."""

    experiment: str
    metric: str
    baseline: float
    candidate: float
    allowed: float
    verdict: str  # "ok" | "regressed" | "improved" | "missing"

    @property
    def name(self) -> str:
        return f"{self.experiment}.{self.metric}"

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    @property
    def passes(self) -> bool:
        return self.verdict in ("ok", "improved", "exempt")

    def to_record(self) -> dict:
        """The ``--json`` verdict record for this metric."""
        candidate = self.candidate
        return {
            "experiment": self.experiment,
            "metric": self.metric,
            "name": self.name,
            "baseline": self.baseline,
            "candidate": None if candidate != candidate else candidate,
            "delta": None if candidate != candidate else self.delta,
            "allowed": self.allowed,
            "verdict": self.verdict,
            "pass": self.passes,
        }

    def describe(self) -> str:
        if self.verdict == "missing":
            return (f"{self.name}: present in baseline, missing from "
                    f"candidate")
        if self.verdict == "exempt":
            return (f"{self.name}: {self.baseline:g} -> {self.candidate:g} "
                    f"(exempt: {EXEMPTIONS[self.name]})")
        delta = self.candidate - self.baseline
        rel = (delta / self.baseline * 100) if self.baseline else float("inf")
        return (f"{self.name}: {self.baseline:g} -> {self.candidate:g} "
                f"({rel:+.2f}%, allowed ±{self.allowed:g})")


def _judge(experiment: str, metric: str, base_value: float,
           cand_value: float, direction: str, allowed: float) -> Finding:
    delta = cand_value - base_value
    if abs(delta) <= allowed:
        verdict = "ok"
    else:
        worse = {"lower": delta > 0, "higher": delta < 0,
                 "both": True}[direction]
        verdict = "regressed" if worse else "improved"
    return Finding(experiment, metric, base_value, cand_value, allowed,
                   verdict)


def compare_all(baseline: dict, candidate: dict,
                wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
                ) -> list[Finding]:
    """Pure comparison: one :class:`Finding` per compared metric.

    Within-tolerance metrics get ``verdict == "ok"`` (the ``--json``
    output wants every verdict); :func:`compare` filters those out for
    the human-facing report.  Each experiment's wall rates -- the
    per-suite ``wall_events_per_sec`` plus any ``wall_events_per_sec_*``
    sweep keys a module publishes (E16's fleet ladder) -- are compared
    last, higher-is-better at ``wall_tolerance`` relative, and only for
    keys both snapshots carry.
    """
    for name, snapshot in (("baseline", baseline), ("candidate", candidate)):
        if snapshot.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"{name} snapshot has schema {snapshot.get('schema')!r}, "
                f"this tool understands {BENCH_SCHEMA}")
    findings: list[Finding] = []
    base_experiments = baseline.get("experiments", {})
    cand_experiments = candidate.get("experiments", {})
    candidate_quick = bool(candidate.get("quick"))
    for experiment, base_entry in sorted(base_experiments.items()):
        cand_entry = cand_experiments.get(experiment)
        if cand_entry is None:
            if not candidate_quick:
                findings.append(Finding(experiment, "(all)", 0.0, 0.0, 0.0,
                                        "missing"))
            continue
        cand_metrics = cand_entry.get("metrics", {})
        for metric, base_value in sorted(base_entry["metrics"].items()):
            if f"{experiment}.{metric}" in EXEMPTIONS:
                # Reported so the exclusion stays visible, never judged.
                if metric in cand_metrics:
                    findings.append(Finding(
                        experiment, metric, float(base_value),
                        float(cand_metrics[metric]), 0.0, "exempt"))
                continue
            if metric not in cand_metrics:
                # Quick candidates legitimately omit secondary metrics.
                if not candidate_quick:
                    findings.append(Finding(experiment, metric,
                                            float(base_value), float("nan"),
                                            0.0, "missing"))
                continue
            cand_value = float(cand_metrics[metric])
            base_value = float(base_value)
            direction, kind, tolerance = rule_for(experiment, metric)
            if kind == "rel":
                allowed = abs(base_value) * tolerance
            else:
                allowed = tolerance
            findings.append(_judge(experiment, metric, base_value,
                                   cand_value, direction, allowed))
        base_wall_section = base_entry.get("wall", {})
        cand_wall_section = cand_entry.get("wall", {})
        # Gate every shared rate key: the per-suite "wall_events_per_sec"
        # plus any module-published sweep keys such as E16's
        # "wall_events_per_sec_200h" (all higher-is-better).
        for metric in sorted(base_wall_section):
            if metric != WALL_METRIC and not metric.startswith(
                    WALL_METRIC + "_"):
                continue
            base_wall = base_wall_section[metric]
            cand_wall = cand_wall_section.get(metric)
            if cand_wall is None:
                continue
            findings.append(_judge(
                experiment, metric, float(base_wall),
                float(cand_wall), "higher",
                abs(float(base_wall)) * wall_tolerance))
    return findings


def compare(baseline: dict, candidate: dict,
            wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
            ) -> list[Finding]:
    """Findings for every *out-of-tolerance* metric (the gate's view).

    ``verdict == "regressed"``/``"missing"`` findings are what the gate
    fails on; "improved" findings are reported but pass.
    """
    return [finding
            for finding in compare_all(baseline, candidate, wall_tolerance)
            if finding.verdict != "ok"]


def load_snapshot(path: Path) -> dict:
    with open(path) as handle:
        return json.load(handle)


def default_pair(root: Path) -> tuple[Path, Path]:
    """(baseline, candidate) = (lowest, highest) BENCH_<n>.json index."""
    snapshots = snapshot_paths(root)
    if len(snapshots) < 2:
        raise FileNotFoundError(
            f"need two BENCH_<n>.json snapshots at {root}, "
            f"found {len(snapshots)}")
    return snapshots[0][1], snapshots[-1][1]


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Gate the newest BENCH_<n>.json against a baseline")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline snapshot (default: lowest index)")
    parser.add_argument("--candidate", metavar="PATH",
                        help="candidate snapshot (default: highest index)")
    parser.add_argument("--wall-tolerance", type=float,
                        default=DEFAULT_WALL_TOLERANCE, metavar="FRAC",
                        help="allowed relative wall_events_per_sec loss "
                             f"(default {DEFAULT_WALL_TOLERANCE}; wall "
                             "rates are machine-dependent, keep it loose)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full per-metric verdict document "
                             "on stdout instead of the text report")
    args = parser.parse_args(argv)

    if args.baseline and args.candidate:
        baseline_path = Path(args.baseline)
        candidate_path = Path(args.candidate)
    else:
        root = repo_root()
        default_base, default_cand = default_pair(root)
        baseline_path = Path(args.baseline) if args.baseline else default_base
        candidate_path = (Path(args.candidate) if args.candidate
                          else default_cand)
    baseline = load_snapshot(baseline_path)
    candidate = load_snapshot(candidate_path)
    all_findings = compare_all(baseline, candidate,
                               wall_tolerance=args.wall_tolerance)
    regressions = [f for f in all_findings
                   if f.verdict in ("regressed", "missing")]
    improvements = [f for f in all_findings if f.verdict == "improved"]
    exempted = [f for f in all_findings if f.verdict == "exempt"]

    if args.json:
        document = {
            "schema": BENCH_SCHEMA,
            "kind": "bench-regress",
            "baseline": {"path": str(baseline_path),
                         "git_sha": baseline.get("git_sha"),
                         "quick": bool(baseline.get("quick"))},
            "candidate": {"path": str(candidate_path),
                          "git_sha": candidate.get("git_sha"),
                          "quick": bool(candidate.get("quick"))},
            "wall_tolerance": args.wall_tolerance,
            "pass": not regressions,
            "counts": {"compared": len(all_findings),
                       "regressed": len(regressions),
                       "improved": len(improvements),
                       "exempt": len(exempted)},
            "metrics": [finding.to_record() for finding in all_findings],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 1 if regressions else 0

    print(f"baseline:  {baseline_path} (sha {baseline.get('git_sha')}, "
          f"quick={bool(baseline.get('quick'))})")
    print(f"candidate: {candidate_path} (sha {candidate.get('git_sha')}, "
          f"quick={bool(candidate.get('quick'))})")
    for finding in exempted:
        print(f"exempt:    {finding.describe()}")
    for finding in improvements:
        print(f"improved:  {finding.describe()}")
    for finding in regressions:
        print(f"REGRESSED: {finding.describe()}")
    if regressions:
        names = ", ".join(f.name for f in regressions)
        print(f"FAIL: {len(regressions)} metric(s) regressed: {names}")
        return 1
    compared = sum(len(e.get("metrics", {}))
                   for e in baseline.get("experiments", {}).values())
    print(f"OK: no regressions ({compared} baseline metrics, "
          f"{len(improvements)} improved)")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
