"""Coherence auditing for the sharded name service.

PR 9 gave the prefix service replicas, leases, and a versioned shard map;
this module answers the question that setup begs: **is the fleet actually
coherent right now, and how stale is what clients are being served?**
Three pieces:

- a :class:`CoherenceProbe` (armed via :func:`enable_coherence`) that the
  shard layer feeds through duck-typed hooks -- every INVALIDATE/SYNC
  notice send/apply, lease grant/refresh/refusal, negative-cache hit, and
  cache hit's age lands here as pure bookkeeping.  The telemetry collector
  drains its per-host tick buckets into the five ``coherence.*`` time
  series, and benchmarks read its cumulative lag/staleness samples;
- a **classifier** (:func:`classify_fleet`) that cross-checks every
  host's cached name state against the authoritative shard owner and
  labels each entry ``fresh``, ``stale`` (disagreement the TTL/lease
  discipline still bounds), ``incoherent`` (disagreement a client could
  be *served* right now -- the forbidden state), ``expired``, or
  ``unverifiable`` (pre-provenance entries with no epoch stamp); it also
  detects ownership drift (two replicas both claiming a prefix) and shard
  map version drift;
- two **walkers** over the same classifier: :func:`audit_direct` (plain
  memory reads, zero simulated cost -- the post-run invariant the chaos
  storm asserts) and :func:`audit_via_obs` (reads every host's
  ``[obs]/hosts/<host>/coherence`` leaf through the full Sec. 5.4
  forwarding chain -- the live operator's path, fully charged).

Provenance identity, not order: an ``(epoch, source-pid)`` stamp names one
authoritative mutation, and the auditor only ever compares stamps for
*equality* against the owner's current stamp.  Epochs from different
servers are never ordered against each other.

``python -m repro.obs.audit`` runs the replica-crash storm with the probe
and watchdogs armed, audits the fleet through ``[obs]``, and renders the
coherence report (``--json`` for the document, ``--watch`` for periodic
in-run audits).  Exit status 2 means the audit found incoherent entries.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.domain import Domain
    from repro.kernel.host import Host

AUDIT_SCHEMA = 1

#: Entry classifications, worst first (the order render() reports them).
INCOHERENT = "incoherent"
STALE = "stale"
EXPIRED = "expired"
UNVERIFIABLE = "unverifiable"
FRESH = "fresh"


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = int(round(q * (len(ordered) - 1)))
    return ordered[min(max(index, 0), len(ordered) - 1)]


# ------------------------------------------------------------------- probe


class CoherenceProbe:
    """Passive bookkeeping for coherence traffic; fed by the shard layer.

    Every hook is **pure memory writes** -- no events scheduled, no rng
    draws, no sends -- so arming the probe never perturbs the simulated
    timeline (the same zero-observer-effect rule every obs capture in this
    repo follows; E15 pins the wall-clock side).  The shard layer reaches
    it via ``domain.coherence`` (duck-typed, core never imports obs).

    Two consumers, two shapes of state:

    - the telemetry collector calls :meth:`drain_tick` once per host per
      sample tick and gets that tick's bucket (worst lag, oldest hit age,
      event counts) for the ``coherence.*`` series;
    - benchmarks and the audit report read the cumulative side --
      :attr:`lags`, :attr:`staleness`, the counters -- via
      :meth:`summary`.
    """

    def __init__(self, registry=None) -> None:
        #: Fleet metrics registry (optional): every hook mirrors itself as
        #: a ``coherence.*`` counter there, so ``[obs]/fleet/metrics`` and
        #: ``repro.obs.report`` see coherence traffic alongside the
        #: ``namecache.*`` scoreboard.  Registry increments are plain
        #: Python writes -- the zero-observer-effect rule holds.
        self.registry = registry
        #: (prefix, dst pid value) -> send times of in-flight notices.
        #: A deque per key: two mutations of one prefix can be in flight
        #: to the same peer at once, and notices are FIFO per link.
        self._pending: dict[tuple[bytes, int], deque] = {}
        # Per-host tick buckets, drained by the telemetry collector.
        self._tick_lag_ms: dict[str, float] = {}
        self._tick_stale_ms: dict[str, float] = {}
        self._tick_lease: dict[str, int] = {}
        self._tick_neg: dict[str, int] = {}
        self._tick_lookups: dict[str, int] = {}
        # Cumulative accounting (benchmarks, audit report).
        self.lags: list[float] = []              # seconds, per applied notice
        self.staleness: list[float] = []         # seconds, per cache hit
        self.notices_sent = 0
        self.notices_applied = 0
        #: Notices applied with no matching send on record (probe armed
        #: mid-run, or a rejoin PULL observed as application only).
        self.notices_unmatched = 0
        self.lease_events: dict[str, int] = {}   # grant/refresh/refusal
        self.negcache_hits = 0
        self.lookups = 0
        self.lookups_by_host: dict[str, int] = {}

    # -------------------------------------------------- shard-layer hooks

    def _count(self, name: str, **tags) -> None:
        if self.registry is not None:
            self.registry.counter(name, **tags).incr()

    def shard_lookup(self, host: str, replica_id: int) -> None:
        """A replica on ``host`` served (or refused) one lookup."""
        self.lookups += 1
        self.lookups_by_host[host] = self.lookups_by_host.get(host, 0) + 1
        self._tick_lookups[host] = self._tick_lookups.get(host, 0) + 1
        self._count("coherence.lookups", host=host)

    def lease_event(self, host: str, kind: str) -> None:
        """A lease changed state at ``host``: grant, refresh, or refusal."""
        self.lease_events[kind] = self.lease_events.get(kind, 0) + 1
        self._tick_lease[host] = self._tick_lease.get(host, 0) + 1
        self._count("coherence.lease_events", kind=kind)

    def notice_sent(self, prefix: bytes, dst_pid: int, t: float) -> None:
        """The owner fanned one SYNC/INVALIDATE notice out to ``dst_pid``."""
        self.notices_sent += 1
        self._count("coherence.notices", phase="sent")
        key = (bytes(prefix), int(dst_pid))
        queue = self._pending.get(key)
        if queue is None:
            queue = self._pending[key] = deque()
        queue.append(t)

    def notice_applied(self, prefix: bytes, pid: int, host: str,
                       t: float) -> None:
        """A peer applied a notice; the lag is apply time minus send time."""
        self.notices_applied += 1
        self._count("coherence.notices", phase="applied")
        queue = self._pending.get((bytes(prefix), int(pid)))
        if not queue:
            self.notices_unmatched += 1
            self._count("coherence.notices", phase="unmatched")
            return
        lag = max(0.0, t - queue.popleft())
        self.lags.append(lag)
        lag_ms = lag * 1000.0
        if lag_ms > self._tick_lag_ms.get(host, 0.0):
            self._tick_lag_ms[host] = lag_ms

    def stale_hit(self, host: str, age: float) -> None:
        """A resolver served a cached binding that was ``age`` seconds old."""
        self._count("coherence.stale_hits", host=host)
        age = max(0.0, age)
        self.staleness.append(age)
        age_ms = age * 1000.0
        if age_ms > self._tick_stale_ms.get(host, 0.0):
            self._tick_stale_ms[host] = age_ms

    def negcache_hit(self, host: str) -> None:
        """A resolver answered NOT_FOUND from its negative cache."""
        self.negcache_hits += 1
        self._tick_neg[host] = self._tick_neg.get(host, 0) + 1
        self._count("coherence.negcache_hits", host=host)

    # ---------------------------------------------------- telemetry feed

    def drain_tick(self, host: str) -> dict[str, float]:
        """Pop ``host``'s tick bucket as ``coherence.*`` sample values.

        Always returns all five keys (zeros on a quiet tick) so the series
        stay dense while the probe is armed -- a gap means the *host* was
        down, never that the probe had nothing to say.
        """
        return {
            "coherence.invalidation_lag": self._tick_lag_ms.pop(host, 0.0),
            "coherence.staleness_at_hit": self._tick_stale_ms.pop(host, 0.0),
            "coherence.lease_churn": float(self._tick_lease.pop(host, 0)),
            "coherence.negcache_hits": float(self._tick_neg.pop(host, 0)),
            "coherence.shard_hotness": float(self._tick_lookups.pop(host, 0)),
        }

    # -------------------------------------------------------- summaries

    def in_flight(self) -> int:
        """Notices sent but not (yet) observed applied."""
        return sum(len(queue) for queue in self._pending.values())

    def summary(self) -> dict:
        """Cumulative propagation/staleness digest (ms percentiles)."""
        return {
            "notices_sent": self.notices_sent,
            "notices_applied": self.notices_applied,
            "notices_unmatched": self.notices_unmatched,
            "notices_in_flight": self.in_flight(),
            "invalidation_lag_ms": {
                "samples": len(self.lags),
                "p50": round(percentile(self.lags, 0.50) * 1000.0, 4),
                "p99": round(percentile(self.lags, 0.99) * 1000.0, 4),
                "max": round(max(self.lags) * 1000.0, 4) if self.lags
                       else 0.0,
            },
            "staleness_at_hit_ms": {
                "samples": len(self.staleness),
                "p50": round(percentile(self.staleness, 0.50) * 1000.0, 4),
                "p99": round(percentile(self.staleness, 0.99) * 1000.0, 4),
                "max": round(max(self.staleness) * 1000.0, 4)
                       if self.staleness else 0.0,
            },
            "lease_events": dict(sorted(self.lease_events.items())),
            "negcache_hits": self.negcache_hits,
            "shard_lookups": self.lookups,
            "shard_lookups_by_host": dict(
                sorted(self.lookups_by_host.items())),
        }


def enable_coherence(domain: "Domain") -> CoherenceProbe:
    """Arm a coherence probe on ``domain`` (idempotent).

    After this, every shard replica and registered shard resolver feeds
    the probe, and the telemetry collector's ``coherence.*`` series start
    sampling.  Zero simulated cost either way.
    """
    if domain.coherence is None:
        domain.coherence = CoherenceProbe(registry=domain.metrics.registry)
    return domain.coherence


# ------------------------------------------------------ per-host documents


def host_coherence_document(host: "Host", now: Optional[float] = None) -> dict:
    """One host's cached-name-state snapshot, with provenance.

    The document behind ``[obs]/hosts/<host>/coherence`` and the unit the
    classifier consumes: the host's shard replica table (if it runs one)
    and its registered shard resolver caches (if it has one), each entry
    stamped with its ``(epoch, source)`` provenance and lease/TTL state.
    Plain memory reads -- zero simulated cost; reading it over the wire is
    charged like any other ``[obs]`` leaf.
    """
    domain = host.domain
    if now is None:
        now = domain.now
    document: dict = {"kind": "coherence", "host": host.name, "t": now,
                      "enabled": False, "replica": None, "resolver": None}
    for cluster in getattr(domain, "shard_clusters", ()):
        for server in cluster.servers.values():
            if server.host is host:
                document["replica"] = {
                    "replica_id": server.replica_id,
                    "map_version": server.shard_map.version,
                    "lease_ttl": server.lease_ttl,
                    "entries": server.coherence_entries(now),
                }
                document["enabled"] = True
    resolver = getattr(domain, "shard_resolvers", {}).get(host.host_id)
    if resolver is not None:
        document["resolver"] = resolver.coherence_entries(now)
        document["enabled"] = True
    return document


def collect_documents(domain: "Domain",
                      now: Optional[float] = None) -> list[dict]:
    """Every live host's coherence document, in host-id order."""
    return [host_coherence_document(host, now)
            for host in sorted(domain.hosts.values(), key=lambda h: h.host_id)
            if not host.crashed]


# ---------------------------------------------------------- classification


def _negative_prefix(name: str) -> Optional[str]:
    """The ``[prefix]`` component of a negatively-cached name, if any."""
    if not name.startswith("[") or "]" not in name:
        return None
    return name[1:name.index("]")]


def classify_fleet(documents: list[dict], t: float,
                   via: str = "direct",
                   probe: Optional[CoherenceProbe] = None) -> dict:
    """Cross-check every cached entry against the authoritative owner.

    Authority is read off the documents themselves: a replica entry with
    ``is_owner: true`` *is* the authoritative stamp for its prefix under
    that replica's shard map (ownership follows promotion automatically,
    because each replica computes ``is_owner`` against its own current
    map).  Two simultaneous ownership claims are **ownership drift** --
    the claim from the higher map version wins, the conflict is reported.

    Classification, per tier:

    - replica entries: owner entries are ``fresh`` (they are the truth);
      a non-owner entry agreeing with the owner's stamp is ``fresh``;
      disagreeing (or surviving a deletion) under a *fresh lease* is
      ``incoherent`` -- a client could be served it right now; the same
      disagreement with the lease expired is ``stale`` -- held but
      unservable (the refusal path gates it); unstamped entries audit as
      ``unverifiable``;
    - resolver bindings: TTL-expired entries are ``expired`` (held lazily,
      never served); live entries agreeing with the owner are ``fresh``,
      disagreeing or deletion-surviving ones are ``stale`` -- within-TTL
      staleness is the contract the resolver's TTL bounds, so it is never
      classified incoherent;
    - resolver negative entries: an unexpired NOT_FOUND for a name whose
      prefix the owner currently binds is ``stale`` (the bound-name case
      ``note_mutation`` kills locally but other hosts ride out on TTL).
    """
    owners: dict[str, dict] = {}
    ownership_drift: list[dict] = []
    for document in documents:
        replica = document.get("replica")
        if not replica:
            continue
        for entry in replica["entries"]:
            if not entry["is_owner"]:
                continue
            claim = {"host": document["host"],
                     "replica_id": replica["replica_id"],
                     "map_version": replica["map_version"],
                     "epoch": entry["epoch"], "source": entry["source"]}
            held = owners.get(entry["prefix"])
            if held is None:
                owners[entry["prefix"]] = claim
            else:
                ownership_drift.append({
                    "prefix": entry["prefix"],
                    "claims": sorted([
                        {k: held[k] for k in ("host", "replica_id",
                                              "map_version")},
                        {k: claim[k] for k in ("host", "replica_id",
                                               "map_version")},
                    ], key=lambda c: c["host"]),
                })
                if claim["map_version"] > held["map_version"]:
                    owners[entry["prefix"]] = claim

    tiers = {
        "replica": {FRESH: 0, STALE: 0, INCOHERENT: 0, UNVERIFIABLE: 0,
                    "entries": 0},
        "resolver": {FRESH: 0, STALE: 0, EXPIRED: 0, UNVERIFIABLE: 0,
                     "entries": 0},
        "negative": {FRESH: 0, STALE: 0, EXPIRED: 0, "entries": 0},
    }
    incoherent: list[dict] = []
    stale: list[dict] = []
    hosts: list[str] = []
    map_versions: dict[str, dict] = {}

    for document in documents:
        host = document["host"]
        hosts.append(host)
        versions = {"replica": None, "resolver": None}
        replica = document.get("replica")
        if replica:
            versions["replica"] = replica["map_version"]
            for entry in replica["entries"]:
                tiers["replica"]["entries"] += 1
                if entry["is_owner"]:
                    tiers["replica"][FRESH] += 1
                    continue
                owner = owners.get(entry["prefix"])
                finding = {"tier": "replica", "host": host,
                           "prefix": entry["prefix"],
                           "epoch": entry["epoch"],
                           "source": entry["source"],
                           "lease_fresh": entry["lease_fresh"],
                           "owner": ({k: owner[k] for k in
                                      ("host", "epoch", "source")}
                                     if owner else None)}
                if owner is not None and entry["epoch"] == 0:
                    tiers["replica"][UNVERIFIABLE] += 1
                elif owner is not None and (entry["epoch"], entry["source"]) \
                        == (owner["epoch"], owner["source"]):
                    tiers["replica"][FRESH] += 1
                elif entry["lease_fresh"]:
                    tiers["replica"][INCOHERENT] += 1
                    incoherent.append(finding)
                else:
                    tiers["replica"][STALE] += 1
                    stale.append(finding)
        resolver = document.get("resolver")
        if resolver:
            versions["resolver"] = resolver["map_version"]
            for entry in resolver["bindings"]:
                tiers["resolver"]["entries"] += 1
                owner = owners.get(entry["prefix"])
                if entry["expired"]:
                    tiers["resolver"][EXPIRED] += 1
                elif owner is not None and entry["epoch"] == 0:
                    tiers["resolver"][UNVERIFIABLE] += 1
                elif owner is not None and (entry["epoch"], entry["source"]) \
                        == (owner["epoch"], owner["source"]):
                    tiers["resolver"][FRESH] += 1
                else:
                    tiers["resolver"][STALE] += 1
                    stale.append({"tier": "resolver", "host": host,
                                  "prefix": entry["prefix"],
                                  "epoch": entry["epoch"],
                                  "source": entry["source"],
                                  "age": entry["age"],
                                  "owner": ({k: owner[k] for k in
                                             ("host", "epoch", "source")}
                                            if owner else None)})
            for entry in resolver["negative"]:
                tiers["negative"]["entries"] += 1
                prefix = _negative_prefix(entry["name"])
                if entry["expired"]:
                    tiers["negative"][EXPIRED] += 1
                elif prefix is not None and prefix in owners:
                    tiers["negative"][STALE] += 1
                    stale.append({"tier": "negative", "host": host,
                                  "name": entry["name"], "prefix": prefix,
                                  "age": entry["age"]})
                else:
                    tiers["negative"][FRESH] += 1
        map_versions[host] = versions

    known = [v for versions in map_versions.values()
             for v in versions.values() if v is not None]
    fleet_max = max(known) if known else 0
    map_drift = [{"host": host, "tier": tier, "version": version,
                  "fleet_max": fleet_max}
                 for host, versions in sorted(map_versions.items())
                 for tier, version in versions.items()
                 if version is not None and version < fleet_max]

    return {
        "kind": "coherence-audit",
        "schema": AUDIT_SCHEMA,
        "t": t,
        "via": via,
        "hosts": hosts,
        "tiers": tiers,
        "findings": {
            "incoherent": incoherent,
            "stale": stale,
            "ownership_drift": ownership_drift,
            "map_drift": map_drift,
        },
        "map_versions": {"fleet_max": fleet_max,
                         "hosts": map_versions},
        "probe": probe.summary() if probe is not None else None,
        "ok": not incoherent,
    }


# ----------------------------------------------------------------- walkers


def audit_direct(domain: "Domain", now: Optional[float] = None) -> dict:
    """Audit the fleet by direct memory reads (zero simulated cost).

    The post-run invariant path: the chaos storm calls this after
    quiescence and fails if any entry classifies incoherent.
    """
    if now is None:
        now = domain.now
    return classify_fleet(collect_documents(domain, now), t=now,
                          via="direct", probe=domain.coherence)


def audit_via_obs(workstation, hosts: Optional[list[str]] = None) -> dict:
    """Audit the fleet through the protocol: the live operator's path.

    A reader process on ``workstation`` opens every live host's
    ``[obs]/hosts/<host>/coherence`` leaf -- each read travels the full
    Sec. 5.4 forwarding chain (prefix server -> obs root -> that host's
    stat server) and is charged like any client traffic -- then the same
    classifier runs over the returned documents.  Hosts whose read fails
    (crashed mid-walk) are reported in ``unreachable`` rather than
    silently skipped.
    """
    from repro.runtime import files

    domain = workstation.host.domain
    if hosts is None:
        hosts = sorted(host.name for host in domain.hosts.values()
                       if not host.crashed)
    payloads: dict[str, bytes] = {}
    failures: list[str] = []

    def reader(session):
        from repro.core.resolver import NameError_
        from repro.vio.client import IoError

        for host_name in hosts:
            try:
                payloads[host_name] = yield from files.read_file(
                    session, f"[obs]/hosts/{host_name}/coherence")
            except (NameError_, IoError):
                failures.append(host_name)

    workstation.host.spawn(reader(workstation.session()),
                           name="coherence-auditor")
    domain.run()
    documents = [json.loads(payloads[name]) for name in hosts
                 if name in payloads]
    report = classify_fleet(documents, t=domain.now, via="obs",
                            probe=domain.coherence)
    report["unreachable"] = failures
    return report


# --------------------------------------------------------------- rendering


def render(document: dict, out=None) -> None:
    out = out if out is not None else sys.stdout
    print(f"coherence audit @ t={document['t']:.3f}s "
          f"(via {document['via']}) -- {len(document['hosts'])} host(s)",
          file=out)
    tiers = document["tiers"]
    columns = (FRESH, STALE, INCOHERENT, EXPIRED, UNVERIFIABLE)
    print(f"  {'tier':<9} {'entries':>7} " +
          " ".join(f"{c:>12}" for c in columns), file=out)
    for tier, counts in tiers.items():
        row = " ".join(f"{counts.get(c, '-') if c in counts else '-':>12}"
                       for c in columns)
        print(f"  {tier:<9} {counts['entries']:>7} {row}", file=out)
    versions = document["map_versions"]
    parts = []
    for host, tiers_v in sorted(versions["hosts"].items()):
        for tier, version in tiers_v.items():
            if version is not None:
                parts.append(f"{host}({tier[0]}):{version}")
    print(f"  shard map: fleet max v{versions['fleet_max']}"
          + (" -- " + " ".join(parts) if parts else ""), file=out)
    findings = document["findings"]
    for finding in findings["incoherent"]:
        print(f"  INCOHERENT {finding['tier']} {finding['host']} "
              f"[{finding['prefix']}] stamp=({finding['epoch']},"
              f"{finding['source']}) owner={finding['owner']}", file=out)
    for drift in findings["ownership_drift"]:
        claims = ", ".join(f"{c['host']}#r{c['replica_id']}@v"
                           f"{c['map_version']}"
                           for c in drift["claims"])
        print(f"  OWNERSHIP DRIFT [{drift['prefix']}]: {claims}", file=out)
    for drift in findings["map_drift"]:
        print(f"  map drift: {drift['host']} ({drift['tier']}) at "
              f"v{drift['version']} < fleet v{drift['fleet_max']}",
              file=out)
    probe = document.get("probe")
    if probe:
        lag = probe["invalidation_lag_ms"]
        age = probe["staleness_at_hit_ms"]
        print(f"  probe: {probe['notices_sent']} notices sent, "
              f"{probe['notices_applied']} applied "
              f"({probe['notices_in_flight']} in flight); "
              f"lag p50={lag['p50']}ms p99={lag['p99']}ms; "
              f"staleness p50={age['p50']}ms p99={age['p99']}ms", file=out)
        print(f"  leases: " + " ".join(
            f"{kind}={count}"
            for kind, count in probe["lease_events"].items())
            + f"; negcache hits={probe['negcache_hits']}; "
            f"lookups={probe['shard_lookups']}", file=out)
    unreachable = document.get("unreachable") or []
    for host in unreachable:
        print(f"  unreachable: {host} (coherence leaf read failed)",
              file=out)
    verdict = ("COHERENT" if document["ok"]
               else f"INCOHERENT ({len(findings['incoherent'])} entries)")
    print(f"  verdict: {verdict}", file=out)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.audit",
        description="Run the sharded replica-crash storm with the "
                    "coherence probe and SLO watchdogs armed, audit every "
                    "host's cached name state through [obs], and render "
                    "the fleet coherence report.")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--duration", type=float, default=6.0,
                        help="simulated seconds (default 6)")
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument("--prefixes", type=int, default=48)
    parser.add_argument("--clients", type=int, default=2)
    parser.add_argument("--no-crash", action="store_true",
                        help="skip the staggered replica crash windows")
    parser.add_argument("--json", action="store_true",
                        help="emit the audit document instead of tables")
    parser.add_argument("--watch", type=float, default=None, metavar="SECS",
                        help="additionally audit (direct) every SECS "
                             "simulated seconds during the run and print "
                             "one summary line per sweep")
    args = parser.parse_args(argv)

    from repro.faults.chaos import InvariantViolation, run_replica_storm

    sweeps: list[dict] = []

    def on_sweep(document: dict) -> None:
        sweeps.append(document)
        if not args.json:
            tiers = document["tiers"]
            print(f"[t={document['t']:8.3f}] audit sweep: "
                  f"replica {tiers['replica'][FRESH]} fresh / "
                  f"{tiers['replica'][STALE]} stale / "
                  f"{tiers['replica'][INCOHERENT]} incoherent; "
                  f"resolver {tiers['resolver'][FRESH]} fresh / "
                  f"{tiers['resolver'][STALE]} stale; "
                  f"map v{document['map_versions']['fleet_max']}",
                  flush=True)

    try:
        report = run_replica_storm(
            seed=args.seed, duration=args.duration,
            n_replicas=args.replicas, n_prefixes=args.prefixes,
            n_clients=args.clients, crash=not args.no_crash,
            watchdogs=True,
            audit_every=args.watch,
            on_audit=on_sweep if args.watch else None)
    except InvariantViolation as violation:
        print(violation, file=sys.stderr)
        return 1
    document = report.audit
    if args.watch:
        document["sweeps"] = [
            {"t": sweep["t"], "tiers": sweep["tiers"],
             "map_version": sweep["map_versions"]["fleet_max"]}
            for sweep in sweeps]
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        render(document)
        alerts = report.alerts
        if alerts:
            print(f"  watchdogs: {alerts['fired']} fired, "
                  f"{alerts['resolved']} resolved "
                  f"({len(alerts.get('active', []))} active)")
    return 0 if document["ok"] else 2


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
